//! Procedural environment generation (the paper's environment generator).
//!
//! Section IV: "we developed an environment generator to systematically vary
//! space difficulty/heterogeneity. Our generator adjusts environment
//! difficulty with hyperparameters that change the number of congestion
//! clusters, obstacle density, and spread. [...] A Gaussian distribution
//! uses these parameters to generate 27 different environments".
//!
//! The generated world is a corridor along +X from the mission start to the
//! goal. Zones A (start) and C (end) carry Gaussian congestion clusters of
//! box obstacles; zone B is nearly free, emulating open sky between
//! warehouses. Obstacles are vertical pillars so the MAV cannot trivially
//! overfly them at its cruise altitude.

use crate::{DifficultyConfig, Obstacle, ObstacleField, Zone, ZoneLayout};
use roborun_geom::{Aabb, SplitMix64, Vec3};
use serde::{Deserialize, Serialize};

/// Tunable constants of the generator that are *not* part of the paper's
/// difficulty matrix (kept in one place so tests and docs can reference
/// them).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorParams {
    /// Fraction of the corridor occupied by each congested zone.
    pub congested_fraction: f64,
    /// Cruise altitude of the MAV (metres above ground).
    pub cruise_altitude: f64,
    /// Lateral half-width of the mission corridor (metres).
    pub corridor_half_width: f64,
    /// Minimum obstacle half-extent in X/Y (metres).
    pub obstacle_half_extent_min: f64,
    /// Maximum obstacle half-extent in X/Y (metres).
    pub obstacle_half_extent_max: f64,
    /// Minimum obstacle (pillar) height (metres).
    pub obstacle_height_min: f64,
    /// Maximum obstacle (pillar) height (metres).
    pub obstacle_height_max: f64,
    /// Radius around the start and goal that is kept obstacle free.
    pub clearance_radius: f64,
    /// Obstacle count per congested zone per unit density at the reference
    /// spread (40 m); the count scales with `(spread / 40)²` so the peak
    /// areal density tracks the density knob independent of spread.
    pub obstacles_per_density: f64,
    /// Number of sparse obstacles scattered through zone B.
    pub zone_b_obstacles: usize,
    /// Number of congestion clusters per congested zone.
    pub clusters_per_zone: usize,
}

impl Default for GeneratorParams {
    fn default() -> Self {
        GeneratorParams {
            congested_fraction: 0.2,
            cruise_altitude: 5.0,
            corridor_half_width: 60.0,
            obstacle_half_extent_min: 1.0,
            obstacle_half_extent_max: 2.5,
            obstacle_height_min: 12.0,
            obstacle_height_max: 30.0,
            clearance_radius: 12.0,
            obstacles_per_density: 60.0,
            zone_b_obstacles: 4,
            clusters_per_zone: 2,
        }
    }
}

/// A fully generated mission environment.
///
/// Holds the ground-truth obstacle field, the mission endpoints, the zone
/// layout and the difficulty configuration that produced it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Environment {
    field: ObstacleField,
    difficulty: DifficultyConfig,
    params: GeneratorParams,
    layout: ZoneLayout,
    start: Vec3,
    goal: Vec3,
    bounds: Aabb,
    seed: u64,
}

impl Environment {
    /// Ground-truth obstacle field.
    pub fn field(&self) -> &ObstacleField {
        &self.field
    }

    /// Obstacles in the environment (shorthand for `field().obstacles()`).
    pub fn obstacles(&self) -> &[Obstacle] {
        self.field.obstacles()
    }

    /// Difficulty configuration used to generate this environment.
    pub fn difficulty(&self) -> DifficultyConfig {
        self.difficulty
    }

    /// Generator parameters used.
    pub fn params(&self) -> GeneratorParams {
        self.params
    }

    /// Mission start position (at cruise altitude).
    pub fn start(&self) -> Vec3 {
        self.start
    }

    /// Mission goal position (at cruise altitude).
    pub fn goal(&self) -> Vec3 {
        self.goal
    }

    /// Zone layout along the mission corridor.
    pub fn layout(&self) -> &ZoneLayout {
        &self.layout
    }

    /// Zone containing the given point.
    pub fn zone_at(&self, p: Vec3) -> Zone {
        self.layout.zone_at(p)
    }

    /// World bounds containing every obstacle, the start and the goal,
    /// with a safety margin — the region maps and planners operate in.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Seed the environment was generated with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Straight-line mission length.
    pub fn mission_length(&self) -> f64 {
        self.start.distance(self.goal)
    }

    /// A copy of this environment with different mission endpoints — the
    /// same obstacle field, zones, params and seed, with the bounds
    /// grown (if needed) to contain the new start and goal at the usual
    /// safety margin. A fleet flies N drones through *one* world by
    /// giving each a laterally offset copy; offsets within the
    /// generator's `clearance_radius` of the original endpoints stay in
    /// the obstacle-free bubbles the generator carved.
    pub fn with_endpoints(&self, start: Vec3, goal: Vec3) -> Environment {
        let margin = 20.0;
        let endpoint_box = Aabb::union(
            &Aabb::new(start, start).inflate(margin),
            &Aabb::new(goal, goal).inflate(margin),
        );
        let mut env = self.clone();
        env.start = start;
        env.goal = goal;
        env.bounds = Aabb::union(&self.bounds, &endpoint_box);
        env
    }
}

/// Generates [`Environment`]s from a [`DifficultyConfig`].
///
/// # Example
///
/// ```
/// use roborun_env::{DifficultyConfig, EnvironmentGenerator};
/// let gen = EnvironmentGenerator::new(DifficultyConfig::easy());
/// let a = gen.generate(7);
/// let b = gen.generate(7);
/// assert_eq!(a.obstacles().len(), b.obstacles().len()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct EnvironmentGenerator {
    difficulty: DifficultyConfig,
    params: GeneratorParams,
}

impl EnvironmentGenerator {
    /// Creates a generator with default [`GeneratorParams`].
    ///
    /// # Panics
    ///
    /// Panics if the difficulty configuration is invalid
    /// (see [`DifficultyConfig::validate`]).
    pub fn new(difficulty: DifficultyConfig) -> Self {
        difficulty
            .validate()
            .expect("invalid difficulty configuration");
        EnvironmentGenerator {
            difficulty,
            params: GeneratorParams::default(),
        }
    }

    /// Overrides the generator parameters.
    pub fn with_params(mut self, params: GeneratorParams) -> Self {
        self.params = params;
        self
    }

    /// The difficulty this generator produces.
    pub fn difficulty(&self) -> DifficultyConfig {
        self.difficulty
    }

    /// Generates a deterministic environment for the given seed.
    pub fn generate(&self, seed: u64) -> Environment {
        let mut rng = SplitMix64::new(seed ^ SEED_SALT);
        let d = self.difficulty;
        let p = self.params;

        let layout = ZoneLayout::new(0.0, d.goal_distance, p.congested_fraction);
        let start = Vec3::new(0.0, 0.0, p.cruise_altitude);
        let goal = Vec3::new(d.goal_distance, 0.0, p.cruise_altitude);

        let mut obstacles = Vec::new();
        let mut next_id = 0u32;

        // Congested zones A and C.
        for zone in [Zone::A, Zone::C] {
            let (zone_lo, zone_hi) = layout.zone_range(zone);
            let zone_span = zone_hi - zone_lo;
            let spread_scale = (d.obstacle_spread / 40.0).powi(2);
            let count_per_cluster = ((d.obstacle_density * p.obstacles_per_density * spread_scale)
                / p.clusters_per_zone as f64)
                .round()
                .max(1.0) as usize;
            for cluster in 0..p.clusters_per_zone {
                let mut cluster_rng = rng.fork();
                // Spread cluster centres across the zone.
                let frac = (cluster as f64 + 0.5) / p.clusters_per_zone as f64;
                let center = Vec3::new(
                    zone_lo + frac * zone_span,
                    cluster_rng.uniform(-p.corridor_half_width * 0.4, p.corridor_half_width * 0.4),
                    0.0,
                );
                let sigma = d.obstacle_spread * 0.5;
                for _ in 0..count_per_cluster {
                    let c = cluster_rng.point_around(center, Vec3::new(sigma, sigma, 0.0));
                    let c = Vec3::new(
                        c.x.clamp(zone_lo, zone_hi),
                        c.y.clamp(-p.corridor_half_width, p.corridor_half_width),
                        0.0,
                    );
                    if c.horizontal_distance(start) < p.clearance_radius
                        || c.horizontal_distance(goal) < p.clearance_radius
                    {
                        continue;
                    }
                    let half_xy =
                        cluster_rng.uniform(p.obstacle_half_extent_min, p.obstacle_half_extent_max);
                    let height = cluster_rng.uniform(p.obstacle_height_min, p.obstacle_height_max);
                    let bounds = Aabb::new(
                        Vec3::new(c.x - half_xy, c.y - half_xy, 0.0),
                        Vec3::new(c.x + half_xy, c.y + half_xy, height),
                    );
                    obstacles.push(Obstacle::new(next_id, bounds));
                    next_id += 1;
                }
            }
        }

        // Sparse obstacles in zone B (open sky is almost, not perfectly, empty).
        let (b_lo, b_hi) = layout.zone_range(Zone::B);
        for _ in 0..p.zone_b_obstacles {
            let c = Vec3::new(
                rng.uniform(b_lo, b_hi),
                rng.uniform(-p.corridor_half_width, p.corridor_half_width),
                0.0,
            );
            if c.horizontal_distance(start) < p.clearance_radius
                || c.horizontal_distance(goal) < p.clearance_radius
            {
                continue;
            }
            let half_xy = rng.uniform(p.obstacle_half_extent_min, p.obstacle_half_extent_max);
            let height = rng.uniform(p.obstacle_height_min, p.obstacle_height_max);
            let bounds = Aabb::new(
                Vec3::new(c.x - half_xy, c.y - half_xy, 0.0),
                Vec3::new(c.x + half_xy, c.y + half_xy, height),
            );
            obstacles.push(Obstacle::new(next_id, bounds));
            next_id += 1;
        }

        let field = ObstacleField::new(obstacles);
        let margin = 20.0;
        let mut bounds = Aabb::new(
            Vec3::new(-margin, -p.corridor_half_width - margin, 0.0),
            Vec3::new(
                d.goal_distance + margin,
                p.corridor_half_width + margin,
                p.obstacle_height_max + margin,
            ),
        );
        if let Some(fb) = field.bounds() {
            bounds = Aabb::union(&bounds, &fb);
        }

        Environment {
            field,
            difficulty: d,
            params: p,
            layout,
            start,
            goal,
            bounds,
            seed,
        }
    }
}

/// Constant mixed into environment seeds so environment streams do not
/// collide with other consumers of the same seed (e.g. the planner).
const SEED_SALT: u64 = 0x526F_626F_5275_6E21; // "RoboRun!"

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DifficultyLevel;

    #[test]
    fn generation_is_deterministic() {
        let gen = EnvironmentGenerator::new(DifficultyConfig::mid());
        let a = gen.generate(123);
        let b = gen.generate(123);
        assert_eq!(a.obstacles().len(), b.obstacles().len());
        for (oa, ob) in a.obstacles().iter().zip(b.obstacles()) {
            assert_eq!(oa.bounds, ob.bounds);
        }
        let c = gen.generate(124);
        // Different seeds shift obstacle placement.
        let same = a
            .obstacles()
            .iter()
            .zip(c.obstacles())
            .all(|(x, y)| x.bounds == y.bounds);
        assert!(!same || a.obstacles().is_empty());
    }

    #[test]
    fn start_and_goal_are_clear_and_at_distance() {
        for cfg in DifficultyConfig::evaluation_matrix() {
            let env = EnvironmentGenerator::new(cfg).generate(9);
            assert!(!env.field().is_occupied_with_margin(env.start(), 1.0));
            assert!(!env.field().is_occupied_with_margin(env.goal(), 1.0));
            assert!((env.mission_length() - cfg.goal_distance).abs() < 1e-9);
            assert!(env.bounds().contains(env.start()));
            assert!(env.bounds().contains(env.goal()));
        }
    }

    #[test]
    fn with_endpoints_keeps_world_and_grows_bounds() {
        let env = EnvironmentGenerator::new(DifficultyConfig::mid()).generate(9);
        let offset = Vec3::new(0.0, 8.0, 0.0);
        let shifted = env.with_endpoints(env.start() + offset, env.goal() + offset);
        assert_eq!(shifted.obstacles().len(), env.obstacles().len());
        assert_eq!(shifted.seed(), env.seed());
        assert!(shifted.bounds().contains(shifted.start()));
        assert!(shifted.bounds().contains(shifted.goal()));
        // An offset inside the clearance radius stays obstacle free.
        assert!(!shifted
            .field()
            .is_occupied_with_margin(shifted.start(), 1.0));
        assert!(!shifted.field().is_occupied_with_margin(shifted.goal(), 1.0));
        // The original environment is untouched.
        assert_eq!(env.start(), shifted.start() - offset);
    }

    #[test]
    fn congested_zones_hold_most_obstacles() {
        let env = EnvironmentGenerator::new(DifficultyConfig::mid()).generate(5);
        let mut per_zone = [0usize; 3];
        for o in env.obstacles() {
            match env.zone_at(o.center()) {
                Zone::A => per_zone[0] += 1,
                Zone::B => per_zone[1] += 1,
                Zone::C => per_zone[2] += 1,
            }
        }
        assert!(
            per_zone[0] > per_zone[1],
            "zone A {} vs B {}",
            per_zone[0],
            per_zone[1]
        );
        assert!(
            per_zone[2] > per_zone[1],
            "zone C {} vs B {}",
            per_zone[2],
            per_zone[1]
        );
    }

    #[test]
    fn density_knob_increases_obstacle_count() {
        let mk = |level| {
            let cfg =
                DifficultyConfig::from_levels(level, DifficultyLevel::Mid, DifficultyLevel::Mid);
            EnvironmentGenerator::new(cfg).generate(3).obstacles().len()
        };
        let low = mk(DifficultyLevel::Low);
        let mid = mk(DifficultyLevel::Mid);
        let high = mk(DifficultyLevel::High);
        assert!(low < mid, "low {low} mid {mid}");
        assert!(mid < high, "mid {mid} high {high}");
    }

    #[test]
    fn spread_knob_increases_congested_area() {
        let extent = |level| {
            let cfg =
                DifficultyConfig::from_levels(DifficultyLevel::Mid, level, DifficultyLevel::Mid);
            let env = EnvironmentGenerator::new(cfg).generate(3);
            // Lateral spread of obstacles in zone A.
            let ys: Vec<f64> = env
                .obstacles()
                .iter()
                .filter(|o| env.zone_at(o.center()) == Zone::A)
                .map(|o| o.center().y.abs())
                .collect();
            if ys.is_empty() {
                0.0
            } else {
                ys.iter().sum::<f64>() / ys.len() as f64
            }
        };
        let narrow = extent(DifficultyLevel::Low);
        let wide = extent(DifficultyLevel::High);
        assert!(wide > narrow, "wide {wide} narrow {narrow}");
    }

    #[test]
    fn obstacles_are_pillars_from_the_ground() {
        let env = EnvironmentGenerator::new(DifficultyConfig::mid()).generate(2);
        let p = env.params();
        for o in env.obstacles() {
            assert_eq!(o.bounds.min.z, 0.0);
            assert!(o.bounds.max.z >= p.obstacle_height_min);
            assert!(
                o.bounds.max.z > p.cruise_altitude,
                "pillars must exceed cruise altitude"
            );
        }
    }

    #[test]
    fn all_obstacles_inside_bounds() {
        let env = EnvironmentGenerator::new(DifficultyConfig::hard()).generate(11);
        for o in env.obstacles() {
            assert!(env.bounds().contains_aabb(&o.bounds));
        }
        assert_eq!(env.seed(), 11);
    }
}
