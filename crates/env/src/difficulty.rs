//! The paper's difficulty knobs and the 27-environment evaluation matrix.
//!
//! Figure 8a of the paper lists three environment knobs, each with three
//! values, giving the 27 environments of Section V:
//!
//! | knob              | values              |
//! |-------------------|---------------------|
//! | obstacle density  | 0.3, 0.45, 0.6      |
//! | obstacle spread   | 40 m, 80 m, 120 m   |
//! | goal distance     | 600 m, 900 m, 1200 m|

use serde::{Deserialize, Serialize};
use std::fmt;

/// A low/mid/high setting of one difficulty knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DifficultyLevel {
    /// Lowest value of the knob.
    Low,
    /// Middle value of the knob.
    Mid,
    /// Highest value of the knob.
    High,
}

impl DifficultyLevel {
    /// All three levels, in increasing order.
    pub const ALL: [DifficultyLevel; 3] = [
        DifficultyLevel::Low,
        DifficultyLevel::Mid,
        DifficultyLevel::High,
    ];

    /// Index of the level (0, 1, 2).
    pub fn index(self) -> usize {
        match self {
            DifficultyLevel::Low => 0,
            DifficultyLevel::Mid => 1,
            DifficultyLevel::High => 2,
        }
    }
}

impl fmt::Display for DifficultyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DifficultyLevel::Low => "low",
            DifficultyLevel::Mid => "mid",
            DifficultyLevel::High => "high",
        };
        f.write_str(s)
    }
}

/// Peak obstacle densities evaluated in the paper (Fig. 8a).
pub const OBSTACLE_DENSITIES: [f64; 3] = [0.3, 0.45, 0.6];
/// Obstacle spreads in metres evaluated in the paper (Fig. 8a).
pub const OBSTACLE_SPREADS_M: [f64; 3] = [40.0, 80.0, 120.0];
/// Goal distances in metres evaluated in the paper (Fig. 8a).
pub const GOAL_DISTANCES_M: [f64; 3] = [600.0, 900.0, 1200.0];

/// Concrete difficulty configuration for one generated environment.
///
/// # Example
///
/// ```
/// use roborun_env::DifficultyConfig;
/// let all = DifficultyConfig::evaluation_matrix();
/// assert_eq!(all.len(), 27);
/// assert!(all.iter().any(|c| (c.goal_distance - 1200.0).abs() < 1e-9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DifficultyConfig {
    /// Peak obstacle density in congestion clusters (ratio of occupied
    /// cells at the cluster centre), paper values 0.3 / 0.45 / 0.6.
    pub obstacle_density: f64,
    /// Radius (metres) over which obstacles are scattered around a cluster
    /// centre, paper values 40 / 80 / 120 m.
    pub obstacle_spread: f64,
    /// Straight-line distance (metres) from mission start to goal,
    /// paper values 600 / 900 / 1200 m.
    pub goal_distance: f64,
}

impl DifficultyConfig {
    /// Builds a config from per-knob levels using the paper's values.
    pub fn from_levels(
        density: DifficultyLevel,
        spread: DifficultyLevel,
        goal: DifficultyLevel,
    ) -> Self {
        DifficultyConfig {
            obstacle_density: OBSTACLE_DENSITIES[density.index()],
            obstacle_spread: OBSTACLE_SPREADS_M[spread.index()],
            goal_distance: GOAL_DISTANCES_M[goal.index()],
        }
    }

    /// The easiest evaluated environment (all knobs low).
    pub fn easy() -> Self {
        Self::from_levels(
            DifficultyLevel::Low,
            DifficultyLevel::Low,
            DifficultyLevel::Low,
        )
    }

    /// The mid-range environment used for the paper's representative
    /// mission analysis (Section V-C: "an environment with the mid-range
    /// difficulty level").
    pub fn mid() -> Self {
        Self::from_levels(
            DifficultyLevel::Mid,
            DifficultyLevel::Mid,
            DifficultyLevel::Mid,
        )
    }

    /// The hardest evaluated environment (all knobs high).
    pub fn hard() -> Self {
        Self::from_levels(
            DifficultyLevel::High,
            DifficultyLevel::High,
            DifficultyLevel::High,
        )
    }

    /// The full 3×3×3 evaluation matrix of Section V (27 environments).
    ///
    /// Ordered density-major, then spread, then goal distance, so indices
    /// are stable across the sensitivity analyses.
    pub fn evaluation_matrix() -> Vec<DifficultyConfig> {
        let mut out = Vec::with_capacity(27);
        for d in DifficultyLevel::ALL {
            for s in DifficultyLevel::ALL {
                for g in DifficultyLevel::ALL {
                    out.push(Self::from_levels(d, s, g));
                }
            }
        }
        out
    }

    /// Validates that the knob values are physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the density is outside
    /// `[0, 1]`, or the spread / goal distance are not positive.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.obstacle_density) {
            return Err(format!(
                "obstacle density must be in [0, 1], got {}",
                self.obstacle_density
            ));
        }
        if self.obstacle_spread <= 0.0 {
            return Err(format!(
                "obstacle spread must be positive, got {}",
                self.obstacle_spread
            ));
        }
        if self.goal_distance <= 0.0 {
            return Err(format!(
                "goal distance must be positive, got {}",
                self.goal_distance
            ));
        }
        Ok(())
    }
}

impl Default for DifficultyConfig {
    fn default() -> Self {
        Self::mid()
    }
}

impl fmt::Display for DifficultyConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "density {:.2}, spread {:.0} m, goal {:.0} m",
            self.obstacle_density, self.obstacle_spread, self.goal_distance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_27_unique_entries() {
        let m = DifficultyConfig::evaluation_matrix();
        assert_eq!(m.len(), 27);
        for i in 0..m.len() {
            for j in (i + 1)..m.len() {
                assert_ne!(m[i], m[j], "duplicate configs at {i} and {j}");
            }
        }
    }

    #[test]
    fn matrix_covers_paper_values() {
        let m = DifficultyConfig::evaluation_matrix();
        for d in OBSTACLE_DENSITIES {
            assert!(m.iter().any(|c| (c.obstacle_density - d).abs() < 1e-12));
        }
        for s in OBSTACLE_SPREADS_M {
            assert!(m.iter().any(|c| (c.obstacle_spread - s).abs() < 1e-12));
        }
        for g in GOAL_DISTANCES_M {
            assert!(m.iter().any(|c| (c.goal_distance - g).abs() < 1e-12));
        }
    }

    #[test]
    fn named_presets_match_levels() {
        assert_eq!(
            DifficultyConfig::easy(),
            DifficultyConfig {
                obstacle_density: 0.3,
                obstacle_spread: 40.0,
                goal_distance: 600.0
            }
        );
        assert_eq!(
            DifficultyConfig::mid(),
            DifficultyConfig {
                obstacle_density: 0.45,
                obstacle_spread: 80.0,
                goal_distance: 900.0
            }
        );
        assert_eq!(
            DifficultyConfig::hard(),
            DifficultyConfig {
                obstacle_density: 0.6,
                obstacle_spread: 120.0,
                goal_distance: 1200.0
            }
        );
        assert_eq!(DifficultyConfig::default(), DifficultyConfig::mid());
    }

    #[test]
    fn levels_have_stable_indices() {
        assert_eq!(DifficultyLevel::Low.index(), 0);
        assert_eq!(DifficultyLevel::Mid.index(), 1);
        assert_eq!(DifficultyLevel::High.index(), 2);
        assert_eq!(DifficultyLevel::ALL.len(), 3);
        assert_eq!(format!("{}", DifficultyLevel::Mid), "mid");
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(DifficultyConfig::mid().validate().is_ok());
        let bad_density = DifficultyConfig {
            obstacle_density: 1.5,
            ..DifficultyConfig::mid()
        };
        assert!(bad_density.validate().is_err());
        let bad_spread = DifficultyConfig {
            obstacle_spread: 0.0,
            ..DifficultyConfig::mid()
        };
        assert!(bad_spread.validate().is_err());
        let bad_goal = DifficultyConfig {
            goal_distance: -5.0,
            ..DifficultyConfig::mid()
        };
        assert!(bad_goal.validate().is_err());
    }

    #[test]
    fn display_mentions_all_knobs() {
        let s = format!("{}", DifficultyConfig::mid());
        assert!(s.contains("density"));
        assert!(s.contains("spread"));
        assert!(s.contains("goal"));
    }
}
