//! Property-based tests for environment generation, visibility and gaps.

use proptest::prelude::*;
use roborun_env::{
    gaps::aabb_gap, DifficultyConfig, EnvironmentGenerator, GapAnalysis, Obstacle, ObstacleField,
    VisibilityModel, Zone,
};
use roborun_geom::{Aabb, Ray, Vec3};

fn arb_difficulty() -> impl Strategy<Value = DifficultyConfig> {
    (0.1f64..0.7, 30.0f64..130.0, 100.0f64..400.0).prop_map(|(d, s, g)| DifficultyConfig {
        obstacle_density: d,
        obstacle_spread: s,
        goal_distance: g,
    })
}

fn arb_obstacle(id: u32) -> impl Strategy<Value = Obstacle> {
    ((-50.0f64..50.0), (-50.0f64..50.0), (0.5f64..3.0)).prop_map(move |(x, y, half)| {
        Obstacle::new(
            id,
            Aabb::from_center_half_extents(Vec3::new(x, y, 5.0), Vec3::splat(half)),
        )
    })
}

fn arb_field() -> impl Strategy<Value = ObstacleField> {
    prop::collection::vec(0.0f64..1.0, 0..12).prop_flat_map(|seeds| {
        let strategies: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, _)| arb_obstacle(i as u32))
            .collect();
        strategies.prop_map(ObstacleField::new)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_environments_have_invariants(cfg in arb_difficulty(), seed in 0u64..500) {
        let env = EnvironmentGenerator::new(cfg).generate(seed);
        // Start and goal are clear of obstacles and inside the bounds.
        prop_assert!(!env.field().is_occupied_with_margin(env.start(), 0.5));
        prop_assert!(!env.field().is_occupied_with_margin(env.goal(), 0.5));
        prop_assert!(env.bounds().contains(env.start()));
        prop_assert!(env.bounds().contains(env.goal()));
        // Mission length matches the requested goal distance.
        prop_assert!((env.mission_length() - cfg.goal_distance).abs() < 1e-6);
        // Every obstacle is inside the world bounds and rises from the ground.
        for o in env.obstacles() {
            prop_assert!(env.bounds().contains_aabb(&o.bounds));
            prop_assert!(o.bounds.min.z.abs() < 1e-9);
        }
        // Zone lookup is total and consistent with the layout ranges.
        for o in env.obstacles() {
            let zone = env.zone_at(o.center());
            let (lo, hi) = env.layout().zone_range(zone);
            prop_assert!(o.center().x >= lo - 1e-6 && o.center().x <= hi + 1e-6);
        }
    }

    #[test]
    fn same_seed_same_environment(cfg in arb_difficulty(), seed in 0u64..100) {
        let gen = EnvironmentGenerator::new(cfg);
        let a = gen.generate(seed);
        let b = gen.generate(seed);
        prop_assert_eq!(a.obstacles().len(), b.obstacles().len());
        for (oa, ob) in a.obstacles().iter().zip(b.obstacles()) {
            prop_assert_eq!(oa.bounds, ob.bounds);
        }
    }

    #[test]
    fn raycast_distance_never_exceeds_range(field in arb_field(),
                                            ox in -60.0f64..60.0, oy in -60.0f64..60.0,
                                            dx in -1.0f64..1.0, dy in -1.0f64..1.0,
                                            range in 1.0f64..80.0) {
        prop_assume!(dx.abs() + dy.abs() > 1e-3);
        let ray = Ray::new(Vec3::new(ox, oy, 5.0), Vec3::new(dx, dy, 0.0));
        let free = field.free_distance(&ray, range);
        prop_assert!(free >= 0.0 && free <= range + 1e-9);
        if let Some(hit) = field.raycast(&ray, range) {
            prop_assert!(hit.distance <= range + 1e-9);
            // The reported hit point is on the ray at the reported distance.
            prop_assert!((ray.at(hit.distance) - hit.point).norm() < 1e-9);
        }
    }

    #[test]
    fn visibility_bounded_and_monotone_in_ceiling(field in arb_field(),
                                                  px in -60.0f64..60.0, py in -60.0f64..60.0,
                                                  yaw in 0.0f64..std::f64::consts::TAU) {
        let clear = VisibilityModel::with_ceiling(40.0);
        let foggy = VisibilityModel::with_ceiling(10.0);
        let p = Vec3::new(px, py, 5.0);
        let dir = Vec3::new(yaw.cos(), yaw.sin(), 0.0);
        let v_clear = clear.visibility(&field, p, dir);
        let v_foggy = foggy.visibility(&field, p, dir);
        prop_assert!(v_clear >= clear.min_visibility && v_clear <= clear.max_visibility);
        prop_assert!(v_foggy >= foggy.min_visibility && v_foggy <= foggy.max_visibility);
        prop_assert!(v_foggy <= v_clear + 1e-9);
    }

    #[test]
    fn gap_analysis_invariants(field in arb_field(), px in -60.0f64..60.0, py in -60.0f64..60.0) {
        let g = GapAnalysis::analyze(&field, Vec3::new(px, py, 5.0), 40.0);
        prop_assert!(g.min_gap <= g.avg_gap + 1e-9);
        prop_assert!(g.min_gap >= 0.0);
        prop_assert!(g.nearest_obstacle >= 0.0);
        prop_assert!(g.min_gap <= GapAnalysis::OPEN_SPACE_GAP);
        prop_assert!(g.obstacle_count <= field.len());
    }

    #[test]
    fn aabb_gap_is_symmetric_and_zero_on_overlap(ax in -20.0f64..20.0, ay in -20.0f64..20.0,
                                                 bx in -20.0f64..20.0, by in -20.0f64..20.0,
                                                 ha in 0.5f64..4.0, hb in 0.5f64..4.0) {
        let a = Aabb::from_center_half_extents(Vec3::new(ax, ay, 5.0), Vec3::splat(ha));
        let b = Aabb::from_center_half_extents(Vec3::new(bx, by, 5.0), Vec3::splat(hb));
        let ab = aabb_gap(&a, &b);
        let ba = aabb_gap(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        if a.intersects(&b) {
            prop_assert!(ab < 1e-9);
        } else {
            prop_assert!(ab > 0.0);
        }
    }

    #[test]
    fn grid_point_queries_match_linear_scans(field in arb_field(),
                                             px in -60.0f64..60.0, py in -60.0f64..60.0,
                                             pz in 0.0f64..12.0,
                                             margin in 0.0f64..8.0,
                                             radius in 0.0f64..100.0) {
        let p = Vec3::new(px, py, pz);
        prop_assert_eq!(field.is_occupied(p), field.is_occupied_linear(p));
        prop_assert_eq!(
            field.is_occupied_with_margin(p, margin),
            field.is_occupied_with_margin_linear(p, margin)
        );
        prop_assert_eq!(field.distance_to_nearest(p), field.distance_to_nearest_linear(p));
        prop_assert_eq!(
            field.nearest_obstacle(p).map(|o| o.id),
            field.nearest_obstacle_linear(p).map(|o| o.id)
        );
        let indexed: Vec<u32> = field.obstacles_within(p, radius).iter().map(|o| o.id).collect();
        let linear: Vec<u32> = field.obstacles_within_linear(p, radius).iter().map(|o| o.id).collect();
        prop_assert_eq!(indexed, linear);
    }

    #[test]
    fn grid_raycast_matches_linear_scan(field in arb_field(),
                                        ox in -60.0f64..60.0, oy in -60.0f64..60.0,
                                        oz in 0.0f64..12.0,
                                        dx in -1.0f64..1.0, dy in -1.0f64..1.0,
                                        dz in -1.0f64..1.0,
                                        range in 1.0f64..120.0) {
        prop_assume!(dx.abs() + dy.abs() + dz.abs() > 1e-3);
        let ray = Ray::new(Vec3::new(ox, oy, oz), Vec3::new(dx, dy, dz));
        let indexed = field.raycast(&ray, range);
        let linear = field.raycast_linear(&ray, range);
        prop_assert_eq!(indexed, linear);
        prop_assert_eq!(
            field.free_distance(&ray, range),
            linear.map(|h| h.distance).unwrap_or(range)
        );
    }

    #[test]
    fn congested_zones_outweigh_open_zone(seed in 0u64..40) {
        let env = EnvironmentGenerator::new(DifficultyConfig::mid()).generate(seed);
        let mut counts = [0usize; 3];
        for o in env.obstacles() {
            match env.zone_at(o.center()) {
                Zone::A => counts[0] += 1,
                Zone::B => counts[1] += 1,
                Zone::C => counts[2] += 1,
            }
        }
        prop_assert!(counts[0] + counts[2] > counts[1]);
    }
}

/// The 4-wide and 8-wide broad-phase dispatch widths must answer every
/// query identically — width changes throughput, never results. Swept
/// over the shared adversarial box scenarios at both forced widths.
#[test]
fn simd_widths_agree_on_adversarial_box_scenarios() {
    use roborun_geom::SimdWidth;
    for (name, boxes) in roborun_conformance::adversarial_box_sets(23, 8.0) {
        let obstacles: Vec<Obstacle> = boxes
            .iter()
            .enumerate()
            .map(|(i, b)| Obstacle::new(i as u32, *b))
            .collect();
        let w4 = ObstacleField::with_simd_width(obstacles.clone(), SimdWidth::W4);
        let w8 = ObstacleField::with_simd_width(obstacles, SimdWidth::W8);
        for q in roborun_conformance::boundary_probes(23, w4.broad_phase_cell()) {
            assert_eq!(
                w4.distance_to_nearest(q),
                w8.distance_to_nearest(q),
                "distance diverged on {name} at {q}"
            );
            for margin in [0.0, 0.45, 2.0] {
                assert_eq!(
                    w4.is_occupied_with_margin(q, margin),
                    w8.is_occupied_with_margin(q, margin),
                    "margin occupancy diverged on {name} at {q} m={margin}"
                );
            }
            for dir in [
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(-0.6, 0.8, 0.0),
                Vec3::new(0.3, -0.5, 0.4),
            ] {
                let ray = Ray::new(q, dir);
                assert_eq!(
                    w4.raycast(&ray, 120.0),
                    w8.raycast(&ray, 120.0),
                    "raycast diverged on {name} at {q} dir {dir}"
                );
            }
        }
    }
}

/// The obstacle-field queries swept over the shared adversarial box
/// scenarios (empty world, one box, dense lattice, clusters, boxes whose
/// faces land exactly on broad-phase cell planes).
#[test]
fn adversarial_box_scenarios_match_linear_references() {
    for (name, boxes) in roborun_conformance::adversarial_box_sets(17, 8.0) {
        let field: ObstacleField = boxes
            .iter()
            .enumerate()
            .map(|(i, b)| Obstacle::new(i as u32, *b))
            .collect();
        for q in roborun_conformance::boundary_probes(17, field.broad_phase_cell()) {
            assert_eq!(
                field.distance_to_nearest(q),
                field.distance_to_nearest_linear(q),
                "distance diverged on {name} at {q}"
            );
            assert_eq!(
                field.nearest_obstacle(q).map(|o| o.id),
                field.nearest_obstacle_linear(q).map(|o| o.id),
                "nearest diverged on {name} at {q}"
            );
            for margin in [0.0, 0.45, 2.0] {
                assert_eq!(
                    field.is_occupied_with_margin(q, margin),
                    field.is_occupied_with_margin_linear(q, margin),
                    "margin occupancy diverged on {name} at {q} m={margin}"
                );
            }
        }
    }
}
