//! Property-based tests for the geometry primitives.

use proptest::prelude::*;
use roborun_geom::{
    percentile, precision_lattice, snap_to_lattice, Aabb, Aabb4, Aabb8, Polynomial, Pose, Ray,
    RunningStats, SplitMix64, Vec3, VoxelKey,
};

fn finite_coord() -> impl Strategy<Value = f64> {
    -1.0e3..1.0e3
}

fn arb_vec3() -> impl Strategy<Value = Vec3> {
    (finite_coord(), finite_coord(), finite_coord()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_aabb() -> impl Strategy<Value = Aabb> {
    (arb_vec3(), arb_vec3()).prop_map(|(a, b)| Aabb::new(a, b))
}

proptest! {
    #[test]
    fn vec3_add_commutes(a in arb_vec3(), b in arb_vec3()) {
        let lhs = a + b;
        let rhs = b + a;
        prop_assert!((lhs - rhs).norm() < 1e-9);
    }

    #[test]
    fn vec3_norm_triangle_inequality(a in arb_vec3(), b in arb_vec3()) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    #[test]
    fn vec3_lerp_stays_on_segment(a in arb_vec3(), b in arb_vec3(), t in 0.0f64..1.0) {
        let p = a.lerp(b, t);
        let seg = a.distance(b);
        prop_assert!(a.distance(p) <= seg + 1e-6);
        prop_assert!(b.distance(p) <= seg + 1e-6);
    }

    #[test]
    fn aabb_contains_its_center_and_corners(aabb in arb_aabb()) {
        prop_assert!(aabb.contains(aabb.center()));
        for c in aabb.corners() {
            prop_assert!(aabb.contains(c));
        }
    }

    #[test]
    fn aabb_union_contains_both(a in arb_aabb(), b in arb_aabb()) {
        let u = Aabb::union(&a, &b);
        prop_assert!(u.contains_aabb(&a));
        prop_assert!(u.contains_aabb(&b));
    }

    #[test]
    fn aabb_intersection_within_both(a in arb_aabb(), b in arb_aabb()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_aabb(&i));
            prop_assert!(b.contains_aabb(&i));
            prop_assert!(i.volume() <= a.volume() + 1e-9);
            prop_assert!(i.volume() <= b.volume() + 1e-9);
        }
    }

    #[test]
    fn ray_hit_points_lie_in_box(origin in arb_vec3(), dir in arb_vec3(), aabb in arb_aabb()) {
        prop_assume!(dir.norm() > 1e-6);
        let ray = Ray::new(origin, dir);
        if let Some(hit) = ray.intersect_aabb(&aabb) {
            prop_assert!(hit.t_min <= hit.t_max + 1e-9);
            // Entry and exit points are on/in the box (allow small tolerance).
            let grown = aabb.inflate(1e-6);
            prop_assert!(grown.contains(ray.at(hit.t_min)));
            prop_assert!(grown.contains(ray.at(hit.t_max)));
        }
    }

    #[test]
    fn batched_aabb4_slab_test_is_bit_identical_to_scalar(
        origin in arb_vec3(),
        dir in arb_vec3(),
        boxes in prop::collection::vec(arb_aabb(), 0..5),
    ) {
        prop_assume!(dir.norm() > 1e-6);
        // Axis-aligned (slab-parallel) directions are exercised too: zero
        // out components sometimes by snapping tiny ones.
        let ray = Ray::new(origin, dir);
        let pack = Aabb4::pack(&boxes);
        let batched = ray.intersect_aabb4(&pack);
        for (lane, b) in boxes.iter().enumerate() {
            let scalar = ray.intersect_aabb(b);
            prop_assert_eq!(
                batched[lane].map(|h| (h.t_min.to_bits(), h.t_max.to_bits())),
                scalar.map(|h| (h.t_min.to_bits(), h.t_max.to_bits())),
                "lane {} of {:?}", lane, b
            );
        }
        for (lane, result) in batched.iter().enumerate().skip(boxes.len()) {
            prop_assert!(result.is_none(), "padding lane {} hit", lane);
        }
    }

    #[test]
    fn batched_aabb4_axis_parallel_rays_match_scalar(
        origin in arb_vec3(),
        axis in 0usize..3,
        sign in any::<bool>(),
        boxes in prop::collection::vec(arb_aabb(), 1..5),
    ) {
        // Exactly axis-parallel rays drive the `d.abs() < 1e-12` slab
        // branch in every lane.
        let mut c = [0.0f64; 3];
        c[axis] = if sign { 1.0 } else { -1.0 };
        let ray = Ray::new(origin, Vec3::new(c[0], c[1], c[2]));
        let pack = Aabb4::pack(&boxes);
        let batched = ray.intersect_aabb4(&pack);
        for (lane, b) in boxes.iter().enumerate() {
            let scalar = ray.intersect_aabb(b);
            prop_assert_eq!(
                batched[lane].map(|h| (h.t_min.to_bits(), h.t_max.to_bits())),
                scalar.map(|h| (h.t_min.to_bits(), h.t_max.to_bits())),
                "lane {} of {:?}", lane, b
            );
        }
    }

    #[test]
    fn batched_aabb8_slab_test_is_bit_identical_to_scalar(
        origin in arb_vec3(),
        dir in arb_vec3(),
        boxes in prop::collection::vec(arb_aabb(), 0..9),
    ) {
        prop_assume!(dir.norm() > 1e-6);
        let ray = Ray::new(origin, dir);
        let pack = Aabb8::pack(&boxes);
        let batched = ray.intersect_aabb8(&pack);
        for (lane, b) in boxes.iter().enumerate() {
            let scalar = ray.intersect_aabb(b);
            prop_assert_eq!(
                batched[lane].map(|h| (h.t_min.to_bits(), h.t_max.to_bits())),
                scalar.map(|h| (h.t_min.to_bits(), h.t_max.to_bits())),
                "lane {} of {:?}", lane, b
            );
        }
        for (lane, result) in batched.iter().enumerate().skip(boxes.len()) {
            prop_assert!(result.is_none(), "padding lane {} hit", lane);
        }
    }

    #[test]
    fn batched_aabb8_axis_parallel_rays_match_scalar(
        origin in arb_vec3(),
        axis in 0usize..3,
        sign in any::<bool>(),
        boxes in prop::collection::vec(arb_aabb(), 1..9),
    ) {
        // Exactly axis-parallel rays drive the `d.abs() < 1e-12` slab
        // branch in every lane of the 8-wide kernel.
        let mut c = [0.0f64; 3];
        c[axis] = if sign { 1.0 } else { -1.0 };
        let ray = Ray::new(origin, Vec3::new(c[0], c[1], c[2]));
        let pack = Aabb8::pack(&boxes);
        let batched = ray.intersect_aabb8(&pack);
        for (lane, b) in boxes.iter().enumerate() {
            let scalar = ray.intersect_aabb(b);
            prop_assert_eq!(
                batched[lane].map(|h| (h.t_min.to_bits(), h.t_max.to_bits())),
                scalar.map(|h| (h.t_min.to_bits(), h.t_max.to_bits())),
                "lane {} of {:?}", lane, b
            );
        }
    }

    #[test]
    fn batched_aabb8_distance_is_bit_identical_to_scalar(
        p in arb_vec3(),
        boxes in prop::collection::vec(arb_aabb(), 0..9),
    ) {
        let pack = Aabb8::pack(&boxes);
        let d8 = pack.distance_to_point8(p);
        for (lane, b) in boxes.iter().enumerate() {
            prop_assert_eq!(
                d8[lane].to_bits(),
                b.distance_to_point(p).to_bits(),
                "lane {} of {:?}", lane, b
            );
        }
        for (lane, &d) in d8.iter().enumerate().skip(boxes.len()) {
            prop_assert_eq!(d, f64::INFINITY, "padding lane {} finite", lane);
        }
    }

    #[test]
    fn ray_march_points_are_ordered(origin in arb_vec3(), dir in arb_vec3(),
                                    step in 0.05f64..2.0, range in 0.0f64..50.0) {
        prop_assume!(dir.norm() > 1e-6);
        let ray = Ray::new(origin, dir);
        let pts: Vec<Vec3> = ray.march(step, range).collect();
        prop_assert!(!pts.is_empty());
        for w in pts.windows(2) {
            let d = w[0].distance(w[1]);
            prop_assert!((d - step).abs() < 1e-6);
        }
    }

    #[test]
    fn voxel_key_stable_within_voxel(p in arb_vec3(), size in 0.05f64..4.0) {
        let key = VoxelKey::from_point(p, size);
        let center = key.center(size);
        prop_assert_eq!(VoxelKey::from_point(center, size), key);
    }

    #[test]
    fn snap_is_idempotent_and_bounded(desired in 0.01f64..50.0) {
        let snapped = snap_to_lattice(desired, 0.3, 6);
        let again = snap_to_lattice(snapped, 0.3, 6);
        prop_assert!((snapped - again).abs() < 1e-12);
        let lattice = precision_lattice(0.3, 6);
        prop_assert!(snapped >= lattice[0] - 1e-12);
        prop_assert!(snapped <= *lattice.last().unwrap() + 1e-12);
    }

    #[test]
    fn running_stats_mean_between_min_max(xs in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let stats: RunningStats = xs.iter().copied().collect();
        prop_assert!(stats.mean() >= stats.min() - 1e-9);
        prop_assert!(stats.mean() <= stats.max() + 1e-9);
        prop_assert!(stats.variance() >= 0.0);
    }

    #[test]
    fn percentile_monotone_in_q(xs in prop::collection::vec(-1e3f64..1e3, 1..100),
                                q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = percentile(&xs, lo).unwrap();
        let p_hi = percentile(&xs, hi).unwrap();
        prop_assert!(p_lo <= p_hi + 1e-9);
    }

    #[test]
    fn pose_roundtrip(p in arb_vec3(), yaw in -10.0f64..10.0, body in arb_vec3()) {
        let pose = Pose::new(p, yaw);
        let back = pose.world_to_body(pose.body_to_world(body));
        prop_assert!((back - body).norm() < 1e-6);
    }

    #[test]
    fn polynomial_derivative_linearity(c in prop::collection::vec(-10.0f64..10.0, 1..6), x in -3.0f64..3.0) {
        let p = Polynomial::new(c.clone());
        let q = Polynomial::new(c.iter().map(|v| v * 2.0).collect());
        // d/dx (2p) == 2 d/dx p
        let lhs = q.derivative().eval(x);
        let rhs = 2.0 * p.derivative().eval(x);
        prop_assert!((lhs - rhs).abs() < 1e-6);
    }

    #[test]
    fn splitmix_uniform_bounds(seed in any::<u64>(), lo in -100.0f64..0.0, span in 0.001f64..100.0) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            let x = rng.uniform(lo, lo + span);
            prop_assert!(x >= lo && x < lo + span);
        }
    }
}

/// The point-grid nearest/radius queries swept over the shared adversarial
/// scenario family (exact voxel-face points, dense lattices, clusters) at
/// several cell sizes — shapes uniform random sampling rarely produces.
#[test]
fn adversarial_point_scenarios_match_linear_references() {
    use roborun_geom::index::{nearest_linear, within_radius_linear, PointGridIndex};
    for cell in [0.5, 1.0, 4.0] {
        for scenario in roborun_conformance::adversarial_point_sets(5, cell) {
            let mut index = PointGridIndex::new(cell);
            for &p in &scenario.points {
                index.insert(p);
            }
            for q in roborun_conformance::boundary_probes(5, cell) {
                assert_eq!(
                    index.nearest(q),
                    nearest_linear(&scenario.points, q),
                    "nearest diverged on {} cell={cell} q={q}",
                    scenario.name
                );
                for radius in [0.0, cell * 0.5, cell, 13.7] {
                    assert_eq!(
                        index.within_radius(q, radius),
                        within_radius_linear(&scenario.points, q, radius),
                        "within_radius diverged on {} cell={cell} q={q} r={radius}",
                        scenario.name
                    );
                }
            }
        }
    }
}
