//! 3-D double precision vectors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-D vector of `f64` components.
///
/// Used throughout the workspace for positions (metres), velocities
/// (metres/second) and unit directions.
///
/// # Example
///
/// ```
/// use roborun_geom::Vec3;
/// let a = Vec3::new(1.0, 2.0, 3.0);
/// let b = Vec3::new(4.0, 5.0, 6.0);
/// assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
/// assert!((a.dot(b) - 32.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component (altitude in world frames).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (cheaper than [`Vec3::norm`]).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn distance_squared(self, other: Vec3) -> f64 {
        (self - other).norm_squared()
    }

    /// Horizontal (XY-plane) distance to `other`, ignoring altitude.
    #[inline]
    pub fn horizontal_distance(self, other: Vec3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Returns the vector normalised to unit length, or `None` if its norm
    /// is smaller than `1e-12`.
    #[inline]
    pub fn try_normalize(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Returns the vector normalised to unit length.
    ///
    /// # Panics
    ///
    /// Panics if the vector norm is smaller than `1e-12`.
    #[inline]
    pub fn normalize(self) -> Vec3 {
        self.try_normalize()
            .expect("cannot normalize a (near-)zero vector")
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Clamps each component of the vector between the corresponding
    /// components of `lo` and `hi`.
    #[inline]
    pub fn clamp(self, lo: Vec3, hi: Vec3) -> Vec3 {
        self.max(lo).min(hi)
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Projection of `self` onto `other`.
    ///
    /// Returns `Vec3::ZERO` if `other` is (near-)zero.
    #[inline]
    pub fn project_onto(self, other: Vec3) -> Vec3 {
        let denom = other.norm_squared();
        if denom < 1e-24 {
            Vec3::ZERO
        } else {
            other * (self.dot(other) / denom)
        }
    }

    /// Rotates the vector by `yaw` radians about the +Z axis.
    #[inline]
    pub fn rotate_z(self, yaw: f64) -> Vec3 {
        let (s, c) = yaw.sin_cos();
        Vec3::new(c * self.x - s * self.y, s * self.x + c * self.y, self.z)
    }

    /// Returns the components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;

    /// Indexes the vector: `0 → x`, `1 → y`, `2 → z`.
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    fn index(&self, index: usize) -> &f64 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl std::iter::Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |acc, v| acc + v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::splat(1.0);
        v -= Vec3::new(0.0, 1.0, 0.0);
        v *= 3.0;
        v /= 2.0;
        assert_eq!(v, Vec3::new(3.0, 1.5, 3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::X;
        let b = Vec3::Y;
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::Z);
        assert_eq!(b.cross(a), -Vec3::Z);
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        assert!((v.norm_squared() - 25.0).abs() < 1e-12);
        assert!((Vec3::ZERO.distance(v) - 5.0).abs() < 1e-12);
        assert!((Vec3::ZERO.distance_squared(v) - 25.0).abs() < 1e-12);
        let w = Vec3::new(3.0, 4.0, 10.0);
        assert!((Vec3::ZERO.horizontal_distance(w) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_unit_length() {
        let v = Vec3::new(1.0, -2.0, 2.0).normalize();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Vec3::ZERO.try_normalize().is_none());
    }

    #[test]
    #[should_panic(expected = "cannot normalize")]
    fn normalize_zero_panics() {
        let _ = Vec3::ZERO.normalize();
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn min_max_clamp_abs() {
        let a = Vec3::new(1.0, -5.0, 3.0);
        let b = Vec3::new(0.0, 2.0, 4.0);
        assert_eq!(a.min(b), Vec3::new(0.0, -5.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(1.0, 2.0, 4.0));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 3.0));
        assert_eq!(
            a.clamp(Vec3::splat(-1.0), Vec3::splat(1.0)),
            Vec3::new(1.0, -1.0, 1.0)
        );
        assert_eq!(a.max_component(), 3.0);
        assert_eq!(a.min_component(), -5.0);
    }

    #[test]
    fn projection() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        let onto_x = v.project_onto(Vec3::X * 10.0);
        assert!((onto_x - Vec3::new(3.0, 0.0, 0.0)).norm() < 1e-12);
        assert_eq!(v.project_onto(Vec3::ZERO), Vec3::ZERO);
    }

    #[test]
    fn rotate_z_quarter_turn() {
        let v = Vec3::X.rotate_z(std::f64::consts::FRAC_PI_2);
        assert!((v - Vec3::Y).norm() < 1e-12);
    }

    #[test]
    fn indexing_and_conversion() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
        let arr: [f64; 3] = v.into();
        assert_eq!(arr, [1.0, 2.0, 3.0]);
        assert_eq!(Vec3::from([1.0, 2.0, 3.0]), v);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexing_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn sum_of_iterator() {
        let total: Vec3 = (0..4).map(|i| Vec3::splat(i as f64)).sum();
        assert_eq!(total, Vec3::splat(6.0));
    }

    #[test]
    fn finite_check() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn display_formatting() {
        assert_eq!(
            format!("{}", Vec3::new(1.0, 2.5, -3.0)),
            "(1.000, 2.500, -3.000)"
        );
    }
}
