//! Axis-aligned bounding boxes.

use crate::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned bounding box defined by its minimum and maximum corners.
///
/// Obstacles in the simulated world, sensor field-of-view approximations
/// and map regions are all represented as `Aabb`s.
///
/// # Example
///
/// ```
/// use roborun_geom::{Aabb, Vec3};
/// let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0));
/// assert!((b.volume() - 24.0).abs() < 1e-12);
/// assert!(b.contains(Vec3::new(1.0, 1.0, 1.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner (inclusive).
    pub min: Vec3,
    /// Maximum corner (inclusive).
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from its two corners.
    ///
    /// The corners are re-ordered component-wise so the resulting box is
    /// always well formed (`min ≤ max` on every axis).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Creates a box centred at `center` extending `half_extents` on each side.
    ///
    /// # Panics
    ///
    /// Panics if any half extent is negative.
    pub fn from_center_half_extents(center: Vec3, half_extents: Vec3) -> Self {
        assert!(
            half_extents.x >= 0.0 && half_extents.y >= 0.0 && half_extents.z >= 0.0,
            "half extents must be non-negative, got {half_extents:?}"
        );
        Aabb {
            min: center - half_extents,
            max: center + half_extents,
        }
    }

    /// The smallest box containing both `a` and `b`.
    pub fn union(a: &Aabb, b: &Aabb) -> Aabb {
        Aabb {
            min: a.min.min(b.min),
            max: a.max.max(b.max),
        }
    }

    /// The smallest box containing every point of the iterator, or `None`
    /// for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Option<Aabb> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut aabb = Aabb {
            min: first,
            max: first,
        };
        for p in iter {
            aabb.min = aabb.min.min(p);
            aabb.max = aabb.max.max(p);
        }
        Some(aabb)
    }

    /// Geometric centre of the box.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Half extents (distance from centre to each face).
    #[inline]
    pub fn half_extents(&self) -> Vec3 {
        (self.max - self.min) * 0.5
    }

    /// Edge lengths of the box.
    #[inline]
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Volume in cubic metres.
    #[inline]
    pub fn volume(&self) -> f64 {
        let s = self.size();
        s.x * s.y * s.z
    }

    /// Surface area.
    #[inline]
    pub fn surface_area(&self) -> f64 {
        let s = self.size();
        2.0 * (s.x * s.y + s.y * s.z + s.z * s.x)
    }

    /// `true` if the point lies inside or on the boundary of the box.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// `true` if `other` is entirely contained in `self`.
    #[inline]
    pub fn contains_aabb(&self, other: &Aabb) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// `true` if the two boxes overlap (sharing a face counts as overlap).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// The overlap region of two boxes, or `None` if they do not intersect.
    pub fn intersection(&self, other: &Aabb) -> Option<Aabb> {
        if !self.intersects(other) {
            return None;
        }
        Some(Aabb {
            min: self.min.max(other.min),
            max: self.max.min(other.max),
        })
    }

    /// Returns the box grown by `margin` on every side.
    ///
    /// A negative margin shrinks the box; the result is clamped so it never
    /// inverts (each axis keeps `min ≤ max`).
    pub fn inflate(&self, margin: f64) -> Aabb {
        let m = Vec3::splat(margin);
        let min = self.min - m;
        let max = self.max + m;
        Aabb {
            min: min.min(self.center()),
            max: max.max(self.center()),
        }
    }

    /// Closest point inside the box to `p` (equals `p` when `p` is inside).
    #[inline]
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        p.clamp(self.min, self.max)
    }

    /// Euclidean distance from `p` to the box (zero when inside).
    #[inline]
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// The eight corner points of the box.
    pub fn corners(&self) -> [Vec3; 8] {
        let (lo, hi) = (self.min, self.max);
        [
            Vec3::new(lo.x, lo.y, lo.z),
            Vec3::new(hi.x, lo.y, lo.z),
            Vec3::new(lo.x, hi.y, lo.z),
            Vec3::new(hi.x, hi.y, lo.z),
            Vec3::new(lo.x, lo.y, hi.z),
            Vec3::new(hi.x, lo.y, hi.z),
            Vec3::new(lo.x, hi.y, hi.z),
            Vec3::new(hi.x, hi.y, hi.z),
        ]
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(1.0))
    }

    #[test]
    fn new_reorders_corners() {
        let b = Aabb::new(Vec3::new(2.0, -1.0, 5.0), Vec3::new(-2.0, 1.0, 0.0));
        assert_eq!(b.min, Vec3::new(-2.0, -1.0, 0.0));
        assert_eq!(b.max, Vec3::new(2.0, 1.0, 5.0));
    }

    #[test]
    fn center_extents_size_volume() {
        let b = Aabb::from_center_half_extents(Vec3::new(1.0, 2.0, 3.0), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.half_extents(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.size(), Vec3::new(2.0, 4.0, 6.0));
        assert!((b.volume() - 48.0).abs() < 1e-12);
        assert!((b.surface_area() - 2.0 * (8.0 + 24.0 + 12.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_half_extents_panic() {
        let _ = Aabb::from_center_half_extents(Vec3::ZERO, Vec3::new(-1.0, 0.0, 0.0));
    }

    #[test]
    fn containment() {
        let b = unit_box();
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::splat(1.0)));
        assert!(!b.contains(Vec3::new(1.1, 0.5, 0.5)));
        let inner = Aabb::new(Vec3::splat(0.25), Vec3::splat(0.75));
        assert!(b.contains_aabb(&inner));
        assert!(!inner.contains_aabb(&b));
    }

    #[test]
    fn intersection_and_union() {
        let a = unit_box();
        let b = Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0));
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Aabb::new(Vec3::splat(0.5), Vec3::splat(1.0)));
        let c = Aabb::new(Vec3::splat(5.0), Vec3::splat(6.0));
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_none());
        let u = Aabb::union(&a, &c);
        assert_eq!(u, Aabb::new(Vec3::ZERO, Vec3::splat(6.0)));
    }

    #[test]
    fn from_points() {
        let pts = vec![
            Vec3::new(1.0, 5.0, -2.0),
            Vec3::new(-3.0, 0.0, 4.0),
            Vec3::new(0.0, 2.0, 0.0),
        ];
        let b = Aabb::from_points(pts).unwrap();
        assert_eq!(b.min, Vec3::new(-3.0, 0.0, -2.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 4.0));
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn inflate_and_distance() {
        let b = unit_box();
        let g = b.inflate(1.0);
        assert_eq!(g, Aabb::new(Vec3::splat(-1.0), Vec3::splat(2.0)));
        // Shrinking more than the half extents clamps at the centre.
        let s = b.inflate(-10.0);
        assert!(s.min.x <= s.max.x && s.min.y <= s.max.y && s.min.z <= s.max.z);
        assert!((b.distance_to_point(Vec3::new(3.0, 0.5, 0.5)) - 2.0).abs() < 1e-12);
        assert_eq!(b.distance_to_point(Vec3::splat(0.5)), 0.0);
    }

    #[test]
    fn corners_are_all_distinct_and_contained() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0));
        let corners = b.corners();
        for c in corners {
            assert!(b.contains(c));
        }
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_ne!(corners[i], corners[j]);
            }
        }
    }

    #[test]
    fn display_contains_corners() {
        let s = format!("{}", unit_box());
        assert!(s.contains("0.000"));
        assert!(s.contains("1.000"));
    }
}
