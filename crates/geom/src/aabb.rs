//! Axis-aligned bounding boxes.

use crate::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned bounding box defined by its minimum and maximum corners.
///
/// Obstacles in the simulated world, sensor field-of-view approximations
/// and map regions are all represented as `Aabb`s.
///
/// # Example
///
/// ```
/// use roborun_geom::{Aabb, Vec3};
/// let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0));
/// assert!((b.volume() - 24.0).abs() < 1e-12);
/// assert!(b.contains(Vec3::new(1.0, 1.0, 1.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner (inclusive).
    pub min: Vec3,
    /// Maximum corner (inclusive).
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from its two corners.
    ///
    /// The corners are re-ordered component-wise so the resulting box is
    /// always well formed (`min ≤ max` on every axis).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Creates a box centred at `center` extending `half_extents` on each side.
    ///
    /// # Panics
    ///
    /// Panics if any half extent is negative.
    pub fn from_center_half_extents(center: Vec3, half_extents: Vec3) -> Self {
        assert!(
            half_extents.x >= 0.0 && half_extents.y >= 0.0 && half_extents.z >= 0.0,
            "half extents must be non-negative, got {half_extents:?}"
        );
        Aabb {
            min: center - half_extents,
            max: center + half_extents,
        }
    }

    /// The smallest box containing both `a` and `b`.
    pub fn union(a: &Aabb, b: &Aabb) -> Aabb {
        Aabb {
            min: a.min.min(b.min),
            max: a.max.max(b.max),
        }
    }

    /// The smallest box containing every point of the iterator, or `None`
    /// for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Option<Aabb> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut aabb = Aabb {
            min: first,
            max: first,
        };
        for p in iter {
            aabb.min = aabb.min.min(p);
            aabb.max = aabb.max.max(p);
        }
        Some(aabb)
    }

    /// Geometric centre of the box.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Half extents (distance from centre to each face).
    #[inline]
    pub fn half_extents(&self) -> Vec3 {
        (self.max - self.min) * 0.5
    }

    /// Edge lengths of the box.
    #[inline]
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Volume in cubic metres.
    #[inline]
    pub fn volume(&self) -> f64 {
        let s = self.size();
        s.x * s.y * s.z
    }

    /// Surface area.
    #[inline]
    pub fn surface_area(&self) -> f64 {
        let s = self.size();
        2.0 * (s.x * s.y + s.y * s.z + s.z * s.x)
    }

    /// `true` if the point lies inside or on the boundary of the box.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// `true` if `other` is entirely contained in `self`.
    #[inline]
    pub fn contains_aabb(&self, other: &Aabb) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// `true` if the two boxes overlap (sharing a face counts as overlap).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// The overlap region of two boxes, or `None` if they do not intersect.
    pub fn intersection(&self, other: &Aabb) -> Option<Aabb> {
        if !self.intersects(other) {
            return None;
        }
        Some(Aabb {
            min: self.min.max(other.min),
            max: self.max.min(other.max),
        })
    }

    /// Returns the box grown by `margin` on every side.
    ///
    /// A negative margin shrinks the box; the result is clamped so it never
    /// inverts (each axis keeps `min ≤ max`).
    pub fn inflate(&self, margin: f64) -> Aabb {
        let m = Vec3::splat(margin);
        let min = self.min - m;
        let max = self.max + m;
        Aabb {
            min: min.min(self.center()),
            max: max.max(self.center()),
        }
    }

    /// Closest point inside the box to `p` (equals `p` when `p` is inside).
    #[inline]
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        p.clamp(self.min, self.max)
    }

    /// Euclidean distance from `p` to the box (zero when inside).
    #[inline]
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// The eight corner points of the box.
    pub fn corners(&self) -> [Vec3; 8] {
        let (lo, hi) = (self.min, self.max);
        [
            Vec3::new(lo.x, lo.y, lo.z),
            Vec3::new(hi.x, lo.y, lo.z),
            Vec3::new(lo.x, hi.y, lo.z),
            Vec3::new(hi.x, hi.y, lo.z),
            Vec3::new(lo.x, lo.y, hi.z),
            Vec3::new(hi.x, lo.y, hi.z),
            Vec3::new(lo.x, hi.y, hi.z),
            Vec3::new(hi.x, hi.y, hi.z),
        ]
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

/// Four axis-aligned boxes in struct-of-arrays layout, the batch unit of
/// the SIMD-ready slab test [`crate::Ray::intersect_aabb4`].
///
/// Broad-phase cells store many small boxes whose slab tests the raycast
/// inner loop evaluates one after another; laying four of them out
/// coordinate-by-coordinate (`min_x[0..4]`, `min_y[0..4]`, …) turns the
/// per-axis slab arithmetic into four independent lanes over contiguous
/// `f64`s — the shape an auto-vectoriser (or an explicit `f64x4` port)
/// needs, with no gather step. A partial pack records how many lanes are
/// real in [`Aabb4::len`]; the batched test masks the padding lanes to
/// misses after the (branch-free) lane arithmetic, so a partial pack
/// answers exactly like the scalar loop over its real boxes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb4 {
    /// Minimum x of each lane.
    pub min_x: [f64; 4],
    /// Minimum y of each lane.
    pub min_y: [f64; 4],
    /// Minimum z of each lane.
    pub min_z: [f64; 4],
    /// Maximum x of each lane.
    pub max_x: [f64; 4],
    /// Maximum y of each lane.
    pub max_y: [f64; 4],
    /// Maximum z of each lane.
    pub max_z: [f64; 4],
    /// Number of real lanes (`0..=4`); the rest are padding.
    len: usize,
}

impl Default for Aabb4 {
    fn default() -> Self {
        Aabb4::empty()
    }
}

impl Aabb4 {
    /// A pack with no real lanes: every query misses.
    pub fn empty() -> Self {
        Aabb4 {
            min_x: [0.0; 4],
            min_y: [0.0; 4],
            min_z: [0.0; 4],
            max_x: [0.0; 4],
            max_y: [0.0; 4],
            max_z: [0.0; 4],
            len: 0,
        }
    }

    /// Packs up to four boxes; remaining lanes are padding and never hit.
    ///
    /// # Panics
    ///
    /// Panics when given more than four boxes.
    pub fn pack(boxes: &[Aabb]) -> Self {
        assert!(boxes.len() <= 4, "Aabb4 holds at most 4 boxes");
        let mut pack = Aabb4::empty();
        for b in boxes {
            pack.push(b);
        }
        pack
    }

    /// Appends a box to the next free lane.
    ///
    /// # Panics
    ///
    /// Panics when all four lanes are already filled.
    pub fn push(&mut self, b: &Aabb) {
        assert!(self.len < 4, "Aabb4 holds at most 4 boxes");
        let lane = self.len;
        self.min_x[lane] = b.min.x;
        self.min_y[lane] = b.min.y;
        self.min_z[lane] = b.min.z;
        self.max_x[lane] = b.max.x;
        self.max_y[lane] = b.max.y;
        self.max_z[lane] = b.max.z;
        self.len += 1;
    }

    /// Number of real lanes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// The box stored in one real lane.
    ///
    /// # Panics
    ///
    /// Panics when `lane >= self.len()`.
    pub fn lane(&self, lane: usize) -> Aabb {
        assert!(
            lane < self.len,
            "lane {lane} out of range (len {})",
            self.len
        );
        Aabb {
            min: Vec3::new(self.min_x[lane], self.min_y[lane], self.min_z[lane]),
            max: Vec3::new(self.max_x[lane], self.max_y[lane], self.max_z[lane]),
        }
    }

    /// The per-lane slab bounds of one axis (`0 = x`, `1 = y`, `2 = z`).
    #[inline]
    pub(crate) fn axis_slabs(&self, axis: usize) -> (&[f64; 4], &[f64; 4]) {
        match axis {
            0 => (&self.min_x, &self.max_x),
            1 => (&self.min_y, &self.max_y),
            _ => (&self.min_z, &self.max_z),
        }
    }

    /// Batched point distance: each real lane computes *exactly* the
    /// arithmetic of [`Aabb::distance_to_point`] (per-axis clamp via
    /// `max`/`min`, then the x²+y²+z² square root, in the same order),
    /// so `distance_to_point4(p)[l]` is bit-identical to
    /// `self.lane(l).distance_to_point(p)`. Padding lanes report
    /// `f64::INFINITY`, which loses every `<=`/`<` comparison a caller
    /// can make. The per-lane loops run over contiguous `f64`s with no
    /// branches — the shape an auto-vectoriser needs.
    #[inline]
    pub fn distance_to_point4(&self, p: Vec3) -> [f64; 4] {
        let mut out: [f64; 4] = std::array::from_fn(|lane| {
            let cx = p.x.max(self.min_x[lane]).min(self.max_x[lane]);
            let cy = p.y.max(self.min_y[lane]).min(self.max_y[lane]);
            let cz = p.z.max(self.min_z[lane]).min(self.max_z[lane]);
            let dx = cx - p.x;
            let dy = cy - p.y;
            let dz = cz - p.z;
            (dx * dx + dy * dy + dz * dz).sqrt()
        });
        for d in out.iter_mut().skip(self.len) {
            *d = f64::INFINITY;
        }
        out
    }
}

/// Eight axis-aligned boxes in struct-of-arrays layout, the AVX-width
/// batch unit of the SIMD-ready slab test [`crate::Ray::intersect_aabb8`].
///
/// This is the 8-lane sibling of [`Aabb4`]: same layout idea
/// (`min_x[0..8]`, `min_y[0..8]`, …), same padding contract (a partial
/// pack records how many lanes are real in [`Aabb8::len`] and the batched
/// kernels mask the padding lanes to misses *after* the branch-free lane
/// arithmetic). Eight `f64` lanes span two AVX registers (or four SSE2
/// ones), so on an AVX target the auto-vectoriser keeps twice as many
/// slab compares in flight per loop iteration; which width a broad-phase
/// cell packs is chosen at build time by [`crate::simd::SimdWidth`]
/// runtime dispatch, and both widths answer bit-identically to the
/// scalar loop over the pack's real boxes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb8 {
    /// Minimum x of each lane.
    pub min_x: [f64; 8],
    /// Minimum y of each lane.
    pub min_y: [f64; 8],
    /// Minimum z of each lane.
    pub min_z: [f64; 8],
    /// Maximum x of each lane.
    pub max_x: [f64; 8],
    /// Maximum y of each lane.
    pub max_y: [f64; 8],
    /// Maximum z of each lane.
    pub max_z: [f64; 8],
    /// Number of real lanes (`0..=8`); the rest are padding.
    len: usize,
}

impl Default for Aabb8 {
    fn default() -> Self {
        Aabb8::empty()
    }
}

impl Aabb8 {
    /// A pack with no real lanes: every query misses.
    pub fn empty() -> Self {
        Aabb8 {
            min_x: [0.0; 8],
            min_y: [0.0; 8],
            min_z: [0.0; 8],
            max_x: [0.0; 8],
            max_y: [0.0; 8],
            max_z: [0.0; 8],
            len: 0,
        }
    }

    /// Packs up to eight boxes; remaining lanes are padding and never hit.
    ///
    /// # Panics
    ///
    /// Panics when given more than eight boxes.
    pub fn pack(boxes: &[Aabb]) -> Self {
        assert!(boxes.len() <= 8, "Aabb8 holds at most 8 boxes");
        let mut pack = Aabb8::empty();
        for b in boxes {
            pack.push(b);
        }
        pack
    }

    /// Appends a box to the next free lane.
    ///
    /// # Panics
    ///
    /// Panics when all eight lanes are already filled.
    pub fn push(&mut self, b: &Aabb) {
        assert!(self.len < 8, "Aabb8 holds at most 8 boxes");
        let lane = self.len;
        self.min_x[lane] = b.min.x;
        self.min_y[lane] = b.min.y;
        self.min_z[lane] = b.min.z;
        self.max_x[lane] = b.max.x;
        self.max_y[lane] = b.max.y;
        self.max_z[lane] = b.max.z;
        self.len += 1;
    }

    /// Number of real lanes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// The box stored in one real lane.
    ///
    /// # Panics
    ///
    /// Panics when `lane >= self.len()`.
    pub fn lane(&self, lane: usize) -> Aabb {
        assert!(
            lane < self.len,
            "lane {lane} out of range (len {})",
            self.len
        );
        Aabb {
            min: Vec3::new(self.min_x[lane], self.min_y[lane], self.min_z[lane]),
            max: Vec3::new(self.max_x[lane], self.max_y[lane], self.max_z[lane]),
        }
    }

    /// The per-lane slab bounds of one axis (`0 = x`, `1 = y`, `2 = z`).
    #[inline]
    pub(crate) fn axis_slabs(&self, axis: usize) -> (&[f64; 8], &[f64; 8]) {
        match axis {
            0 => (&self.min_x, &self.max_x),
            1 => (&self.min_y, &self.max_y),
            _ => (&self.min_z, &self.max_z),
        }
    }

    /// Batched point distance: each real lane computes *exactly* the
    /// arithmetic of [`Aabb::distance_to_point`] (per-axis clamp via
    /// `max`/`min`, then the x²+y²+z² square root, in the same order),
    /// so `distance_to_point8(p)[l]` is bit-identical to
    /// `self.lane(l).distance_to_point(p)`. Padding lanes report
    /// `f64::INFINITY`, which loses every `<=`/`<` comparison a caller
    /// can make. The per-lane loops run over contiguous `f64`s with no
    /// branches — the shape an auto-vectoriser needs.
    #[inline]
    pub fn distance_to_point8(&self, p: Vec3) -> [f64; 8] {
        let mut out: [f64; 8] = std::array::from_fn(|lane| {
            let cx = p.x.max(self.min_x[lane]).min(self.max_x[lane]);
            let cy = p.y.max(self.min_y[lane]).min(self.max_y[lane]);
            let cz = p.z.max(self.min_z[lane]).min(self.max_z[lane]);
            let dx = cx - p.x;
            let dy = cy - p.y;
            let dz = cz - p.z;
            (dx * dx + dy * dy + dz * dz).sqrt()
        });
        for d in out.iter_mut().skip(self.len) {
            *d = f64::INFINITY;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(1.0))
    }

    #[test]
    fn new_reorders_corners() {
        let b = Aabb::new(Vec3::new(2.0, -1.0, 5.0), Vec3::new(-2.0, 1.0, 0.0));
        assert_eq!(b.min, Vec3::new(-2.0, -1.0, 0.0));
        assert_eq!(b.max, Vec3::new(2.0, 1.0, 5.0));
    }

    #[test]
    fn center_extents_size_volume() {
        let b = Aabb::from_center_half_extents(Vec3::new(1.0, 2.0, 3.0), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.half_extents(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.size(), Vec3::new(2.0, 4.0, 6.0));
        assert!((b.volume() - 48.0).abs() < 1e-12);
        assert!((b.surface_area() - 2.0 * (8.0 + 24.0 + 12.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_half_extents_panic() {
        let _ = Aabb::from_center_half_extents(Vec3::ZERO, Vec3::new(-1.0, 0.0, 0.0));
    }

    #[test]
    fn containment() {
        let b = unit_box();
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::splat(1.0)));
        assert!(!b.contains(Vec3::new(1.1, 0.5, 0.5)));
        let inner = Aabb::new(Vec3::splat(0.25), Vec3::splat(0.75));
        assert!(b.contains_aabb(&inner));
        assert!(!inner.contains_aabb(&b));
    }

    #[test]
    fn intersection_and_union() {
        let a = unit_box();
        let b = Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0));
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Aabb::new(Vec3::splat(0.5), Vec3::splat(1.0)));
        let c = Aabb::new(Vec3::splat(5.0), Vec3::splat(6.0));
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_none());
        let u = Aabb::union(&a, &c);
        assert_eq!(u, Aabb::new(Vec3::ZERO, Vec3::splat(6.0)));
    }

    #[test]
    fn from_points() {
        let pts = vec![
            Vec3::new(1.0, 5.0, -2.0),
            Vec3::new(-3.0, 0.0, 4.0),
            Vec3::new(0.0, 2.0, 0.0),
        ];
        let b = Aabb::from_points(pts).unwrap();
        assert_eq!(b.min, Vec3::new(-3.0, 0.0, -2.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 4.0));
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn inflate_and_distance() {
        let b = unit_box();
        let g = b.inflate(1.0);
        assert_eq!(g, Aabb::new(Vec3::splat(-1.0), Vec3::splat(2.0)));
        // Shrinking more than the half extents clamps at the centre.
        let s = b.inflate(-10.0);
        assert!(s.min.x <= s.max.x && s.min.y <= s.max.y && s.min.z <= s.max.z);
        assert!((b.distance_to_point(Vec3::new(3.0, 0.5, 0.5)) - 2.0).abs() < 1e-12);
        assert_eq!(b.distance_to_point(Vec3::splat(0.5)), 0.0);
    }

    #[test]
    fn corners_are_all_distinct_and_contained() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0));
        let corners = b.corners();
        for c in corners {
            assert!(b.contains(c));
        }
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_ne!(corners[i], corners[j]);
            }
        }
    }

    #[test]
    fn display_contains_corners() {
        let s = format!("{}", unit_box());
        assert!(s.contains("0.000"));
        assert!(s.contains("1.000"));
    }

    #[test]
    fn aabb4_packs_and_unpacks_lanes() {
        let boxes = [
            unit_box(),
            Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0)),
            Aabb::new(Vec3::new(-5.0, 0.0, 1.0), Vec3::new(-1.0, 4.0, 2.0)),
        ];
        let pack = Aabb4::pack(&boxes);
        assert_eq!(pack.len(), 3);
        for (i, b) in boxes.iter().enumerate() {
            assert_eq!(pack.lane(i), *b);
        }
        assert_eq!(Aabb4::empty().len(), 0);
        assert_eq!(Aabb4::default(), Aabb4::empty());
        let mut grown = Aabb4::empty();
        grown.push(&unit_box());
        assert_eq!(grown.len(), 1);
        assert_eq!(grown.lane(0), unit_box());
    }

    #[test]
    fn aabb4_distance_matches_scalar_per_lane() {
        let boxes = [
            unit_box(),
            Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0)),
            Aabb::new(Vec3::new(-5.0, 0.0, 1.0), Vec3::new(-1.0, 4.0, 2.0)),
        ];
        let pack = Aabb4::pack(&boxes);
        for p in [
            Vec3::ZERO,
            Vec3::splat(0.5),
            Vec3::new(4.0, -2.0, 7.5),
            Vec3::new(-3.0, 2.0, 1.5),
            Vec3::new(1.0, 1.0, 1.0),
        ] {
            let batched = pack.distance_to_point4(p);
            for (lane, b) in boxes.iter().enumerate() {
                assert_eq!(
                    batched[lane].to_bits(),
                    b.distance_to_point(p).to_bits(),
                    "lane {lane} at {p}"
                );
            }
            assert_eq!(batched[3], f64::INFINITY, "padding lane must never win");
        }
        assert!(Aabb4::empty()
            .distance_to_point4(Vec3::ZERO)
            .iter()
            .all(|d| *d == f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "at most 4")]
    fn aabb4_rejects_oversized_packs() {
        let _ = Aabb4::pack(&[unit_box(); 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn aabb4_padding_lane_is_inaccessible() {
        let pack = Aabb4::pack(&[unit_box()]);
        let _ = pack.lane(1);
    }

    #[test]
    fn aabb8_packs_and_unpacks_lanes() {
        let boxes = [
            unit_box(),
            Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0)),
            Aabb::new(Vec3::new(-5.0, 0.0, 1.0), Vec3::new(-1.0, 4.0, 2.0)),
            Aabb::new(Vec3::new(7.0, -2.0, 0.5), Vec3::new(9.0, -1.0, 1.5)),
            Aabb::new(Vec3::splat(-8.0), Vec3::splat(-6.0)),
        ];
        let pack = Aabb8::pack(&boxes);
        assert_eq!(pack.len(), 5);
        for (i, b) in boxes.iter().enumerate() {
            assert_eq!(pack.lane(i), *b);
        }
        assert_eq!(Aabb8::empty().len(), 0);
        assert_eq!(Aabb8::default(), Aabb8::empty());
        let mut grown = Aabb8::empty();
        grown.push(&unit_box());
        assert_eq!(grown.len(), 1);
        assert_eq!(grown.lane(0), unit_box());
    }

    #[test]
    fn aabb8_distance_matches_scalar_per_lane() {
        let boxes = [
            unit_box(),
            Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0)),
            Aabb::new(Vec3::new(-5.0, 0.0, 1.0), Vec3::new(-1.0, 4.0, 2.0)),
            Aabb::new(Vec3::new(7.0, -2.0, 0.5), Vec3::new(9.0, -1.0, 1.5)),
            Aabb::new(Vec3::splat(-8.0), Vec3::splat(-6.0)),
        ];
        let pack = Aabb8::pack(&boxes);
        for p in [
            Vec3::ZERO,
            Vec3::splat(0.5),
            Vec3::new(4.0, -2.0, 7.5),
            Vec3::new(-3.0, 2.0, 1.5),
            Vec3::new(1.0, 1.0, 1.0),
        ] {
            let batched = pack.distance_to_point8(p);
            for (lane, b) in boxes.iter().enumerate() {
                assert_eq!(
                    batched[lane].to_bits(),
                    b.distance_to_point(p).to_bits(),
                    "lane {lane} at {p}"
                );
            }
            for d in batched.iter().skip(boxes.len()) {
                assert_eq!(*d, f64::INFINITY, "padding lane must never win");
            }
        }
        assert!(Aabb8::empty()
            .distance_to_point8(Vec3::ZERO)
            .iter()
            .all(|d| *d == f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "at most 8")]
    fn aabb8_rejects_oversized_packs() {
        let _ = Aabb8::pack(&[unit_box(); 9]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn aabb8_padding_lane_is_inaccessible() {
        let pack = Aabb8::pack(&[unit_box()]);
        let _ = pack.lane(1);
    }
}
