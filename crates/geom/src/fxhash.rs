//! A fast, deterministic hasher for small fixed-size keys.
//!
//! The spatial indices probe `VoxelKey`-keyed hash maps millions of times
//! per planning decision; the standard library's SipHash costs more than
//! the rest of the probe combined. This is the Firefox `FxHash` algorithm
//! (multiply-xor, not DoS-resistant), which hashes a `VoxelKey` in a few
//! multiplies. All grid structures in the workspace key their maps with it.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FxHasher`]; plugs into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher (the rustc/Firefox `FxHash` function).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VoxelKey;

    #[test]
    fn deterministic_across_instances() {
        let key = VoxelKey {
            x: 17,
            y: -4,
            z: 88,
        };
        let mut map_a: FxHashMap<VoxelKey, u32> = FxHashMap::default();
        let mut map_b: FxHashMap<VoxelKey, u32> = FxHashMap::default();
        map_a.insert(key, 1);
        map_b.insert(key, 2);
        assert_eq!(map_a.get(&key), Some(&1));
        assert_eq!(map_b.get(&key), Some(&2));
    }

    #[test]
    fn distinct_keys_distinct_buckets_mostly() {
        let mut set: FxHashSet<VoxelKey> = FxHashSet::default();
        for x in -10..10 {
            for y in -10..10 {
                for z in -3..3 {
                    set.insert(VoxelKey { x, y, z });
                }
            }
        }
        assert_eq!(set.len(), 20 * 20 * 6);
    }

    #[test]
    fn partial_byte_writes_hash() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3]);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(&[1, 2, 4]);
        assert_ne!(a, h.finish());
    }
}
