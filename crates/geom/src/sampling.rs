//! Deterministic random sampling helpers.
//!
//! The environment generator and the RRT* planner both need reproducible
//! pseudo-random numbers. Rather than threading a `rand` RNG (whose stream
//! can change across versions) through library code, we use a small,
//! self-contained SplitMix64 generator with explicit seeds, plus the
//! Box–Muller transform for the Gaussian congestion clusters the paper's
//! environment generator uses.

use crate::{Aabb, Vec3};
use serde::{Deserialize, Serialize};

/// SplitMix64 pseudo-random number generator.
///
/// Small, fast, and statistically good enough for procedural environment
/// generation and stochastic planning. Every experiment in the workspace
/// takes an explicit `u64` seed, making runs reproducible bit-for-bit.
///
/// # Example
///
/// ```
/// use roborun_geom::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 bits of mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform double in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform range inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize requires n > 0");
        (self.next_u64() % n as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn gaussian(&mut self) -> f64 {
        // Avoid log(0).
        let u1 = self.next_f64().max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev < 0`.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.gaussian()
    }

    /// Uniform point inside an axis-aligned box.
    pub fn point_in_aabb(&mut self, aabb: &Aabb) -> Vec3 {
        Vec3::new(
            self.uniform(aabb.min.x, aabb.max.x),
            self.uniform(aabb.min.y, aabb.max.y),
            self.uniform(aabb.min.z, aabb.max.z),
        )
    }

    /// Gaussian-distributed point around `center` with per-axis standard
    /// deviation `spread` — how the paper's environment generator scatters
    /// obstacles around congestion-cluster centres.
    pub fn point_around(&mut self, center: Vec3, spread: Vec3) -> Vec3 {
        Vec3::new(
            self.gaussian_with(center.x, spread.x.max(0.0)),
            self.gaussian_with(center.y, spread.y.max(0.0)),
            self.gaussian_with(center.z, spread.z.max(0.0)),
        )
    }

    /// Derives an independent generator (e.g. one per congestion cluster)
    /// from this one.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let x = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            let i = rng.uniform_usize(10);
            assert!(i < 10);
        }
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn uniform_inverted_range_panics() {
        let _ = SplitMix64::new(0).uniform(1.0, 0.0);
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = SplitMix64::new(1234);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SplitMix64::new(99);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian_with(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.08, "mean {mean}");
        assert!((var - 9.0).abs() < 0.4, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(3);
        assert!((0..100).all(|_| rng.chance(1.5)));
        assert!((0..100).all(|_| !rng.chance(-0.5)));
    }

    #[test]
    fn point_in_aabb_contained() {
        let mut rng = SplitMix64::new(5);
        let b = Aabb::new(Vec3::new(-10.0, 0.0, 2.0), Vec3::new(10.0, 40.0, 12.0));
        for _ in 0..500 {
            assert!(b.contains(rng.point_in_aabb(&b)));
        }
    }

    #[test]
    fn point_around_spreads_with_sigma() {
        let mut rng = SplitMix64::new(77);
        let center = Vec3::new(100.0, 50.0, 5.0);
        let tight: Vec<Vec3> = (0..2000)
            .map(|_| rng.point_around(center, Vec3::splat(1.0)))
            .collect();
        let wide: Vec<Vec3> = (0..2000)
            .map(|_| rng.point_around(center, Vec3::splat(10.0)))
            .collect();
        let spread =
            |pts: &[Vec3]| pts.iter().map(|p| p.distance(center)).sum::<f64>() / pts.len() as f64;
        assert!(spread(&wide) > 4.0 * spread(&tight));
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SplitMix64::new(11);
        let mut child = parent.fork();
        // The parent stream after forking differs from the child stream.
        let parent_next: Vec<u64> = (0..5).map(|_| parent.next_u64()).collect();
        let child_next: Vec<u64> = (0..5).map(|_| child.next_u64()).collect();
        assert_ne!(parent_next, child_next);
    }
}
