//! Spatial acceleration structures: a uniform-grid point index, the shared
//! expanding-ring search driver and a DDA voxel ray walker.
//!
//! These are the broad-phase primitives behind the workspace's hot
//! kernels: RRT* nearest/near queries ([`PointGridIndex`]), the obstacle
//! field's ray casts and the sensor simulation ([`GridRayWalk`]), and every
//! nearest-obstacle query in the workspace ([`RingSearch`]). All are
//! exact accelerators — every query is specified to return the same result
//! as the corresponding linear scan, which the equivalence proptests in
//! each consumer crate enforce.
//!
//! # The `RingSearch` contract
//!
//! [`RingSearch`] is the single driver behind the four nearest-something
//! queries that used to hand-roll the same loop
//! (`PointGridIndex::nearest`, `ObstacleField::nearest_indexed`,
//! `PlannerMap::distance_to_nearest`,
//! `OccupancyMap::nearest_occupied_distance`). It enumerates the Chebyshev
//! shells around the query's cell, from the first ring that can touch the
//! occupied key bounds outward, and stops as soon as no further ring can
//! improve the caller's current best. Callers provide a single
//! `visit_cell` closure that inspects one candidate cell and returns the
//! updated **squared** distance bound.
//!
//! Two invariants make the search exact:
//!
//! * **Pruning invariant** — the bound returned by `visit_cell` (and the
//!   `initial_bound_squared` seed) must never be smaller than the squared
//!   distance of an answer the caller would still accept. The driver skips
//!   a cell only when its exact lower bound
//!   ([`cell_min_distance_squared`]) *strictly* exceeds the bound, and
//!   stops only when a whole ring strictly exceeds it, so bound-equal
//!   candidates (ties) are always visited and the caller's tie-breaking
//!   matches a linear first-wins scan.
//! * **Fallback budget** — a caller whose linear reference is cheap can
//!   configure [`RingSearch::with_fallback_budget`]: once the driver has
//!   enumerated more cells than the budget, it stops and reports
//!   [`RingSearchOutcome::BudgetExhausted`], and the *caller* finishes the
//!   query with its retained linear scan (the pluggable fallback policy).
//!   Because the linear reference is exact by definition, the fallback
//!   never changes the result, only the cost curve.

use crate::fxhash::FxHashMap;
use crate::{Ray, Vec3, VoxelKey};

/// How a [`RingSearch::run`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingSearchOutcome {
    /// Every ring that could improve the bound was enumerated; the caller's
    /// accumulated best is the final answer.
    Complete,
    /// The configured fallback budget was exhausted before the rings
    /// converged; the caller must finish the query with its linear
    /// reference scan.
    BudgetExhausted,
}

/// The shared expanding-ring nearest-search driver (see the module docs for
/// the exactness contract).
///
/// A `RingSearch` is configured with the grid geometry (cell size and the
/// occupied key bounds) plus two optional policies: a hard cap on the ring
/// radius (for radius-limited queries) and a cell-visit budget past which
/// the search abandons the rings in favour of the caller's linear fallback.
///
/// # Example
///
/// ```
/// use roborun_geom::index::{RingSearch, RingSearchOutcome};
/// use roborun_geom::{Vec3, VoxelKey};
///
/// // One occupied cell at the origin of a 1 m grid.
/// let occupied = VoxelKey { x: 0, y: 0, z: 0 };
/// let search = RingSearch::new(1.0, occupied, occupied);
/// let mut best: Option<f64> = None;
/// let outcome = search.run(Vec3::new(3.2, 0.1, 0.3), None, |key| {
///     if key == occupied {
///         best = Some(2.7); // pretend distance to the cell's content
///     }
///     best.map(|d| d * d)
/// });
/// assert_eq!(outcome, RingSearchOutcome::Complete);
/// assert_eq!(best, Some(2.7));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RingSearch {
    cell: f64,
    key_min: VoxelKey,
    key_max: VoxelKey,
    max_ring_cap: Option<i64>,
    fallback_budget: Option<usize>,
}

impl RingSearch {
    /// Creates a driver over a grid of `cell`-sized voxels whose occupied
    /// keys all lie inside `[key_min, key_max]` (componentwise).
    ///
    /// # Panics
    ///
    /// Panics if `cell <= 0` or is not finite.
    pub fn new(cell: f64, key_min: VoxelKey, key_max: VoxelKey) -> Self {
        assert!(
            cell > 0.0 && cell.is_finite(),
            "cell size must be positive and finite, got {cell}"
        );
        RingSearch {
            cell,
            key_min,
            key_max,
            max_ring_cap: None,
            fallback_budget: None,
        }
    }

    /// Limits the search to rings of Chebyshev radius `<= cap` — used by
    /// radius-limited queries whose answer beyond the cap is "none".
    pub fn cap_max_ring(mut self, cap: i64) -> Self {
        self.max_ring_cap = Some(cap);
        self
    }

    /// Stops the ring search once more than `cells` candidate cells have
    /// been enumerated and reports [`RingSearchOutcome::BudgetExhausted`]
    /// instead, letting the caller finish with its linear reference. The
    /// budget is checked between rings, exactly like the hand-rolled loops
    /// this driver replaced.
    pub fn with_fallback_budget(mut self, cells: usize) -> Self {
        self.fallback_budget = Some(cells);
        self
    }

    /// Runs the search around `query`.
    ///
    /// `visit_cell` is called for every candidate cell that passes the
    /// lower-bound prune (innermost rings first) and returns the updated
    /// squared distance bound — `None` while no acceptable candidate has
    /// been found. `initial_bound_squared` seeds the bound for queries that
    /// start with a cutoff (e.g. a maximum radius).
    pub fn run(
        &self,
        query: Vec3,
        initial_bound_squared: Option<f64>,
        mut visit_cell: impl FnMut(VoxelKey) -> Option<f64>,
    ) -> RingSearchOutcome {
        let center = VoxelKey::from_point(query, self.cell);
        // Rings closer than the occupied key bounds are empty — skip them;
        // rings beyond the bounds cannot hold an occupied cell — stop there.
        let start_ring = {
            let dx = (self.key_min.x - center.x).max(center.x - self.key_max.x);
            let dy = (self.key_min.y - center.y).max(center.y - self.key_max.y);
            let dz = (self.key_min.z - center.z).max(center.z - self.key_max.z);
            dx.max(dy).max(dz).max(0)
        };
        let mut max_ring = {
            let dx = (center.x - self.key_min.x).max(self.key_max.x - center.x);
            let dy = (center.y - self.key_min.y).max(self.key_max.y - center.y);
            let dz = (center.z - self.key_min.z).max(self.key_max.z - center.z);
            dx.max(dy).max(dz).max(0)
        };
        if let Some(cap) = self.max_ring_cap {
            max_ring = max_ring.min(cap);
        }
        let mut bound = initial_bound_squared;
        let mut visited = 0usize;
        for ring in start_ring..=max_ring {
            if let Some(b2) = bound {
                // Every cell in this ring is at least (ring-1) cells away
                // from the query point, so once that lower bound exceeds
                // the best distance no further ring can improve it.
                let ring_min = (ring as f64 - 1.0).max(0.0) * self.cell;
                if ring_min * ring_min > b2 {
                    break;
                }
            }
            if let Some(budget) = self.fallback_budget {
                if visited > budget {
                    return RingSearchOutcome::BudgetExhausted;
                }
            }
            for_each_shell_key_in(center, ring, self.key_min, self.key_max, |key| {
                visited += 1;
                // Exact lower bound on the distance from `query` to any
                // content of this cell; skip the cell when it cannot beat
                // the current bound (ties keep the cell, preserving the
                // caller's tie-breaking).
                if let Some(b2) = bound {
                    if cell_min_distance_squared(key, self.cell, query) > b2 {
                        return;
                    }
                }
                bound = visit_cell(key);
            });
        }
        RingSearchOutcome::Complete
    }
}

/// A uniform-grid index over an incrementally grown set of points.
///
/// Points are bucketed by the [`VoxelKey`] of the cell containing them.
/// [`PointGridIndex::nearest`] and [`PointGridIndex::within_radius`] visit
/// only the cells an expanding search ring (respectively a bounding cube)
/// touches, turning the O(n) scans of a growing RRT* tree into near-O(1)
/// lookups.
///
/// # Example
///
/// ```
/// use roborun_geom::index::PointGridIndex;
/// use roborun_geom::Vec3;
///
/// let mut index = PointGridIndex::new(4.0);
/// index.insert(Vec3::ZERO);
/// index.insert(Vec3::new(10.0, 0.0, 0.0));
/// assert_eq!(index.nearest(Vec3::new(9.0, 0.0, 0.0)), Some(1));
/// assert_eq!(index.within_radius(Vec3::ZERO, 2.0), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct PointGridIndex {
    cell: f64,
    points: Vec<Vec3>,
    cells: FxHashMap<VoxelKey, Vec<u32>>,
    key_min: VoxelKey,
    key_max: VoxelKey,
}

impl PointGridIndex {
    /// Creates an empty index with the given cell edge length (metres).
    ///
    /// # Panics
    ///
    /// Panics if `cell_size <= 0` or is not finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell size must be positive and finite, got {cell_size}"
        );
        PointGridIndex {
            cell: cell_size,
            points: Vec::new(),
            cells: FxHashMap::default(),
            key_min: VoxelKey { x: 0, y: 0, z: 0 },
            key_max: VoxelKey { x: 0, y: 0, z: 0 },
        }
    }

    /// Cell edge length (metres).
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points have been inserted.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points, in insertion order (the point's id is its index).
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Position of the point with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn position(&self, id: u32) -> Vec3 {
        self.points[id as usize]
    }

    /// Removes every point while keeping the bucket map's table allocation,
    /// so a long-lived index (e.g. a planner scratch reused across replans)
    /// re-fills without re-growing the hash table each time.
    pub fn clear(&mut self) {
        self.points.clear();
        self.cells.clear();
        self.key_min = VoxelKey { x: 0, y: 0, z: 0 };
        self.key_max = VoxelKey { x: 0, y: 0, z: 0 };
    }

    /// Inserts a point and returns its id (insertion index).
    pub fn insert(&mut self, p: Vec3) -> u32 {
        let id = u32::try_from(self.points.len()).expect("point index overflow");
        let key = VoxelKey::from_point(p, self.cell);
        if self.points.is_empty() {
            self.key_min = key;
            self.key_max = key;
        } else {
            self.key_min = self.key_min.componentwise_min(key);
            self.key_max = self.key_max.componentwise_max(key);
        }
        self.points.push(p);
        self.cells.entry(key).or_default().push(id);
        id
    }

    /// Id of the point closest to `target` (squared-distance metric), or
    /// `None` when empty. Ties resolve to the lowest id, matching a linear
    /// first-wins scan.
    pub fn nearest(&self, target: Vec3) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let mut best: Option<(f64, u32)> = None;
        RingSearch::new(self.cell, self.key_min, self.key_max).run(target, None, |key| {
            if let Some(ids) = self.cells.get(&key) {
                for &id in ids {
                    let d2 = self.points[id as usize].distance_squared(target);
                    let better = match best {
                        None => true,
                        Some((bd2, bid)) => d2 < bd2 || (d2 == bd2 && id < bid),
                    };
                    if better {
                        best = Some((d2, id));
                    }
                }
            }
            best.map(|(d2, _)| d2)
        });
        best.map(|(_, id)| id)
    }

    /// Ids of all points within `radius` of `p` (Euclidean `<=` test, the
    /// same predicate as a linear scan), in ascending id order.
    pub fn within_radius(&self, p: Vec3, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.within_radius_into(p, radius, &mut out);
        out
    }

    /// Allocation-free [`PointGridIndex::within_radius`]: clears `out` and
    /// fills it with the same ids in the same ascending order, reusing the
    /// buffer's capacity. Hot per-sample callers (the RRT* near-set query)
    /// keep one scratch buffer alive instead of allocating two `Vec`s per
    /// sample.
    pub fn within_radius_into(&self, p: Vec3, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        if self.points.is_empty() || radius < 0.0 {
            return;
        }
        let lo = VoxelKey::from_point(p - Vec3::splat(radius), self.cell)
            .componentwise_max(self.key_min);
        let hi = VoxelKey::from_point(p + Vec3::splat(radius), self.cell)
            .componentwise_min(self.key_max);
        let cube_cells = (hi.x - lo.x + 1).max(0) as u128
            * (hi.y - lo.y + 1).max(0) as u128
            * (hi.z - lo.z + 1).max(0) as u128;
        if cube_cells > self.cells.len() as u128 {
            // The cube covers more cells than exist: walking the occupied
            // cells directly is cheaper.
            for (key, ids) in &self.cells {
                if key.x >= lo.x
                    && key.x <= hi.x
                    && key.y >= lo.y
                    && key.y <= hi.y
                    && key.z >= lo.z
                    && key.z <= hi.z
                {
                    out.extend(ids.iter().copied());
                }
            }
        } else {
            for x in lo.x..=hi.x {
                for y in lo.y..=hi.y {
                    for z in lo.z..=hi.z {
                        if let Some(ids) = self.cells.get(&VoxelKey { x, y, z }) {
                            out.extend(ids.iter().copied());
                        }
                    }
                }
            }
        }
        // Filter before sorting: the distance test typically discards most
        // gathered ids, and sorting the survivors is much cheaper.
        out.retain(|&id| self.points[id as usize].distance(p) <= radius);
        out.sort_unstable();
    }
}

/// Squared distance from `p` to the closest point of the cell `key` at the
/// given cell size (zero when `p` lies inside the cell).
pub fn cell_min_distance_squared(key: VoxelKey, cell: f64, p: Vec3) -> f64 {
    let mut d2 = 0.0;
    for (k, coord) in [(key.x, p.x), (key.y, p.y), (key.z, p.z)] {
        let lo = k as f64 * cell;
        let hi = lo + cell;
        let d = (lo - coord).max(coord - hi).max(0.0);
        d2 += d * d;
    }
    d2
}

/// Calls `visit` for every key in the Chebyshev shell of radius `ring`
/// around `center` (each key exactly once). Ring 0 is the centre cell
/// itself. This is the building block of every expanding-ring search in the
/// workspace.
pub fn for_each_shell_key(center: VoxelKey, ring: i64, visit: impl FnMut(VoxelKey)) {
    const NO_LO: VoxelKey = VoxelKey {
        x: i64::MIN,
        y: i64::MIN,
        z: i64::MIN,
    };
    const NO_HI: VoxelKey = VoxelKey {
        x: i64::MAX,
        y: i64::MAX,
        z: i64::MAX,
    };
    for_each_shell_key_in(center, ring, NO_LO, NO_HI, visit);
}

/// [`for_each_shell_key`] restricted to the key box `[lo, hi]`: keys
/// outside the box are skipped without being enumerated, which keeps thin
/// or small grids cheap even for large rings.
pub fn for_each_shell_key_in(
    center: VoxelKey,
    ring: i64,
    lo: VoxelKey,
    hi: VoxelKey,
    mut visit: impl FnMut(VoxelKey),
) {
    if ring <= 0 {
        if center.x >= lo.x
            && center.x <= hi.x
            && center.y >= lo.y
            && center.y <= hi.y
            && center.z >= lo.z
            && center.z <= hi.z
        {
            visit(center);
        }
        return;
    }
    let y_full = (center.y - ring).max(lo.y)..=(center.y + ring).min(hi.y);
    let z_full = (center.z - ring).max(lo.z)..=(center.z + ring).min(hi.z);
    // Two full faces orthogonal to X, then the remaining strips of the
    // Y and Z faces, so each shell cell is visited exactly once.
    for &x in &[center.x - ring, center.x + ring] {
        if x < lo.x || x > hi.x {
            continue;
        }
        for y in y_full.clone() {
            for z in z_full.clone() {
                visit(VoxelKey { x, y, z });
            }
        }
    }
    let x_inner = (center.x - ring + 1).max(lo.x)..(center.x + ring).min(hi.x.saturating_add(1));
    for x in x_inner {
        for &y in &[center.y - ring, center.y + ring] {
            if y < lo.y || y > hi.y {
                continue;
            }
            for z in z_full.clone() {
                visit(VoxelKey { x, y, z });
            }
        }
        let y_inner =
            (center.y - ring + 1).max(lo.y)..(center.y + ring).min(hi.y.saturating_add(1));
        for y in y_inner {
            for &z in &[center.z - ring, center.z + ring] {
                if z < lo.z || z > hi.z {
                    continue;
                }
                visit(VoxelKey { x, y, z });
            }
        }
    }
}

/// Amanatides–Woo voxel traversal: iterates the grid cells a ray passes
/// through, in increasing-`t` order, together with each cell's entry
/// parameter.
///
/// The walk starts in the cell containing the ray origin (entry `t = 0`)
/// and ends once the next cell would be entered beyond `max_t`.
///
/// # Example
///
/// ```
/// use roborun_geom::index::GridRayWalk;
/// use roborun_geom::{Ray, Vec3, VoxelKey};
///
/// let ray = Ray::new(Vec3::new(0.5, 0.5, 0.5), Vec3::X);
/// let cells: Vec<(VoxelKey, f64)> = GridRayWalk::new(&ray, 1.0, 2.0).collect();
/// assert_eq!(cells.len(), 3);
/// assert_eq!(cells[0].0, VoxelKey { x: 0, y: 0, z: 0 });
/// assert_eq!(cells[1].0, VoxelKey { x: 1, y: 0, z: 0 });
/// assert!((cells[1].1 - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct GridRayWalk {
    key: VoxelKey,
    step: [i64; 3],
    t_next: [f64; 3],
    t_delta: [f64; 3],
    max_t: f64,
    started: bool,
    done: bool,
}

impl GridRayWalk {
    /// Starts a walk along `ray` over a grid of `cell_size` cells, ending
    /// at parameter `max_t`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size <= 0` or is not finite.
    pub fn new(ray: &Ray, cell_size: f64, max_t: f64) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell size must be positive and finite, got {cell_size}"
        );
        let key = VoxelKey::from_point(ray.origin, cell_size);
        let cells = [key.x, key.y, key.z];
        let mut step = [0i64; 3];
        let mut t_next = [f64::INFINITY; 3];
        let mut t_delta = [f64::INFINITY; 3];
        for axis in 0..3 {
            let d = ray.direction[axis];
            if d.abs() < 1e-12 {
                continue;
            }
            step[axis] = if d > 0.0 { 1 } else { -1 };
            let boundary_cell = cells[axis] + i64::from(d > 0.0);
            let boundary = boundary_cell as f64 * cell_size;
            t_next[axis] = (boundary - ray.origin[axis]) / d;
            t_delta[axis] = cell_size / d.abs();
        }
        GridRayWalk {
            key,
            step,
            t_next,
            t_delta,
            max_t,
            started: false,
            done: max_t < 0.0,
        }
    }
}

impl Iterator for GridRayWalk {
    type Item = (VoxelKey, f64);

    fn next(&mut self) -> Option<(VoxelKey, f64)> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some((self.key, 0.0));
        }
        let axis = (0..3)
            .min_by(|&a, &b| {
                self.t_next[a]
                    .partial_cmp(&self.t_next[b])
                    .expect("traversal times are never NaN")
            })
            .expect("three axes");
        let t_entry = self.t_next[axis];
        if !t_entry.is_finite() || t_entry > self.max_t {
            self.done = true;
            return None;
        }
        match axis {
            0 => self.key.x += self.step[0],
            1 => self.key.y += self.step[1],
            _ => self.key.z += self.step[2],
        }
        self.t_next[axis] += self.t_delta[axis];
        Some((self.key, t_entry))
    }
}

/// Reference linear nearest-point scan (squared-distance metric, first
/// minimal index wins) — retained for equivalence tests and benchmarks.
pub fn nearest_linear(points: &[Vec3], target: Vec3) -> Option<u32> {
    let mut best: Option<(f64, u32)> = None;
    for (i, p) in points.iter().enumerate() {
        let d2 = p.distance_squared(target);
        if best.map(|(bd2, _)| d2 < bd2).unwrap_or(true) {
            best = Some((d2, i as u32));
        }
    }
    best.map(|(_, i)| i)
}

/// Reference linear radius scan (`distance <= radius`, ascending index) —
/// retained for equivalence tests and benchmarks.
pub fn within_radius_linear(points: &[Vec3], p: Vec3, radius: f64) -> Vec<u32> {
    points
        .iter()
        .enumerate()
        .filter(|(_, q)| q.distance(p) <= radius)
        .map(|(i, _)| i as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    fn random_points(seed: u64, n: usize, span: f64) -> Vec<Vec3> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.uniform(-span, span),
                    rng.uniform(-span, span),
                    rng.uniform(-span, span),
                )
            })
            .collect()
    }

    #[test]
    fn empty_index_queries() {
        let index = PointGridIndex::new(2.0);
        assert!(index.is_empty());
        assert_eq!(index.len(), 0);
        assert_eq!(index.nearest(Vec3::ZERO), None);
        assert!(index.within_radius(Vec3::ZERO, 10.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_panics() {
        let _ = PointGridIndex::new(0.0);
    }

    #[test]
    fn nearest_matches_linear_on_random_points() {
        for seed in 0..20 {
            let points = random_points(seed, 200, 50.0);
            let mut index = PointGridIndex::new(4.0);
            for &p in &points {
                index.insert(p);
            }
            let queries = random_points(seed + 1000, 50, 80.0);
            for q in queries {
                assert_eq!(index.nearest(q), nearest_linear(&points, q), "seed {seed}");
            }
        }
    }

    #[test]
    fn within_radius_matches_linear_on_random_points() {
        for seed in 0..20 {
            let points = random_points(seed, 200, 50.0);
            let mut index = PointGridIndex::new(4.0);
            for &p in &points {
                index.insert(p);
            }
            let mut rng = SplitMix64::new(seed + 2000);
            for _ in 0..30 {
                let q = Vec3::new(
                    rng.uniform(-80.0, 80.0),
                    rng.uniform(-80.0, 80.0),
                    rng.uniform(-80.0, 80.0),
                );
                let radius = rng.uniform(0.0, 60.0);
                assert_eq!(
                    index.within_radius(q, radius),
                    within_radius_linear(&points, q, radius),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn nearest_ties_resolve_to_lowest_id() {
        let mut index = PointGridIndex::new(1.0);
        // Two points equidistant from the query, in different cells.
        index.insert(Vec3::new(-2.0, 0.0, 0.0));
        index.insert(Vec3::new(2.0, 0.0, 0.0));
        assert_eq!(index.nearest(Vec3::ZERO), Some(0));
    }

    #[test]
    fn incremental_growth_extends_bounds() {
        let mut index = PointGridIndex::new(2.0);
        index.insert(Vec3::ZERO);
        // Far point inserted later must still be found.
        index.insert(Vec3::new(500.0, -300.0, 120.0));
        assert_eq!(index.nearest(Vec3::new(490.0, -290.0, 110.0)), Some(1));
        assert_eq!(
            index.within_radius(Vec3::new(500.0, -300.0, 120.0), 1.0),
            vec![1]
        );
    }

    #[test]
    fn ray_walk_visits_marched_cells() {
        // Every cell a fine march visits must appear in the walk, in order.
        let mut rng = SplitMix64::new(9);
        for _ in 0..50 {
            let origin = Vec3::new(
                rng.uniform(-10.0, 10.0),
                rng.uniform(-10.0, 10.0),
                rng.uniform(-10.0, 10.0),
            );
            let dir = Vec3::new(
                rng.uniform(-1.0, 1.0),
                rng.uniform(-1.0, 1.0),
                rng.uniform(-1.0, 1.0),
            );
            if dir.norm() < 1e-6 {
                continue;
            }
            let ray = Ray::new(origin, dir);
            let cell = 2.0;
            let max_t = 40.0;
            let walked: Vec<VoxelKey> = GridRayWalk::new(&ray, cell, max_t)
                .map(|(k, _)| k)
                .collect();
            let mut cursor = 0usize;
            let mut t = 0.0;
            while t <= max_t {
                let key = VoxelKey::from_point(ray.at(t), cell);
                // Advance the walk cursor to this key; boundary samples may
                // land one cell ahead, so allow skipping walked cells but
                // never going backwards.
                if let Some(pos) = walked[cursor..].iter().position(|&k| k == key) {
                    cursor += pos;
                } else {
                    panic!("marched cell {key:?} missing from walk at t={t}");
                }
                t += 0.05;
            }
        }
    }

    #[test]
    fn ray_walk_entry_parameters_are_monotone() {
        let ray = Ray::new(Vec3::new(0.3, 0.7, -0.2), Vec3::new(1.0, -0.5, 0.25));
        let walk: Vec<(VoxelKey, f64)> = GridRayWalk::new(&ray, 1.5, 30.0).collect();
        assert!(walk.len() > 10);
        for pair in walk.windows(2) {
            assert!(pair[1].1 > pair[0].1 - 1e-12);
            assert!(pair[0].0.manhattan_distance(&pair[1].0) == 1);
        }
        assert_eq!(walk[0].1, 0.0);
        assert!(walk.last().unwrap().1 <= 30.0);
    }

    #[test]
    fn shell_keys_partition_the_cube() {
        use std::collections::HashSet;
        let center = VoxelKey { x: 3, y: -2, z: 7 };
        let mut seen: HashSet<VoxelKey> = HashSet::new();
        let mut count = 0usize;
        for ring in 0..=3 {
            for_each_shell_key(center, ring, |key| {
                assert!(seen.insert(key), "key {key:?} visited twice");
                let cheb = (key.x - center.x)
                    .abs()
                    .max((key.y - center.y).abs())
                    .max((key.z - center.z).abs());
                assert_eq!(cheb, ring);
                count += 1;
            });
        }
        // Rings 0..=3 exactly tile the 7x7x7 cube.
        assert_eq!(count, 7 * 7 * 7);
    }

    #[test]
    fn ring_search_reports_budget_exhaustion() {
        // A wide occupied key box with a tiny budget: the driver must give
        // up between rings instead of enumerating the whole box.
        let lo = VoxelKey {
            x: -20,
            y: -20,
            z: -20,
        };
        let hi = VoxelKey {
            x: 20,
            y: 20,
            z: 20,
        };
        let mut visited = 0usize;
        let outcome =
            RingSearch::new(1.0, lo, hi)
                .with_fallback_budget(5)
                .run(Vec3::ZERO, None, |_| {
                    visited += 1;
                    None // never found: forces the search outward
                });
        assert_eq!(outcome, RingSearchOutcome::BudgetExhausted);
        assert!(visited > 5, "budget is checked between rings");
    }

    #[test]
    fn ring_search_cap_limits_radius() {
        let lo = VoxelKey {
            x: -10,
            y: -10,
            z: -10,
        };
        let hi = VoxelKey {
            x: 10,
            y: 10,
            z: 10,
        };
        let mut max_seen = 0i64;
        let outcome = RingSearch::new(1.0, lo, hi).cap_max_ring(2).run(
            Vec3::new(0.5, 0.5, 0.5),
            Some(1e9),
            |key| {
                max_seen = max_seen.max(key.x.abs().max(key.y.abs()).max(key.z.abs()));
                Some(1e9)
            },
        );
        assert_eq!(outcome, RingSearchOutcome::Complete);
        assert_eq!(max_seen, 2);
    }

    #[test]
    fn ring_search_initial_bound_prunes_far_rings() {
        // With a 2-cell initial bound, rings past the bound are never
        // enumerated even though the key box is huge.
        let lo = VoxelKey {
            x: -100,
            y: -100,
            z: -100,
        };
        let hi = VoxelKey {
            x: 100,
            y: 100,
            z: 100,
        };
        let mut rings_seen = std::collections::HashSet::new();
        RingSearch::new(1.0, lo, hi).run(Vec3::new(0.5, 0.5, 0.5), Some(4.0), |key| {
            rings_seen.insert(key.x.abs().max(key.y.abs()).max(key.z.abs()));
            Some(4.0)
        });
        // The ring loop breaks once (ring-1)² > 4 (ring 4); ring-3 cells
        // are all at least 2.5 m away, so the cell prune skips every one.
        assert!(rings_seen.contains(&2));
        assert!(!rings_seen.contains(&3));
        assert!(!rings_seen.contains(&4));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ring_search_rejects_bad_cell() {
        let k = VoxelKey { x: 0, y: 0, z: 0 };
        let _ = RingSearch::new(-1.0, k, k);
    }

    #[test]
    fn ray_walk_axis_aligned_and_degenerate() {
        let ray = Ray::new(Vec3::new(0.5, 0.5, 0.5), Vec3::X);
        let walk: Vec<(VoxelKey, f64)> = GridRayWalk::new(&ray, 1.0, 5.25).collect();
        assert_eq!(walk.len(), 6);
        for (i, (key, _)) in walk.iter().enumerate() {
            assert_eq!(
                *key,
                VoxelKey {
                    x: i as i64,
                    y: 0,
                    z: 0
                }
            );
        }
        // Negative max_t yields nothing.
        assert_eq!(GridRayWalk::new(&ray, 1.0, -1.0).count(), 0);
    }
}
