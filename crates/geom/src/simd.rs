//! Runtime SIMD-width dispatch for the batched AABB kernels.
//!
//! The batched slab tests come in two widths — [`crate::Aabb4`]
//! (SSE2-shaped, four `f64` lanes) and [`crate::Aabb8`] (AVX-shaped,
//! eight lanes). Both are plain safe Rust whose per-lane loops the
//! auto-vectoriser turns into packed compares, so either width runs
//! correctly on any target; the only question is which width keeps the
//! vector units fuller. [`SimdWidth::detect`] answers it once per
//! process: on `x86_64` it asks `is_x86_feature_detected!("avx")`
//! (256-bit registers fit four `f64`s, so the 8-lane pack unrolls to two
//! full registers per axis), everywhere else it falls back to the 4-lane
//! shape, which is exactly the pre-dispatch behaviour. Because every
//! width answers bit-identically to the scalar loop over its real lanes
//! (enforced by exact-equivalence proptests), width selection can never
//! change results — only throughput — and golden fixtures stay
//! byte-identical whichever width the host picks.
//!
//! The environment variable `ROBORUN_SIMD_WIDTH` (`4` or `8`) overrides
//! detection, which is how benches measure both widths on one host and
//! how a deployment can pin the width.

use std::sync::OnceLock;

/// Batch width of the AABB slab kernels, selected once per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdWidth {
    /// Four-lane packs ([`crate::Aabb4`]): the SSE2-shaped baseline.
    W4,
    /// Eight-lane packs ([`crate::Aabb8`]): the AVX-shaped wide path.
    W8,
}

impl SimdWidth {
    /// Number of `f64` lanes of this width.
    #[inline]
    pub fn lanes(self) -> usize {
        match self {
            SimdWidth::W4 => 4,
            SimdWidth::W8 => 8,
        }
    }

    /// The width the running host should use, computed once and cached.
    ///
    /// Order of precedence: the `ROBORUN_SIMD_WIDTH` environment
    /// variable (`4` or `8`; anything else is ignored), then AVX
    /// detection on `x86_64`, then the [`SimdWidth::W4`] fallback.
    pub fn detect() -> SimdWidth {
        static DETECTED: OnceLock<SimdWidth> = OnceLock::new();
        *DETECTED.get_or_init(|| match std::env::var("ROBORUN_SIMD_WIDTH") {
            Ok(v) if v.trim() == "4" => SimdWidth::W4,
            Ok(v) if v.trim() == "8" => SimdWidth::W8,
            _ => SimdWidth::native(),
        })
    }

    /// The width hardware detection alone would pick (no env override).
    pub fn native() -> SimdWidth {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx") {
                return SimdWidth::W8;
            }
        }
        SimdWidth::W4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_counts() {
        assert_eq!(SimdWidth::W4.lanes(), 4);
        assert_eq!(SimdWidth::W8.lanes(), 8);
    }

    #[test]
    fn detect_is_stable_and_valid() {
        let a = SimdWidth::detect();
        let b = SimdWidth::detect();
        assert_eq!(a, b);
        assert!(matches!(a, SimdWidth::W4 | SimdWidth::W8));
        assert!(matches!(SimdWidth::native(), SimdWidth::W4 | SimdWidth::W8));
    }
}
