//! Rays, ray-AABB intersection and fixed-step ray marching.

use crate::{Aabb, Aabb4, Aabb8, Vec3};
use serde::{Deserialize, Serialize};

/// Result of a ray/AABB intersection: the entry and exit parameters along
/// the ray (`point = origin + direction * t`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RayHit {
    /// Parameter at which the ray enters the box (clamped at 0 when the
    /// origin is inside).
    pub t_min: f64,
    /// Parameter at which the ray leaves the box.
    pub t_max: f64,
}

impl RayHit {
    /// Length of the ray segment inside the box.
    pub fn span(&self) -> f64 {
        self.t_max - self.t_min
    }
}

/// A half-line with an origin and a unit direction.
///
/// Rays are the shared primitive behind the simulated depth cameras, the
/// occupancy-map ray tracer (whose step size is one of RoboRun's precision
/// knobs) and the planner's collision checker.
///
/// # Example
///
/// ```
/// use roborun_geom::{Ray, Aabb, Vec3};
/// let ray = Ray::new(Vec3::ZERO, Vec3::X);
/// let b = Aabb::new(Vec3::new(2.0, -1.0, -1.0), Vec3::new(4.0, 1.0, 1.0));
/// let hit = ray.intersect_aabb(&b).unwrap();
/// assert!((hit.t_min - 2.0).abs() < 1e-12);
/// assert!((hit.t_max - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ray {
    /// Starting point.
    pub origin: Vec3,
    /// Unit direction.
    pub direction: Vec3,
}

impl Ray {
    /// Creates a ray; the direction is normalised.
    ///
    /// # Panics
    ///
    /// Panics if `direction` is (near-)zero.
    pub fn new(origin: Vec3, direction: Vec3) -> Self {
        Ray {
            origin,
            direction: direction.normalize(),
        }
    }

    /// Creates a ray pointing from `from` towards `to`.
    ///
    /// Returns `None` if the two points coincide.
    pub fn between(from: Vec3, to: Vec3) -> Option<Self> {
        (to - from).try_normalize().map(|direction| Ray {
            origin: from,
            direction,
        })
    }

    /// The point at parameter `t` along the ray.
    #[inline]
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.direction * t
    }

    /// Slab-method ray/AABB intersection.
    ///
    /// Returns the entry/exit parameters, or `None` when the ray misses the
    /// box or the box lies entirely behind the origin. When the origin is
    /// inside the box, `t_min` is clamped to zero.
    pub fn intersect_aabb(&self, aabb: &Aabb) -> Option<RayHit> {
        let mut t_min = 0.0_f64;
        let mut t_max = f64::INFINITY;
        for axis in 0..3 {
            let o = self.origin[axis];
            let d = self.direction[axis];
            let lo = aabb.min[axis];
            let hi = aabb.max[axis];
            if d.abs() < 1e-12 {
                // Ray parallel to this slab: must already be between the planes.
                if o < lo || o > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / d;
                let (t0, t1) = {
                    let a = (lo - o) * inv;
                    let b = (hi - o) * inv;
                    if a <= b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                };
                t_min = t_min.max(t0);
                t_max = t_max.min(t1);
                if t_min > t_max {
                    return None;
                }
            }
        }
        Some(RayHit { t_min, t_max })
    }

    /// Batched slab test against four boxes in struct-of-arrays layout.
    ///
    /// Each lane computes *exactly* the arithmetic of
    /// [`Ray::intersect_aabb`] — same operations, same order, same
    /// parallel-slab epsilon — so `intersect_aabb4(&pack)[l]` is
    /// bit-identical to `intersect_aabb(&pack.lane(l))` for every lane
    /// (enforced by an exact-equivalence proptest). The difference is
    /// shape, not semantics: the per-axis inner loops run over four
    /// contiguous `f64` lanes with no early exit, which an
    /// auto-vectoriser can fuse into `f64x4` compares, where the scalar
    /// path re-loads interleaved corner structs and branches per box.
    /// Padding lanes (`lane >= boxes.len()`) are masked to `None` after
    /// the lane arithmetic.
    pub fn intersect_aabb4(&self, boxes: &Aabb4) -> [Option<RayHit>; 4] {
        let mut t_min = [0.0_f64; 4];
        let mut t_max = [f64::INFINITY; 4];
        let mut hit = [true; 4];
        for axis in 0..3 {
            let o = self.origin[axis];
            let d = self.direction[axis];
            let (lo, hi) = boxes.axis_slabs(axis);
            if d.abs() < 1e-12 {
                // Ray parallel to this slab: the origin must already sit
                // between the planes of each lane.
                for lane in 0..4 {
                    if o < lo[lane] || o > hi[lane] {
                        hit[lane] = false;
                    }
                }
            } else {
                let inv = 1.0 / d;
                for lane in 0..4 {
                    let a = (lo[lane] - o) * inv;
                    let b = (hi[lane] - o) * inv;
                    let (t0, t1) = if a <= b { (a, b) } else { (b, a) };
                    t_min[lane] = t_min[lane].max(t0);
                    t_max[lane] = t_max[lane].min(t1);
                    if t_min[lane] > t_max[lane] {
                        hit[lane] = false;
                    }
                }
            }
        }
        std::array::from_fn(|lane| {
            (hit[lane] && lane < boxes.len()).then(|| RayHit {
                t_min: t_min[lane],
                t_max: t_max[lane],
            })
        })
    }

    /// Batched slab test against eight boxes in struct-of-arrays layout.
    ///
    /// The 8-lane (AVX-width) sibling of [`Ray::intersect_aabb4`], with
    /// the identical per-lane contract: each lane computes *exactly* the
    /// arithmetic of [`Ray::intersect_aabb`] — same operations, same
    /// order, same parallel-slab epsilon — so `intersect_aabb8(&pack)[l]`
    /// is bit-identical to `intersect_aabb(&pack.lane(l))` for every
    /// real lane (enforced by an exact-equivalence proptest mirroring
    /// the `Aabb4` suite). Padding lanes (`lane >= boxes.len()`) are
    /// masked to `None` after the lane arithmetic, so partial packs
    /// answer exactly like the scalar loop over their real boxes.
    pub fn intersect_aabb8(&self, boxes: &Aabb8) -> [Option<RayHit>; 8] {
        let mut t_min = [0.0_f64; 8];
        let mut t_max = [f64::INFINITY; 8];
        let mut hit = [true; 8];
        for axis in 0..3 {
            let o = self.origin[axis];
            let d = self.direction[axis];
            let (lo, hi) = boxes.axis_slabs(axis);
            if d.abs() < 1e-12 {
                // Ray parallel to this slab: the origin must already sit
                // between the planes of each lane.
                for lane in 0..8 {
                    if o < lo[lane] || o > hi[lane] {
                        hit[lane] = false;
                    }
                }
            } else {
                let inv = 1.0 / d;
                for lane in 0..8 {
                    let a = (lo[lane] - o) * inv;
                    let b = (hi[lane] - o) * inv;
                    let (t0, t1) = if a <= b { (a, b) } else { (b, a) };
                    t_min[lane] = t_min[lane].max(t0);
                    t_max[lane] = t_max[lane].min(t1);
                    if t_min[lane] > t_max[lane] {
                        hit[lane] = false;
                    }
                }
            }
        }
        std::array::from_fn(|lane| {
            (hit[lane] && lane < boxes.len()).then(|| RayHit {
                t_min: t_min[lane],
                t_max: t_max[lane],
            })
        })
    }

    /// Marches the ray from `t = 0` to `t = max_range` in increments of
    /// `step`, yielding each sample point.
    ///
    /// The RoboRun precision operators control `step`: a coarser step visits
    /// fewer samples, trading accuracy for latency.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0` or `max_range < 0`.
    pub fn march(&self, step: f64, max_range: f64) -> RayMarch {
        assert!(step > 0.0, "ray march step must be positive, got {step}");
        assert!(
            max_range >= 0.0,
            "max_range must be non-negative, got {max_range}"
        );
        RayMarch {
            ray: *self,
            step,
            max_range,
            t: 0.0,
        }
    }

    /// Number of samples a march with the given step and range visits.
    pub fn march_sample_count(step: f64, max_range: f64) -> usize {
        if step <= 0.0 || max_range < 0.0 {
            return 0;
        }
        (max_range / step).floor() as usize + 1
    }
}

/// Iterator over the sample points of [`Ray::march`].
#[derive(Debug, Clone)]
pub struct RayMarch {
    ray: Ray,
    step: f64,
    max_range: f64,
    t: f64,
}

impl Iterator for RayMarch {
    type Item = Vec3;

    fn next(&mut self) -> Option<Vec3> {
        if self.t > self.max_range + 1e-12 {
            return None;
        }
        let p = self.ray.at(self.t);
        self.t += self.step;
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_from_outside() {
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        let b = Aabb::new(Vec3::new(5.0, -1.0, -1.0), Vec3::new(7.0, 1.0, 1.0));
        let hit = ray.intersect_aabb(&b).unwrap();
        assert!((hit.t_min - 5.0).abs() < 1e-12);
        assert!((hit.t_max - 7.0).abs() < 1e-12);
        assert!((hit.span() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hit_from_inside_clamps_tmin() {
        let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
        let hit = ray.intersect_aabb(&b).unwrap();
        assert_eq!(hit.t_min, 0.0);
        assert!((hit.t_max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn miss_behind_origin() {
        let b = Aabb::new(Vec3::new(-5.0, -1.0, -1.0), Vec3::new(-3.0, 1.0, 1.0));
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        assert!(ray.intersect_aabb(&b).is_none());
    }

    #[test]
    fn miss_parallel_outside_slab() {
        let b = Aabb::new(Vec3::new(0.0, 2.0, 0.0), Vec3::new(10.0, 3.0, 1.0));
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        assert!(ray.intersect_aabb(&b).is_none());
    }

    #[test]
    fn batched_slab_test_matches_scalar_per_lane() {
        use crate::Aabb4;
        let ray = Ray::new(Vec3::new(-1.0, 0.2, 0.3), Vec3::new(1.0, 0.1, 0.05));
        let boxes = [
            Aabb::new(Vec3::new(2.0, -1.0, -1.0), Vec3::new(4.0, 1.0, 1.0)), // hit
            Aabb::new(Vec3::new(2.0, 5.0, -1.0), Vec3::new(4.0, 7.0, 1.0)),  // miss
            Aabb::new(Vec3::splat(-2.0), Vec3::splat(2.0)),                  // origin inside
        ];
        let pack = Aabb4::pack(&boxes);
        let batched = ray.intersect_aabb4(&pack);
        for (lane, b) in boxes.iter().enumerate() {
            let scalar = ray.intersect_aabb(b);
            assert_eq!(
                batched[lane].map(|h| (h.t_min.to_bits(), h.t_max.to_bits())),
                scalar.map(|h| (h.t_min.to_bits(), h.t_max.to_bits())),
                "lane {lane}"
            );
        }
        // The padding lane never hits, whatever the ray.
        assert!(batched[3].is_none());
        assert!(Ray::new(Vec3::ZERO, Vec3::X)
            .intersect_aabb4(&Aabb4::empty())
            .iter()
            .all(Option::is_none));
    }

    #[test]
    fn batched_slab_test_handles_parallel_slabs() {
        use crate::Aabb4;
        // Ray parallel to the y slabs: one lane contains the origin's y,
        // the other does not.
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        let inside = Aabb::new(Vec3::new(2.0, -1.0, -1.0), Vec3::new(4.0, 1.0, 1.0));
        let outside = Aabb::new(Vec3::new(2.0, 2.0, -1.0), Vec3::new(4.0, 3.0, 1.0));
        let pack = Aabb4::pack(&[inside, outside]);
        let batched = ray.intersect_aabb4(&pack);
        assert!(batched[0].is_some());
        assert!(batched[1].is_none());
    }

    #[test]
    fn batched8_slab_test_matches_scalar_per_lane() {
        use crate::Aabb8;
        let ray = Ray::new(Vec3::new(-1.0, 0.2, 0.3), Vec3::new(1.0, 0.1, 0.05));
        let boxes = [
            Aabb::new(Vec3::new(2.0, -1.0, -1.0), Vec3::new(4.0, 1.0, 1.0)), // hit
            Aabb::new(Vec3::new(2.0, 5.0, -1.0), Vec3::new(4.0, 7.0, 1.0)),  // miss
            Aabb::new(Vec3::splat(-2.0), Vec3::splat(2.0)),                  // origin inside
            Aabb::new(Vec3::new(-8.0, -1.0, -1.0), Vec3::new(-6.0, 1.0, 1.0)), // behind
            Aabb::new(Vec3::new(9.0, -0.5, -0.5), Vec3::new(11.0, 2.0, 2.0)), // far hit
        ];
        let pack = Aabb8::pack(&boxes);
        let batched = ray.intersect_aabb8(&pack);
        for (lane, b) in boxes.iter().enumerate() {
            let scalar = ray.intersect_aabb(b);
            assert_eq!(
                batched[lane].map(|h| (h.t_min.to_bits(), h.t_max.to_bits())),
                scalar.map(|h| (h.t_min.to_bits(), h.t_max.to_bits())),
                "lane {lane}"
            );
        }
        // The padding lanes never hit, whatever the ray.
        assert!(batched[5..].iter().all(Option::is_none));
        assert!(Ray::new(Vec3::ZERO, Vec3::X)
            .intersect_aabb8(&Aabb8::empty())
            .iter()
            .all(Option::is_none));
    }

    #[test]
    fn batched8_slab_test_handles_parallel_slabs() {
        use crate::Aabb8;
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        let inside = Aabb::new(Vec3::new(2.0, -1.0, -1.0), Vec3::new(4.0, 1.0, 1.0));
        let outside = Aabb::new(Vec3::new(2.0, 2.0, -1.0), Vec3::new(4.0, 3.0, 1.0));
        let pack = Aabb8::pack(&[inside, outside]);
        let batched = ray.intersect_aabb8(&pack);
        assert!(batched[0].is_some());
        assert!(batched[1].is_none());
    }

    #[test]
    fn hit_parallel_inside_slab() {
        let b = Aabb::new(Vec3::new(2.0, -1.0, -1.0), Vec3::new(4.0, 1.0, 1.0));
        let ray = Ray::new(Vec3::new(0.0, 0.5, 0.0), Vec3::X);
        assert!(ray.intersect_aabb(&b).is_some());
    }

    #[test]
    fn diagonal_hit() {
        let b = Aabb::new(Vec3::splat(1.0), Vec3::splat(2.0));
        let ray = Ray::new(Vec3::ZERO, Vec3::splat(1.0));
        let hit = ray.intersect_aabb(&b).unwrap();
        let entry = ray.at(hit.t_min);
        assert!((entry - Vec3::splat(1.0)).norm() < 1e-9);
    }

    #[test]
    fn between_constructor() {
        let r = Ray::between(Vec3::ZERO, Vec3::new(0.0, 0.0, 3.0)).unwrap();
        assert!((r.direction - Vec3::Z).norm() < 1e-12);
        assert!(Ray::between(Vec3::ZERO, Vec3::ZERO).is_none());
    }

    #[test]
    fn march_counts_and_points() {
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        let pts: Vec<Vec3> = ray.march(0.5, 2.0).collect();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], Vec3::ZERO);
        assert!((pts[4] - Vec3::new(2.0, 0.0, 0.0)).norm() < 1e-12);
        assert_eq!(Ray::march_sample_count(0.5, 2.0), 5);
        assert_eq!(Ray::march_sample_count(-1.0, 2.0), 0);
    }

    #[test]
    fn march_step_controls_sample_count() {
        let ray = Ray::new(Vec3::ZERO, Vec3::Y);
        let fine = ray.march(0.1, 10.0).count();
        let coarse = ray.march(1.0, 10.0).count();
        assert!(fine > coarse);
        assert_eq!(coarse, 11);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn march_zero_step_panics() {
        let _ = Ray::new(Vec3::ZERO, Vec3::X).march(0.0, 1.0);
    }
}
