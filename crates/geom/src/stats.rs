//! Running statistics, percentiles and least-squares fitting.
//!
//! These utilities back three parts of the reproduction:
//!
//! * mission metrics aggregation (mean/median mission time, energy, ...),
//! * the latency-model calibration (paper Eq. 4 is fitted by least squares
//!   and the paper reports `<8%` average MSE),
//! * the stopping-distance model fit (paper Eq. 2, `2%` MSE).

use serde::{Deserialize, Serialize};

/// Incrementally computed summary statistics (count, mean, variance,
/// min, max) using Welford's algorithm.
///
/// # Example
///
/// ```
/// use roborun_geom::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// Percentile of a data set by linear interpolation between closest ranks.
///
/// `q` is in `[0, 1]` — `0.5` gives the median. Returns `None` for an empty
/// slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or the data contains NaN.
pub fn percentile(data: &[f64], q: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&q),
        "percentile q must be in [0,1], got {q}"
    );
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median convenience wrapper over [`percentile`].
pub fn median(data: &[f64]) -> Option<f64> {
    percentile(data, 0.5)
}

/// Ordinary least squares fit of `y ≈ a·x + b`.
///
/// Returns `(a, b)`. Returns `None` when fewer than two points are given or
/// all x values coincide.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;
    Some((a, b))
}

/// Least-squares fit of a polynomial of degree `degree` through the points,
/// returning coefficients lowest-order first (`c0 + c1 x + c2 x² + ...`).
///
/// Solves the normal equations with Gaussian elimination; adequate for the
/// small fits used here (degree ≤ 3, dozens of samples).
///
/// Returns `None` when the system is singular or there are fewer points
/// than coefficients.
pub fn polyfit(points: &[(f64, f64)], degree: usize) -> Option<Vec<f64>> {
    let m = degree + 1;
    if points.len() < m {
        return None;
    }
    // Build normal equations A^T A c = A^T y.
    let mut ata = vec![vec![0.0f64; m]; m];
    let mut aty = vec![0.0f64; m];
    for &(x, y) in points {
        let mut powers = vec![1.0f64; m];
        for i in 1..m {
            powers[i] = powers[i - 1] * x;
        }
        for i in 0..m {
            aty[i] += powers[i] * y;
            for j in 0..m {
                ata[i][j] += powers[i] * powers[j];
            }
        }
    }
    solve_linear_system(&mut ata, &mut aty)
}

/// Solves `A x = b` in place via Gaussian elimination with partial pivoting.
fn solve_linear_system(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate. Split the rows so the pivot row can be read while the
        // later rows are updated, without cloning it per row.
        let (pivot_rows, rest) = a.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        for (offset, row) in rest.iter_mut().enumerate() {
            let factor = row[col] / pivot_row[col];
            for (entry, pivot_entry) in row[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *entry -= factor * pivot_entry;
            }
            b[col + 1 + offset] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in (row + 1)..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Mean squared error between predictions and observations.
///
/// Returns 0 for empty inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_squared_error(predicted: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        observed.len(),
        "MSE inputs must have equal length"
    );
    if predicted.is_empty() {
        return 0.0;
    }
    predicted
        .iter()
        .zip(observed)
        .map(|(p, o)| (p - o) * (p - o))
        .sum::<f64>()
        / predicted.len() as f64
}

/// Smallest representable value of the [`LogHistogram`] lattice (seconds,
/// when used for latencies): everything below lands in the underflow
/// bucket.
const LOG_HISTOGRAM_MIN: f64 = 1e-6;
/// Decades covered above [`LOG_HISTOGRAM_MIN`] (`1e-6 ..= 1e4`).
const LOG_HISTOGRAM_DECADES: usize = 10;
/// Buckets per decade. 16 per decade bounds the relative quantile error
/// at `10^(1/16) - 1 ≈ 15.5%` worst case (half that on average), which
/// `experiments -- bench9` measures against exact percentiles.
const LOG_HISTOGRAM_PER_DECADE: usize = 16;
/// Interior bucket count (underflow and overflow buckets come on top).
const LOG_HISTOGRAM_BUCKETS: usize = LOG_HISTOGRAM_DECADES * LOG_HISTOGRAM_PER_DECADE;

/// Fixed-bucket log-scale histogram for positive, long-tailed samples
/// (decision latencies, span durations).
///
/// The bucket lattice is **static** — `16` buckets per decade over
/// `1e-6 ..= 1e4`, plus an underflow and an overflow bucket — so two
/// histograms built anywhere in the workspace can always be merged, and
/// pushing a sample is a `log10` plus an array increment (no allocation,
/// no sorting). Exact `min`/`max`/`sum` ride along; quantiles are
/// geometric interpolation inside the owning bucket, clamped to the
/// exact extremes, with bounded relative error (`< 10^(1/16) - 1`).
///
/// Shared by `MissionTelemetry` (p95/p99 decision latency), the mission
/// aggregates and the `roborun-trace` per-span-kind summary tables.
///
/// # Example
///
/// ```
/// use roborun_geom::LogHistogram;
/// let mut h = LogHistogram::new();
/// for i in 1..=1000 {
///     h.push(i as f64 * 1e-3);
/// }
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((p50 - 0.5).abs() / 0.5 < 0.1, "p50 ≈ 0.5 s, got {p50}");
/// assert_eq!(h.count(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// `[underflow, 160 interior buckets, overflow]`.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; LOG_HISTOGRAM_BUCKETS + 2],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index of `value`: 0 is underflow (everything below
    /// `1e-6`, including zeros and negatives), the last index is
    /// overflow (`>= 1e4`).
    fn bucket_index(value: f64) -> usize {
        if value < LOG_HISTOGRAM_MIN {
            return 0; // underflow (zeros and negatives included)
        }
        let position =
            (value.log10() - LOG_HISTOGRAM_MIN.log10()) * LOG_HISTOGRAM_PER_DECADE as f64;
        if position >= LOG_HISTOGRAM_BUCKETS as f64 {
            return LOG_HISTOGRAM_BUCKETS + 1;
        }
        1 + position as usize
    }

    /// The `(low, high)` value bounds of interior bucket `index`.
    fn bucket_bounds(index: usize) -> (f64, f64) {
        debug_assert!((1..=LOG_HISTOGRAM_BUCKETS).contains(&index));
        let exp = |i: usize| {
            LOG_HISTOGRAM_MIN.log10() + (i as f64 - 1.0) / LOG_HISTOGRAM_PER_DECADE as f64
        };
        (10f64.powf(exp(index)), 10f64.powf(exp(index + 1)))
    }

    /// Adds one observation. NaN samples are ignored (a NaN latency is a
    /// bug upstream, but it must not poison the whole summary).
    pub fn push(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one (the lattice is static, so
    /// merging is an element-wise add).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no observation has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact minimum observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`q` in `[0, 1]`), geometrically interpolated
    /// inside the owning bucket and clamped to the exact `[min, max]`.
    /// `None` when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0, 1], got {q}"
        );
        if self.count == 0 {
            return None;
        }
        // Rank of the requested quantile, 1-based: the smallest rank r
        // such that at least r observations are <= the answer.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &bucket_count) in self.counts.iter().enumerate() {
            if bucket_count == 0 {
                continue;
            }
            if seen + bucket_count >= rank {
                let value = if index == 0 {
                    self.min
                } else if index == LOG_HISTOGRAM_BUCKETS + 1 {
                    self.max
                } else {
                    let (lo, hi) = Self::bucket_bounds(index);
                    // Geometric interpolation by the rank's position
                    // inside the bucket.
                    let inside = (rank - seen) as f64 / bucket_count as f64;
                    lo * (hi / lo).powf(inside)
                };
                return Some(value.clamp(self.min, self.max));
            }
            seen += bucket_count;
        }
        Some(self.max)
    }
}

impl Extend<f64> for LogHistogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for LogHistogram {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut h = LogHistogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn running_stats_merge_equals_combined() {
        let data = [1.0, 5.0, 2.0, 8.0, 3.0, 3.0, 9.0];
        let combined: RunningStats = data.into_iter().collect();
        let mut a: RunningStats = data[..3].iter().copied().collect();
        let b: RunningStats = data[3..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert!((a.mean() - combined.mean()).abs() < 1e-12);
        assert!((a.variance() - combined.variance()).abs() < 1e-9);
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());

        let mut empty = RunningStats::new();
        empty.merge(&combined);
        assert_eq!(empty.count(), combined.count());
        let mut c = combined;
        c.merge(&RunningStats::new());
        assert_eq!(c.count(), combined.count());
    }

    #[test]
    fn percentile_and_median() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 1.0), Some(5.0));
        assert_eq!(median(&data), Some(3.0));
        assert_eq!(percentile(&data, 0.25), Some(2.0));
        assert_eq!(median(&[]), None);
        assert_eq!(percentile(&[42.0], 0.9), Some(42.0));
        // Interpolation between ranks.
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn percentile_out_of_range_panics() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 3.0 * i as f64 - 7.0)).collect();
        let (a, b) = linear_fit(&pts).unwrap();
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b + 7.0).abs() < 1e-9);
        assert!(linear_fit(&[(1.0, 1.0)]).is_none());
        assert!(linear_fit(&[(1.0, 1.0), (1.0, 2.0)]).is_none());
    }

    #[test]
    fn polyfit_recovers_quadratic() {
        let pts: Vec<(f64, f64)> = (-10..=10)
            .map(|i| {
                let x = i as f64 * 0.5;
                (x, 2.0 * x * x - 3.0 * x + 1.0)
            })
            .collect();
        let c = polyfit(&pts, 2).unwrap();
        assert!((c[0] - 1.0).abs() < 1e-6);
        assert!((c[1] + 3.0).abs() < 1e-6);
        assert!((c[2] - 2.0).abs() < 1e-6);
        assert!(polyfit(&pts[..2], 2).is_none());
    }

    #[test]
    fn polyfit_matches_paper_stopping_model_shape() {
        // Synthesise stopping distances from the magnitude-corrected Eq. 2
        // and confirm a degree-2 fit recovers the coefficients (the paper
        // reports a 2% MSE fit of this form).
        let pts: Vec<(f64, f64)> = (1..=20)
            .map(|i| {
                let v = i as f64 * 0.25;
                (v, 0.055 * v * v + 0.36 * v + 0.20)
            })
            .collect();
        let c = polyfit(&pts, 2).unwrap();
        assert!((c[0] - 0.20).abs() < 1e-6);
        assert!((c[1] - 0.36).abs() < 1e-6);
        assert!((c[2] - 0.055).abs() < 1e-6);
    }

    #[test]
    fn mse_behaviour() {
        assert_eq!(mean_squared_error(&[], &[]), 0.0);
        assert_eq!(mean_squared_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((mean_squared_error(&[0.0, 0.0], &[1.0, 3.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mse_length_mismatch_panics() {
        let _ = mean_squared_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn log_histogram_quantiles_track_exact_percentiles() {
        // A long-tailed sample: quantiles must land within the bucket
        // error bound of the exact answer everywhere.
        let data: Vec<f64> = (1..=5000).map(|i| 1e-3 * (i as f64).powf(1.3)).collect();
        let h: LogHistogram = data.iter().copied().collect();
        assert_eq!(h.count(), data.len() as u64);
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = percentile(&data, q).unwrap();
            let approx = h.quantile(q).unwrap();
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel < 0.16,
                "q={q}: histogram {approx} vs exact {exact} (rel err {rel})"
            );
        }
        assert_eq!(h.min(), Some(data[0]));
        assert_eq!(h.max(), Some(*data.last().unwrap()));
        assert!((h.sum() - data.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn log_histogram_handles_extremes_and_empty() {
        let mut h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        // Underflow (zero, negative), overflow, and NaN (ignored).
        h.push(0.0);
        h.push(-3.0);
        h.push(5e7);
        h.push(f64::NAN);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0).unwrap(), -3.0);
        assert_eq!(h.quantile(1.0).unwrap(), 5e7);
        // All quantiles stay clamped inside the exact extremes.
        for q in [0.1, 0.5, 0.9] {
            let v = h.quantile(q).unwrap();
            assert!((-3.0..=5e7).contains(&v));
        }
    }

    #[test]
    fn log_histogram_merge_equals_single_pass() {
        let (a_data, b_data): (Vec<f64>, Vec<f64>) = (
            (1..=500).map(|i| i as f64 * 2e-4).collect(),
            (1..=500).map(|i| i as f64 * 3e-2).collect(),
        );
        let mut merged: LogHistogram = a_data.iter().copied().collect();
        let b: LogHistogram = b_data.iter().copied().collect();
        merged.merge(&b);
        let single: LogHistogram = a_data.iter().chain(&b_data).copied().collect();
        assert_eq!(merged, single);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn log_histogram_rejects_out_of_range_quantile() {
        let h: LogHistogram = [1.0].into_iter().collect();
        let _ = h.quantile(1.5);
    }
}
