//! Geometry, grid and statistics primitives shared by the RoboRun reproduction.
//!
//! This crate is dependency-light on purpose: every other crate in the
//! workspace (environment generation, simulation, perception, planning,
//! the RoboRun runtime itself) builds on these types.
//!
//! The main exports are:
//!
//! * [`Vec3`] — a 3-D double precision vector used for positions,
//!   velocities and directions.
//! * [`Aabb`] — axis-aligned bounding boxes used for obstacles, sensor
//!   frusta approximations and map regions.
//! * [`Ray`] — rays with slab-based AABB intersection and fixed-step
//!   marching, the workhorse of the depth cameras, the occupancy-map
//!   ray tracer and the planner's collision checker.
//! * [`Grid3`] — a dense uniform voxelisation of an AABB with world/cell
//!   coordinate conversions.
//! * [`voxel`] — the power-of-two voxel-size lattice that the RoboRun
//!   governor selects precisions from (paper Eq. 3 constraint
//!   `p ∈ {vox_min · 2^n}`).
//! * [`simd`] — runtime width dispatch for the batched AABB kernels
//!   ([`Aabb4`] vs [`Aabb8`] packs), AVX-detected with a scalar-equivalent
//!   4-lane fallback.
//! * [`stats`] — running statistics, percentiles and simple least-squares
//!   fitting used for latency-model calibration and result reporting.
//! * [`sampling`] — a small deterministic RNG (SplitMix64) plus Gaussian
//!   sampling so experiments are reproducible without depending on a
//!   particular `rand` version in library code.
//!
//! # Example
//!
//! ```
//! use roborun_geom::{Vec3, Aabb, Ray};
//!
//! let obstacle = Aabb::from_center_half_extents(Vec3::new(5.0, 0.0, 0.0), Vec3::splat(1.0));
//! let ray = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
//! let hit = ray.intersect_aabb(&obstacle).expect("ray points at the box");
//! assert!((hit.t_min - 4.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aabb;
pub mod fxhash;
pub mod grid;
pub mod index;
pub mod polynomial;
pub mod pose;
pub mod ray;
pub mod sampling;
pub mod simd;
pub mod stats;
pub mod vec3;
pub mod voxel;

pub use aabb::{Aabb, Aabb4, Aabb8};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use grid::{CellIndex, Grid3};
pub use index::{
    cell_min_distance_squared, for_each_shell_key, for_each_shell_key_in, GridRayWalk,
    PointGridIndex, RingSearch, RingSearchOutcome,
};
pub use polynomial::Polynomial;
pub use pose::Pose;
pub use ray::{Ray, RayHit};
pub use sampling::SplitMix64;
pub use simd::SimdWidth;
pub use stats::{linear_fit, percentile, LogHistogram, RunningStats};
pub use vec3::Vec3;
pub use voxel::{precision_lattice, snap_to_lattice, VoxelKey};
