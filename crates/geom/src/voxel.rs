//! Voxel keys and the power-of-two precision lattice used by the governor.
//!
//! The RoboRun solver (paper Eq. 3) is constrained to pick space precisions
//! from the discrete lattice `{vox_min · 2^n : 0 ≤ n ≤ d−1}` because the
//! OctoMap-style occupancy tree can only merge/split voxels by factors of
//! two. This module provides that lattice plus the integer voxel keys the
//! occupancy map uses to address cells at a given resolution.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// Integer coordinates of a voxel at some resolution.
///
/// Keys are obtained by flooring the world coordinate divided by the voxel
/// size, so all points inside a voxel share one key.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct VoxelKey {
    /// Voxel index along X.
    pub x: i64,
    /// Voxel index along Y.
    pub y: i64,
    /// Voxel index along Z.
    pub z: i64,
}

impl VoxelKey {
    /// Key of the voxel containing `p` at resolution `voxel_size`.
    ///
    /// # Panics
    ///
    /// Panics if `voxel_size <= 0`.
    pub fn from_point(p: Vec3, voxel_size: f64) -> Self {
        assert!(
            voxel_size > 0.0,
            "voxel size must be positive, got {voxel_size}"
        );
        VoxelKey {
            x: (p.x / voxel_size).floor() as i64,
            y: (p.y / voxel_size).floor() as i64,
            z: (p.z / voxel_size).floor() as i64,
        }
    }

    /// World-space centre of this voxel at resolution `voxel_size`.
    pub fn center(&self, voxel_size: f64) -> Vec3 {
        Vec3::new(
            (self.x as f64 + 0.5) * voxel_size,
            (self.y as f64 + 0.5) * voxel_size,
            (self.z as f64 + 0.5) * voxel_size,
        )
    }

    /// The key of this voxel's parent at twice the voxel size
    /// (one level coarser in the octree).
    pub fn parent(&self) -> VoxelKey {
        VoxelKey {
            x: self.x.div_euclid(2),
            y: self.y.div_euclid(2),
            z: self.z.div_euclid(2),
        }
    }

    /// Manhattan distance between two keys, in voxel units.
    pub fn manhattan_distance(&self, other: &VoxelKey) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs() + (self.z - other.z).abs()
    }

    /// Componentwise minimum of two keys — the lower-corner fold used by
    /// every key-bounds tracker in the workspace.
    pub fn componentwise_min(self, other: VoxelKey) -> VoxelKey {
        VoxelKey {
            x: self.x.min(other.x),
            y: self.y.min(other.y),
            z: self.z.min(other.z),
        }
    }

    /// Componentwise maximum of two keys — the upper-corner fold used by
    /// every key-bounds tracker in the workspace.
    pub fn componentwise_max(self, other: VoxelKey) -> VoxelKey {
        VoxelKey {
            x: self.x.max(other.x),
            y: self.y.max(other.y),
            z: self.z.max(other.z),
        }
    }
}

/// The power-of-two precision lattice `{vox_min · 2^n : 0 ≤ n < levels}`.
///
/// This is the exact discrete domain the paper's solver searches over for
/// the precision knobs (Eq. 3, last constraint).
///
/// # Panics
///
/// Panics if `vox_min <= 0` or `levels == 0`.
///
/// # Example
///
/// ```
/// use roborun_geom::precision_lattice;
/// assert_eq!(precision_lattice(0.3, 6), vec![0.3, 0.6, 1.2, 2.4, 4.8, 9.6]);
/// ```
pub fn precision_lattice(vox_min: f64, levels: usize) -> Vec<f64> {
    assert!(
        vox_min > 0.0,
        "minimum voxel size must be positive, got {vox_min}"
    );
    assert!(levels > 0, "lattice must have at least one level");
    (0..levels).map(|n| vox_min * (1u64 << n) as f64).collect()
}

/// Snaps an arbitrary desired precision onto the lattice.
///
/// Returns the **finest** lattice value that is `>= desired` — i.e. we never
/// grant more precision (a smaller voxel) than requested, but we also never
/// exceed the coarsest level. Values below the finest level are clamped to
/// the finest level (`vox_min`).
///
/// This mirrors how the governor maps the solver's continuous suggestion
/// back onto the octree-compatible lattice: it must honour the *minimum gap*
/// constraint, so the snapped voxel must not be coarser than the demand.
///
/// # Panics
///
/// Panics under the same conditions as [`precision_lattice`].
pub fn snap_to_lattice(desired: f64, vox_min: f64, levels: usize) -> f64 {
    let lattice = precision_lattice(vox_min, levels);
    if desired <= lattice[0] {
        return lattice[0];
    }
    // Largest lattice value that does not exceed the desired precision.
    let mut best = lattice[0];
    for &p in &lattice {
        if p <= desired + 1e-12 {
            best = p;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_from_point_floors() {
        let k = VoxelKey::from_point(Vec3::new(1.4, -0.2, 2.9), 1.0);
        assert_eq!(k, VoxelKey { x: 1, y: -1, z: 2 });
        let k2 = VoxelKey::from_point(Vec3::new(1.4, -0.2, 2.9), 0.5);
        assert_eq!(k2, VoxelKey { x: 2, y: -1, z: 5 });
    }

    #[test]
    fn key_center_roundtrip() {
        let size = 0.3;
        let p = Vec3::new(4.07, -2.33, 9.99);
        let k = VoxelKey::from_point(p, size);
        let c = k.center(size);
        // Centre must be inside the same voxel.
        assert_eq!(VoxelKey::from_point(c, size), k);
        assert!(c.distance(p) <= size * 3f64.sqrt());
    }

    #[test]
    fn parent_is_coarser_voxel_containing_child() {
        let size = 0.5;
        let p = Vec3::new(3.3, 3.3, 3.3);
        let child = VoxelKey::from_point(p, size);
        let parent = child.parent();
        assert_eq!(parent, VoxelKey::from_point(p, size * 2.0));
        // Negative coordinates use euclidean division.
        let neg = VoxelKey { x: -1, y: -3, z: 1 };
        assert_eq!(neg.parent(), VoxelKey { x: -1, y: -2, z: 0 });
    }

    #[test]
    fn manhattan_distance_symmetric() {
        let a = VoxelKey { x: 0, y: 0, z: 0 };
        let b = VoxelKey { x: 2, y: -3, z: 1 };
        assert_eq!(a.manhattan_distance(&b), 6);
        assert_eq!(b.manhattan_distance(&a), 6);
    }

    #[test]
    fn lattice_matches_paper_table_ii() {
        // Table II: point-cloud precision ranges over [0.3 .. 9.6] m in
        // power-of-two steps.
        let lattice = precision_lattice(0.3, 6);
        assert_eq!(lattice, vec![0.3, 0.6, 1.2, 2.4, 4.8, 9.6]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn lattice_rejects_zero_vox_min() {
        let _ = precision_lattice(0.0, 3);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn lattice_rejects_zero_levels() {
        let _ = precision_lattice(0.3, 0);
    }

    #[test]
    fn snapping_never_exceeds_demand() {
        for desired in [0.1, 0.3, 0.5, 0.7, 1.3, 2.5, 5.0, 9.6, 20.0] {
            let snapped = snap_to_lattice(desired, 0.3, 6);
            assert!(
                snapped <= desired.max(0.3) + 1e-12,
                "desired {desired} snapped {snapped}"
            );
            assert!(snapped >= 0.3);
            assert!(snapped <= 9.6);
        }
        assert_eq!(snap_to_lattice(0.61, 0.3, 6), 0.6);
        assert_eq!(snap_to_lattice(0.59, 0.3, 6), 0.3);
        assert_eq!(snap_to_lattice(100.0, 0.3, 6), 9.6);
        assert_eq!(snap_to_lattice(0.05, 0.3, 6), 0.3);
    }

    #[test]
    fn snapped_values_are_lattice_members() {
        let lattice = precision_lattice(0.3, 6);
        for desired in (1..200).map(|i| i as f64 * 0.07) {
            let snapped = snap_to_lattice(desired, 0.3, 6);
            assert!(
                lattice.iter().any(|&p| (p - snapped).abs() < 1e-12),
                "snapped value {snapped} not in lattice"
            );
        }
    }
}
