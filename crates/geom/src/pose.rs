//! Robot poses (position + yaw).

use crate::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simplified MAV pose: 3-D position plus yaw about the world Z axis.
///
/// The navigation pipeline reproduced here never needs full attitude —
/// the quadrotor is modelled as a point with a heading, which is how the
/// paper's planner and governor treat it as well.
///
/// # Example
///
/// ```
/// use roborun_geom::{Pose, Vec3};
/// let pose = Pose::new(Vec3::new(1.0, 0.0, 2.0), std::f64::consts::FRAC_PI_2);
/// let world = pose.body_to_world(Vec3::X);
/// assert!((world - Vec3::new(1.0, 1.0, 2.0)).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose {
    /// Position in the world frame (metres).
    pub position: Vec3,
    /// Heading about +Z, radians, wrapped to `(-π, π]`.
    pub yaw: f64,
}

impl Pose {
    /// Creates a pose, wrapping the yaw into `(-π, π]`.
    pub fn new(position: Vec3, yaw: f64) -> Self {
        Pose {
            position,
            yaw: wrap_angle(yaw),
        }
    }

    /// Pose at the origin facing +X.
    pub fn identity() -> Self {
        Pose::default()
    }

    /// Unit vector the pose is facing (in the XY plane).
    pub fn heading(&self) -> Vec3 {
        Vec3::new(self.yaw.cos(), self.yaw.sin(), 0.0)
    }

    /// Transforms a point from the body frame to the world frame.
    pub fn body_to_world(&self, body: Vec3) -> Vec3 {
        self.position + body.rotate_z(self.yaw)
    }

    /// Transforms a point from the world frame to the body frame.
    pub fn world_to_body(&self, world: Vec3) -> Vec3 {
        (world - self.position).rotate_z(-self.yaw)
    }

    /// Returns the pose looking from `position` towards `target`.
    ///
    /// When the target is (nearly) vertically above/below the position the
    /// yaw defaults to 0.
    pub fn looking_at(position: Vec3, target: Vec3) -> Self {
        let delta = target - position;
        let yaw = if delta.x.abs() < 1e-12 && delta.y.abs() < 1e-12 {
            0.0
        } else {
            delta.y.atan2(delta.x)
        };
        Pose::new(position, yaw)
    }

    /// Smallest signed yaw difference `other.yaw - self.yaw`, wrapped.
    pub fn yaw_error_to(&self, other: &Pose) -> f64 {
        wrap_angle(other.yaw - self.yaw)
    }
}

impl fmt::Display for Pose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pos {} yaw {:.3} rad", self.position, self.yaw)
    }
}

/// Wraps an angle in radians into `(-π, π]`.
pub fn wrap_angle(angle: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut a = angle % two_pi;
    if a <= -std::f64::consts::PI {
        a += two_pi;
    } else if a > std::f64::consts::PI {
        a -= two_pi;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn wrap_angle_range() {
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(0.5) - 0.5).abs() < 1e-12);
        for k in -10..10 {
            let a = wrap_angle(0.3 + k as f64 * std::f64::consts::TAU);
            assert!((a - 0.3).abs() < 1e-9);
        }
    }

    #[test]
    fn heading_matches_yaw() {
        let p = Pose::new(Vec3::ZERO, FRAC_PI_2);
        assert!((p.heading() - Vec3::Y).norm() < 1e-12);
    }

    #[test]
    fn frame_roundtrip() {
        let pose = Pose::new(Vec3::new(3.0, -2.0, 1.0), 0.7);
        let body = Vec3::new(1.5, 0.5, -0.25);
        let world = pose.body_to_world(body);
        let back = pose.world_to_body(world);
        assert!((back - body).norm() < 1e-12);
    }

    #[test]
    fn looking_at_faces_target() {
        let pose = Pose::looking_at(Vec3::ZERO, Vec3::new(0.0, 5.0, 0.0));
        assert!((pose.yaw - FRAC_PI_2).abs() < 1e-12);
        // Vertical target defaults yaw to zero.
        let vert = Pose::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 3.0));
        assert_eq!(vert.yaw, 0.0);
    }

    #[test]
    fn yaw_error_wraps() {
        let a = Pose::new(Vec3::ZERO, PI - 0.1);
        let b = Pose::new(Vec3::ZERO, -PI + 0.1);
        assert!((a.yaw_error_to(&b) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_yaw() {
        let s = format!("{}", Pose::identity());
        assert!(s.contains("yaw"));
    }
}
