//! Dense uniform 3-D grids over an axis-aligned region.

use crate::{Aabb, Vec3};
use serde::{Deserialize, Serialize};

/// Integer index of a grid cell along the three axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellIndex {
    /// Cell index along X.
    pub ix: usize,
    /// Cell index along Y.
    pub iy: usize,
    /// Cell index along Z.
    pub iz: usize,
}

impl CellIndex {
    /// Creates a cell index.
    pub const fn new(ix: usize, iy: usize, iz: usize) -> Self {
        CellIndex { ix, iy, iz }
    }
}

/// A uniform voxelisation of an [`Aabb`] with cubic cells of size
/// `cell_size` metres.
///
/// The point-cloud precision operator uses a `Grid3` to average points per
/// cell, and the environment generator uses it to rasterise congestion
/// heat-maps.
///
/// # Example
///
/// ```
/// use roborun_geom::{Grid3, Aabb, Vec3};
/// let grid = Grid3::new(Aabb::new(Vec3::ZERO, Vec3::splat(10.0)), 1.0);
/// assert_eq!(grid.dims(), (10, 10, 10));
/// let idx = grid.cell_of(Vec3::new(2.5, 3.5, 4.5)).unwrap();
/// assert_eq!((idx.ix, idx.iy, idx.iz), (2, 3, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid3 {
    bounds: Aabb,
    cell_size: f64,
    nx: usize,
    ny: usize,
    nz: usize,
}

impl Grid3 {
    /// Creates a grid covering `bounds` with cubic cells of `cell_size`.
    ///
    /// The number of cells per axis is rounded up so the grid always covers
    /// the full bounds.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size <= 0` or the bounds have zero size on any axis.
    pub fn new(bounds: Aabb, cell_size: f64) -> Self {
        assert!(
            cell_size > 0.0,
            "cell size must be positive, got {cell_size}"
        );
        let size = bounds.size();
        assert!(
            size.x > 0.0 && size.y > 0.0 && size.z > 0.0,
            "grid bounds must have positive size, got {size:?}"
        );
        let count = |len: f64| ((len / cell_size).ceil() as usize).max(1);
        Grid3 {
            bounds,
            cell_size,
            nx: count(size.x),
            ny: count(size.y),
            nz: count(size.z),
        }
    }

    /// The region covered by this grid.
    pub fn bounds(&self) -> &Aabb {
        &self.bounds
    }

    /// Edge length of every (cubic) cell.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of cells along each axis `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// `true` when the grid has no cells (never the case for a validly
    /// constructed grid, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the cell containing `p`, or `None` when `p` lies outside
    /// the grid bounds.
    pub fn cell_of(&self, p: Vec3) -> Option<CellIndex> {
        if !self.bounds.contains(p) {
            return None;
        }
        let rel = p - self.bounds.min;
        let clamp_idx = |v: f64, n: usize| ((v / self.cell_size) as usize).min(n - 1);
        Some(CellIndex {
            ix: clamp_idx(rel.x, self.nx),
            iy: clamp_idx(rel.y, self.ny),
            iz: clamp_idx(rel.z, self.nz),
        })
    }

    /// World-space centre of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn cell_center(&self, idx: CellIndex) -> Vec3 {
        assert!(self.in_range(idx), "cell index {idx:?} out of range");
        self.bounds.min
            + Vec3::new(
                (idx.ix as f64 + 0.5) * self.cell_size,
                (idx.iy as f64 + 0.5) * self.cell_size,
                (idx.iz as f64 + 0.5) * self.cell_size,
            )
    }

    /// Axis-aligned bounds of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn cell_bounds(&self, idx: CellIndex) -> Aabb {
        let center = self.cell_center(idx);
        Aabb::from_center_half_extents(center, Vec3::splat(self.cell_size * 0.5))
    }

    /// `true` when the index addresses an existing cell.
    pub fn in_range(&self, idx: CellIndex) -> bool {
        idx.ix < self.nx && idx.iy < self.ny && idx.iz < self.nz
    }

    /// Flattens a 3-D index into a linear offset (X fastest).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn linear_index(&self, idx: CellIndex) -> usize {
        assert!(self.in_range(idx), "cell index {idx:?} out of range");
        idx.ix + self.nx * (idx.iy + self.ny * idx.iz)
    }

    /// Iterates over every cell index in the grid (X fastest).
    pub fn iter(&self) -> impl Iterator<Item = CellIndex> + '_ {
        let (nx, ny, nz) = self.dims();
        (0..nz).flat_map(move |iz| {
            (0..ny).flat_map(move |iy| (0..nx).map(move |ix| CellIndex::new(ix, iy, iz)))
        })
    }

    /// Cell indices whose centre lies within `radius` of `p` (including the
    /// cell containing `p` itself), useful for local congestion queries.
    pub fn cells_within(&self, p: Vec3, radius: f64) -> Vec<CellIndex> {
        let mut out = Vec::new();
        if radius < 0.0 {
            return out;
        }
        let lo = p - Vec3::splat(radius);
        let hi = p + Vec3::splat(radius);
        let region = Aabb::new(lo, hi);
        for idx in self.iter() {
            let c = self.cell_center(idx);
            if region.contains(c) && c.distance(p) <= radius {
                out.push(idx);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid10() -> Grid3 {
        Grid3::new(Aabb::new(Vec3::ZERO, Vec3::splat(10.0)), 1.0)
    }

    #[test]
    fn dims_round_up_to_cover_bounds() {
        let g = Grid3::new(Aabb::new(Vec3::ZERO, Vec3::new(10.0, 5.5, 0.9)), 1.0);
        assert_eq!(g.dims(), (10, 6, 1));
        assert_eq!(g.len(), 60);
        assert!(!g.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_panics() {
        let _ = Grid3::new(Aabb::new(Vec3::ZERO, Vec3::splat(1.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn flat_bounds_panic() {
        let _ = Grid3::new(Aabb::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 1.0)), 0.5);
    }

    #[test]
    fn cell_lookup_roundtrip() {
        let g = grid10();
        for &(p, expect) in &[
            (Vec3::new(0.5, 0.5, 0.5), (0, 0, 0)),
            (Vec3::new(9.9, 9.9, 9.9), (9, 9, 9)),
            (Vec3::new(10.0, 10.0, 10.0), (9, 9, 9)), // boundary clamps into last cell
            (Vec3::new(4.0, 7.2, 3.3), (4, 7, 3)),
        ] {
            let idx = g.cell_of(p).unwrap();
            assert_eq!((idx.ix, idx.iy, idx.iz), expect, "point {p:?}");
            assert!(g.cell_bounds(idx).contains(g.cell_center(idx)));
        }
        assert!(g.cell_of(Vec3::new(-0.1, 5.0, 5.0)).is_none());
        assert!(g.cell_of(Vec3::new(5.0, 11.0, 5.0)).is_none());
    }

    #[test]
    fn cell_center_inside_its_bounds() {
        let g = grid10();
        let idx = CellIndex::new(3, 4, 5);
        let c = g.cell_center(idx);
        assert_eq!(c, Vec3::new(3.5, 4.5, 5.5));
        let b = g.cell_bounds(idx);
        assert_eq!(b.min, Vec3::new(3.0, 4.0, 5.0));
        assert_eq!(b.max, Vec3::new(4.0, 5.0, 6.0));
    }

    #[test]
    fn linear_index_is_unique_and_dense() {
        let g = Grid3::new(Aabb::new(Vec3::ZERO, Vec3::new(3.0, 2.0, 2.0)), 1.0);
        let mut seen = vec![false; g.len()];
        for idx in g.iter() {
            let li = g.linear_index(idx);
            assert!(!seen[li], "duplicate linear index {li}");
            seen[li] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn linear_index_out_of_range_panics() {
        let g = grid10();
        let _ = g.linear_index(CellIndex::new(10, 0, 0));
    }

    #[test]
    fn cells_within_radius() {
        let g = grid10();
        let near = g.cells_within(Vec3::splat(5.0), 1.0);
        assert!(!near.is_empty());
        for idx in &near {
            assert!(g.cell_center(*idx).distance(Vec3::splat(5.0)) <= 1.0);
        }
        assert!(g.cells_within(Vec3::splat(5.0), -1.0).is_empty());
        // Larger radius never returns fewer cells.
        let wide = g.cells_within(Vec3::splat(5.0), 3.0);
        assert!(wide.len() >= near.len());
    }

    #[test]
    fn iter_visits_every_cell_once() {
        let g = Grid3::new(Aabb::new(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0)), 1.0);
        assert_eq!(g.iter().count(), g.len());
    }
}
