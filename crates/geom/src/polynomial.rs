//! Dense univariate polynomials.
//!
//! Used by the path smoother (piecewise polynomial trajectories in the
//! spirit of Richter et al.) and by the latency/stopping-distance models
//! (paper Eq. 2 and Eq. 4), which are low-degree polynomials in velocity
//! and inverse precision.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A polynomial `c0 + c1·x + c2·x² + …` stored lowest-order first.
///
/// # Example
///
/// ```
/// use roborun_geom::Polynomial;
/// // 1 + 2x + 3x²
/// let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
/// assert_eq!(p.eval(2.0), 17.0);
/// assert_eq!(p.derivative().eval(2.0), 14.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients, lowest order first.
    ///
    /// Trailing (near-)zero coefficients are trimmed; the zero polynomial is
    /// represented by a single zero coefficient.
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last().map(|c| c.abs() < 1e-300).unwrap_or(false) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Polynomial { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: vec![0.0] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Polynomial::new(vec![c])
    }

    /// Coefficients, lowest order first.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree of the polynomial (0 for constants).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates the polynomial at `x` (Horner's method).
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// First derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, &c)| c * i as f64)
                .collect(),
        )
    }

    /// Antiderivative with zero constant term.
    pub fn integral(&self) -> Polynomial {
        let mut coeffs = vec![0.0];
        coeffs.extend(
            self.coeffs
                .iter()
                .enumerate()
                .map(|(i, &c)| c / (i as f64 + 1.0)),
        );
        Polynomial::new(coeffs)
    }

    /// Maximum absolute value of the polynomial sampled at `samples + 1`
    /// evenly spaced points over `[a, b]`.
    ///
    /// Used by the smoother to bound velocity/acceleration along a segment.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0` or `a > b`.
    pub fn max_abs_on(&self, a: f64, b: f64, samples: usize) -> f64 {
        assert!(samples > 0, "need at least one sample");
        assert!(a <= b, "interval inverted: [{a}, {b}]");
        (0..=samples)
            .map(|i| {
                let t = a + (b - a) * i as f64 / samples as f64;
                self.eval(t).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Cubic Hermite segment through `(0, p0)` and `(1, p1)` with end
    /// derivatives `m0`, `m1` (in normalised time `s ∈ [0,1]`).
    ///
    /// This is the building block of the path smoother: each trajectory
    /// segment is one Hermite cubic per axis.
    pub fn hermite(p0: f64, p1: f64, m0: f64, m1: f64) -> Polynomial {
        // h(s) = (2s³-3s²+1)p0 + (s³-2s²+s)m0 + (-2s³+3s²)p1 + (s³-s²)m1
        Polynomial::new(vec![
            p0,
            m0,
            -3.0 * p0 + 3.0 * p1 - 2.0 * m0 - m1,
            2.0 * p0 - 2.0 * p1 + m0 + m1,
        ])
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let terms: Vec<String> = self
            .coeffs
            .iter()
            .enumerate()
            .map(|(i, c)| match i {
                0 => format!("{c:.4}"),
                1 => format!("{c:.4}·x"),
                _ => format!("{c:.4}·x^{i}"),
            })
            .collect();
        write!(f, "{}", terms.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_degree() {
        let p = Polynomial::new(vec![1.0, -2.0, 0.5]);
        assert_eq!(p.degree(), 2);
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(2.0), 1.0 - 4.0 + 2.0);
        assert_eq!(Polynomial::constant(5.0).eval(123.0), 5.0);
        assert_eq!(Polynomial::zero().eval(3.0), 0.0);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
        let z = Polynomial::new(vec![]);
        assert_eq!(z, Polynomial::zero());
    }

    #[test]
    fn derivative_and_integral_are_inverse() {
        let p = Polynomial::new(vec![3.0, -1.0, 4.0, 2.0]);
        let d = p.derivative();
        assert_eq!(d.coeffs(), &[-1.0, 8.0, 6.0]);
        let back = d.integral();
        // Integral has zero constant term; the rest matches.
        assert_eq!(back.coeffs()[1..], p.coeffs()[1..]);
        assert_eq!(Polynomial::constant(2.0).derivative(), Polynomial::zero());
    }

    #[test]
    fn hermite_interpolates_endpoints_and_slopes() {
        let h = Polynomial::hermite(1.0, 5.0, 0.5, -2.0);
        assert!((h.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((h.eval(1.0) - 5.0).abs() < 1e-12);
        let d = h.derivative();
        assert!((d.eval(0.0) - 0.5).abs() < 1e-12);
        assert!((d.eval(1.0) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_on_interval() {
        // |x² - 1| on [-2, 2] has maximum 3 at the ends.
        let p = Polynomial::new(vec![-1.0, 0.0, 1.0]);
        let m = p.max_abs_on(-2.0, 2.0, 100);
        assert!((m - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn max_abs_inverted_interval_panics() {
        let _ = Polynomial::zero().max_abs_on(1.0, 0.0, 10);
    }

    #[test]
    fn display_readable() {
        let s = format!("{}", Polynomial::new(vec![1.0, 2.0, 3.0]));
        assert!(s.contains("x^2"));
    }
}
