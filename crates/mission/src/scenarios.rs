//! Mission scenarios: the paper's motivating missions, the small
//! environments behind Figures 3 and 4, the moving-obstacle
//! (dynamic-world) scenario families, and the fault-injection scenario
//! families of the robustness evaluation.

use roborun_dynamics::{Actor, DynamicWorld, MotionModel};
use roborun_env::{
    DifficultyConfig, Environment, EnvironmentGenerator, GeneratorParams, Obstacle, ObstacleField,
    ZoneLayout,
};
use roborun_faults::{
    BusFaultChannel, FaultPlanConfig, FaultWindows, LinkFaultConfig, MapFaultChannel,
    PlannerFaultChannel, SensorFaultChannel,
};
use roborun_geom::{Aabb, SplitMix64, Vec3};
use serde::{Deserialize, Serialize};

/// The named scenarios used by the examples and the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Package delivery: warehouse → open sky → warehouse (tight aisles at
    /// both ends, the paper's *high precision* emphasis).
    PackageDelivery,
    /// Search and rescue: hospital → disaster zone, long open stretch where
    /// high velocity matters (the paper's *high velocity* emphasis).
    SearchAndRescue,
    /// The mid-difficulty environment of the representative mission
    /// analysis (paper Section V-C, Figures 9–11).
    Representative,
}

impl Scenario {
    /// All scenarios.
    pub const ALL: [Scenario; 3] = [
        Scenario::PackageDelivery,
        Scenario::SearchAndRescue,
        Scenario::Representative,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::PackageDelivery => "package delivery",
            Scenario::SearchAndRescue => "search and rescue",
            Scenario::Representative => "representative mission",
        }
    }

    /// The difficulty configuration backing the scenario.
    pub fn difficulty(self) -> DifficultyConfig {
        match self {
            // Dense clusters, short-ish hop between warehouses.
            Scenario::PackageDelivery => DifficultyConfig {
                obstacle_density: 0.6,
                obstacle_spread: 40.0,
                goal_distance: 600.0,
            },
            // Sparse-but-wide debris, long transit leg.
            Scenario::SearchAndRescue => DifficultyConfig {
                obstacle_density: 0.3,
                obstacle_spread: 120.0,
                goal_distance: 1_200.0,
            },
            Scenario::Representative => DifficultyConfig::mid(),
        }
    }

    /// Generates the scenario's environment for a seed.
    pub fn environment(self, seed: u64) -> Environment {
        EnvironmentGenerator::new(self.difficulty()).generate(seed)
    }

    /// A shortened variant of the scenario (same obstacle character, 150 m
    /// goal) used by examples and tests that need to finish quickly.
    pub fn short_environment(self, seed: u64) -> Environment {
        let difficulty = DifficultyConfig {
            goal_distance: 150.0,
            ..self.difficulty()
        };
        EnvironmentGenerator::new(difficulty)
            .with_params(GeneratorParams {
                obstacles_per_density: 40.0,
                ..GeneratorParams::default()
            })
            .generate(seed)
    }
}

/// The moving-obstacle scenario families: worlds whose difficulty changes
/// underneath the robot (temporal heterogeneity — the axis the static
/// 27-environment matrix cannot express).
///
/// Every family is generated deterministically from a seed: the static
/// field comes from the [`EnvironmentGenerator`], the actors from a
/// forked stream of the same seed, and every actor pose is a pure
/// function of time — so a scenario run is bit-reproducible across runs
/// and across both mission drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DynamicScenario {
    /// A sparse corridor crossed laterally by shuttling vehicles: the
    /// archetypal "moving obstacle enters the corridor" workload. Static
    /// difficulty is low; all the hazard is temporal.
    CrossingCorridor,
    /// A denser warehouse block patrolled lengthwise by slow carts that
    /// share the MAV's flight lanes: conflicts develop slowly but in
    /// tight quarters.
    PatrolledWarehouse,
    /// A congested mid-mission intersection: crossers on both axes plus
    /// seeded random walkers milling about the centre.
    CongestedIntersection,
}

impl DynamicScenario {
    /// All dynamic scenario families.
    pub const ALL: [DynamicScenario; 3] = [
        DynamicScenario::CrossingCorridor,
        DynamicScenario::PatrolledWarehouse,
        DynamicScenario::CongestedIntersection,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DynamicScenario::CrossingCorridor => "crossing corridor",
            DynamicScenario::PatrolledWarehouse => "patrolled warehouse",
            DynamicScenario::CongestedIntersection => "congested intersection",
        }
    }

    /// The static difficulty backing the family (short 120 m missions so
    /// sweeps and fixtures stay fast).
    pub fn difficulty(self) -> DifficultyConfig {
        match self {
            DynamicScenario::CrossingCorridor => DifficultyConfig {
                obstacle_density: 0.15,
                obstacle_spread: 40.0,
                goal_distance: 120.0,
            },
            DynamicScenario::PatrolledWarehouse => DifficultyConfig {
                obstacle_density: 0.45,
                obstacle_spread: 40.0,
                goal_distance: 120.0,
            },
            DynamicScenario::CongestedIntersection => DifficultyConfig {
                obstacle_density: 0.3,
                obstacle_spread: 80.0,
                goal_distance: 120.0,
            },
        }
    }

    /// Generates the scenario: the static environment plus its dynamic
    /// world, both derived deterministically from `seed`.
    pub fn world(self, seed: u64) -> (Environment, DynamicWorld) {
        self.world_with(seed, &DynamicDifficulty::default())
    }

    /// [`DynamicScenario::world`] scaled along the temporal-difficulty
    /// axes (the Fig. 8 analogue for moving worlds): static obstacle
    /// density, actor speed, and actor count (whole extra waves of the
    /// family's pattern, each drawn from the continuation of the same
    /// seed stream). With [`DynamicDifficulty::default`] the generated
    /// world is **bit-identical** to [`DynamicScenario::world`] — the
    /// base wave consumes the random stream exactly as before and every
    /// scale factor is an exact multiply by one.
    pub fn world_with(
        self,
        seed: u64,
        difficulty: &DynamicDifficulty,
    ) -> (Environment, DynamicWorld) {
        let base = self.difficulty();
        let env = EnvironmentGenerator::new(DifficultyConfig {
            obstacle_density: base.obstacle_density * difficulty.density_scale,
            ..base
        })
        .generate(seed);
        let mut rng = SplitMix64::new(seed ^ DYNAMIC_SEED_SALT);
        let cruise = env.start().z;
        let mut actors = Vec::new();
        for wave in 0..difficulty.actor_waves.max(1) {
            self.push_actor_wave(
                &mut rng,
                cruise,
                difficulty.speed_scale,
                (wave * WAVE_ID_STRIDE) as u32,
                &mut actors,
            );
        }
        let world = DynamicWorld::new(env.field().clone(), actors);
        (env, world)
    }

    /// Appends one wave of the family's actor pattern, with ids offset by
    /// `id_base` and every drawn speed multiplied by `speed_scale`.
    fn push_actor_wave(
        self,
        rng: &mut SplitMix64,
        cruise: f64,
        speed_scale: f64,
        id_base: u32,
        actors: &mut Vec<Actor>,
    ) {
        // Actors are ground vehicles / carts modelled as pillars tall
        // enough to matter at cruise altitude.
        let pillar = |half_xy: f64| Vec3::new(half_xy, half_xy, cruise + 2.0);
        let spawn_z = cruise + 2.0; // pillar centre => box spans 0 .. 2z
        match self {
            DynamicScenario::CrossingCorridor => {
                // Four crossers shuttling across the corridor at stations
                // along the mission axis, clear of start and goal.
                for i in 0..4u32 {
                    let x = 22.0 + i as f64 * 22.0 + rng.uniform(-4.0, 4.0);
                    let speed = rng.uniform(0.8, 1.6) * speed_scale;
                    let dir = if rng.uniform(0.0, 1.0) < 0.5 {
                        1.0
                    } else {
                        -1.0
                    };
                    let y0 = rng.uniform(-14.0, 14.0);
                    actors.push(Actor::new(
                        id_base + i,
                        Vec3::new(x, y0, spawn_z),
                        pillar(1.1),
                        MotionModel::Crosser {
                            velocity: Vec3::new(0.0, dir * speed, 0.0),
                            bounds: Aabb::new(
                                Vec3::new(x, -18.0, spawn_z),
                                Vec3::new(x, 18.0, spawn_z),
                            ),
                        },
                    ));
                }
            }
            DynamicScenario::PatrolledWarehouse => {
                // Three carts patrolling lengthwise lanes through the
                // congested zones, one sweeping laterally.
                for i in 0..3u32 {
                    let lane_y = -10.0 + i as f64 * 10.0 + rng.uniform(-2.0, 2.0);
                    let x0 = 18.0 + rng.uniform(0.0, 10.0);
                    let x1 = 95.0 + rng.uniform(0.0, 8.0);
                    actors.push(Actor::new(
                        id_base + i,
                        Vec3::new(x0, lane_y, spawn_z),
                        pillar(1.0),
                        MotionModel::WaypointPatrol {
                            waypoints: vec![
                                Vec3::new(x0, lane_y, spawn_z),
                                Vec3::new(x1, lane_y, spawn_z),
                            ],
                            speed: rng.uniform(0.7, 1.2) * speed_scale,
                        },
                    ));
                }
                let x = 60.0 + rng.uniform(-6.0, 6.0);
                actors.push(Actor::new(
                    id_base + 3,
                    Vec3::new(x, 0.0, spawn_z),
                    pillar(1.0),
                    MotionModel::WaypointPatrol {
                        waypoints: vec![Vec3::new(x, -12.0, spawn_z), Vec3::new(x, 12.0, spawn_z)],
                        speed: rng.uniform(0.6, 1.0) * speed_scale,
                    },
                ));
            }
            DynamicScenario::CongestedIntersection => {
                // Two axis crossers through the middle...
                for i in 0..2u32 {
                    let x = 45.0 + i as f64 * 24.0 + rng.uniform(-4.0, 4.0);
                    actors.push(Actor::new(
                        id_base + i,
                        Vec3::new(x, rng.uniform(-10.0, 10.0), spawn_z),
                        pillar(1.1),
                        MotionModel::Crosser {
                            velocity: Vec3::new(0.0, rng.uniform(0.9, 1.5) * speed_scale, 0.0),
                            bounds: Aabb::new(
                                Vec3::new(x, -16.0, spawn_z),
                                Vec3::new(x, 16.0, spawn_z),
                            ),
                        },
                    ));
                }
                // ...plus two random walkers milling about the centre.
                for i in 2..4u32 {
                    let walk_seed = rng.next_u64();
                    actors.push(Actor::new(
                        id_base + i,
                        Vec3::new(
                            55.0 + rng.uniform(-8.0, 8.0),
                            rng.uniform(-8.0, 8.0),
                            spawn_z,
                        ),
                        pillar(0.9),
                        MotionModel::RandomWalk {
                            seed: walk_seed,
                            speed: rng.uniform(0.5, 0.9) * speed_scale,
                            dwell: 2.5,
                            bounds: Aabb::new(
                                Vec3::new(35.0, -14.0, spawn_z),
                                Vec3::new(85.0, 14.0, spawn_z),
                            ),
                        },
                    ));
                }
            }
        }
    }
}

/// The fault-injection scenario families of the robustness evaluation:
/// each pairs a static environment with a deterministic
/// [`FaultPlanConfig`] and exercises one degradation story — sensing
/// faults, middleware faults, and planning faults.
///
/// Every family is a pure function of its seed: the environment comes
/// from the [`EnvironmentGenerator`] and the fault plan's windows/dice
/// from the plan seed, so a scenario run is bit-reproducible across runs
/// and (for the non-bus families) across both mission drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultScenario {
    /// A corridor flight under periodic full sensor blackouts with noisy
    /// recovery bursts: the fault-oblivious design keeps flying through
    /// space it never sensed, the degradation-aware runtime derates on
    /// data age and hovers through the worst of it.
    SensorBlackoutCorridor,
    /// A patrol through a denser block over a lossy middleware: the
    /// point-cloud topic drops most samples (and the trajectory topic a
    /// few), so map updates starve at the perception node. Runs on the
    /// node pipeline — link faults only exist on a real bus.
    LossyLinkPatrol,
    /// Planner brownout: long latency spikes plus windows of outright
    /// plan failure. The aware runtime's watchdog aborts, retries with
    /// backoff and walks the fallback ladder; the oblivious design
    /// serialises every spike into its epoch and loses its trajectory on
    /// every failed replan.
    PlannerBrownout,
}

impl FaultScenario {
    /// All fault scenario families.
    pub const ALL: [FaultScenario; 3] = [
        FaultScenario::SensorBlackoutCorridor,
        FaultScenario::LossyLinkPatrol,
        FaultScenario::PlannerBrownout,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FaultScenario::SensorBlackoutCorridor => "sensor-blackout corridor",
            FaultScenario::LossyLinkPatrol => "lossy-link patrol",
            FaultScenario::PlannerBrownout => "planner brownout",
        }
    }

    /// `true` when the family's faults only exist on the middleware bus,
    /// so the scenario must run on the node pipeline.
    pub fn uses_node_pipeline(self) -> bool {
        matches!(self, FaultScenario::LossyLinkPatrol)
    }

    /// The static difficulty backing the family (short 120 m missions so
    /// sweeps and fixtures stay fast).
    pub fn difficulty(self) -> DifficultyConfig {
        match self {
            FaultScenario::SensorBlackoutCorridor => DifficultyConfig {
                obstacle_density: 0.4,
                obstacle_spread: 40.0,
                goal_distance: 120.0,
            },
            FaultScenario::LossyLinkPatrol => DifficultyConfig {
                obstacle_density: 0.45,
                obstacle_spread: 40.0,
                goal_distance: 120.0,
            },
            FaultScenario::PlannerBrownout => DifficultyConfig {
                obstacle_density: 0.35,
                obstacle_spread: 80.0,
                goal_distance: 120.0,
            },
        }
    }

    /// Generates the scenario's environment for a seed.
    pub fn environment(self, seed: u64) -> Environment {
        EnvironmentGenerator::new(self.difficulty()).generate(seed)
    }

    /// The family's deterministic fault campaign for a seed. The seed
    /// only shifts window phases and per-decision dice; the duty cycles
    /// are the family's own.
    pub fn fault_plan(self, seed: u64) -> FaultPlanConfig {
        let mut plan = FaultPlanConfig {
            seed: seed ^ FAULT_SEED_SALT,
            ..FaultPlanConfig::healthy()
        };
        match self {
            FaultScenario::SensorBlackoutCorridor => {
                plan.sensor = SensorFaultChannel {
                    // 3-decision blackouts every 12, with noisy 2-decision
                    // recovery bursts on a co-prime period so the two
                    // interleave differently along the mission.
                    blackout: Some(FaultWindows::every(12, 3)),
                    burst: Some(FaultWindows::every(7, 2)),
                    burst_dropout: 0.5,
                    burst_noise_std: 0.3,
                };
                plan.planner = PlannerFaultChannel {
                    // Outage-coupled replan stalls: when perception drops
                    // out the planner grinds on a decayed map, so latency
                    // spikes ride the same period as the blackouts. The
                    // spikes are recoverable under the watchdog's backoff
                    // (10 → 5 → 2.5 s against a 4 s budget) but charge the
                    // fault-oblivious design the full blind coast.
                    spike: Some(FaultWindows::every(12, 3)),
                    spike_latency: 10.0,
                    failure: None,
                };
            }
            FaultScenario::LossyLinkPatrol => {
                plan.bus = BusFaultChannel {
                    links: vec![
                        (
                            "/sensors/points".to_string(),
                            LinkFaultConfig {
                                loss_probability: 0.45,
                                duplicate_probability: 0.0,
                                delay_probability: 0.3,
                                extra_delay: 0.4,
                            },
                        ),
                        (
                            "/control/status".to_string(),
                            LinkFaultConfig {
                                loss_probability: 0.0,
                                duplicate_probability: 0.15,
                                delay_probability: 0.2,
                                extra_delay: 0.2,
                            },
                        ),
                    ],
                };
                plan.planner = PlannerFaultChannel {
                    // Retransmission storms stall the planner's map pulls:
                    // short recoverable latency spikes on a period co-prime
                    // with nothing in particular — the lossy links supply
                    // the per-decision randomness.
                    spike: Some(FaultWindows::every(9, 2)),
                    spike_latency: 8.0,
                    failure: None,
                };
            }
            FaultScenario::PlannerBrownout => {
                plan.planner = PlannerFaultChannel {
                    // Spikes large enough to trip a 4 s watchdog budget,
                    // recoverable after two backoff halvings; failure
                    // windows shorter than the ladder's hover limit but
                    // long enough to stall the fault-oblivious design.
                    spike: Some(FaultWindows::every(6, 3)),
                    spike_latency: 10.0,
                    failure: Some(FaultWindows::every(8, 5)),
                };
                plan.map = MapFaultChannel {
                    stale: Some(FaultWindows::every(9, 3)),
                };
            }
        }
        plan
    }
}

/// Constant mixed into fault-scenario seeds so fault-plan streams never
/// collide with the environment generator's use of the same seed.
const FAULT_SEED_SALT: u64 = 0x4641_554C_5453; // "FAULTS"

/// Temporal-difficulty scaling of a [`DynamicScenario`]: the three axes
/// of the moving-obstacle difficulty matrix (static density × actor
/// speed × actor count). [`DynamicDifficulty::default`] is the identity
/// — [`DynamicScenario::world_with`] then generates bit-identically to
/// [`DynamicScenario::world`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicDifficulty {
    /// Multiplier on the family's static obstacle density.
    pub density_scale: f64,
    /// Multiplier on every drawn actor speed.
    pub speed_scale: f64,
    /// Number of actor waves: each wave re-draws the family's whole
    /// pattern from the continuation of the same seed stream (ids offset
    /// per wave), so `2` doubles the actor count with fresh stations.
    pub actor_waves: usize,
}

impl Default for DynamicDifficulty {
    fn default() -> Self {
        DynamicDifficulty {
            density_scale: 1.0,
            speed_scale: 1.0,
            actor_waves: 1,
        }
    }
}

/// Actor-id stride between waves of [`DynamicScenario::world_with`] (far
/// larger than any family's per-wave actor count).
const WAVE_ID_STRIDE: usize = 16;

/// Constant mixed into dynamic-scenario seeds so actor streams never
/// collide with the environment generator's use of the same seed.
const DYNAMIC_SEED_SALT: u64 = 0x44_59_4E_41_4D_49_43_53; // "DYNAMICS"

/// A hand-built warehouse-aisle world for the paper's *high precision
/// mission* illustration (Fig. 3): two rows of racks forming a tight aisle
/// the MAV must thread, followed by open space.
pub fn warehouse_aisle_field(aisle_width: f64, aisle_length: f64) -> ObstacleField {
    let rack = |id: u32, x: f64, y: f64| {
        Obstacle::new(
            id,
            Aabb::new(Vec3::new(x, y, 0.0), Vec3::new(x + 2.0, y + 2.0, 14.0)),
        )
    };
    let mut obstacles = Vec::new();
    let mut id = 0;
    let mut x = 8.0;
    while x < 8.0 + aisle_length {
        obstacles.push(rack(id, x, aisle_width * 0.5));
        id += 1;
        obstacles.push(rack(id, x, -aisle_width * 0.5 - 2.0));
        id += 1;
        x += 4.0;
    }
    ObstacleField::new(obstacles)
}

/// Zone layout used when analysing hand-built fields (a single congested
/// stretch followed by open space).
pub fn aisle_layout(total_length: f64) -> ZoneLayout {
    ZoneLayout::new(0.0, total_length, 0.45)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_env::Zone;

    #[test]
    fn scenario_difficulties_match_their_story() {
        let pd = Scenario::PackageDelivery.difficulty();
        let sar = Scenario::SearchAndRescue.difficulty();
        // Package delivery is denser; search and rescue is longer.
        assert!(pd.obstacle_density > sar.obstacle_density);
        assert!(sar.goal_distance > pd.goal_distance);
        assert_eq!(
            Scenario::Representative.difficulty(),
            DifficultyConfig::mid()
        );
        for s in Scenario::ALL {
            assert!(!s.name().is_empty());
            assert!(s.difficulty().validate().is_ok());
        }
    }

    #[test]
    fn environments_generate_and_short_variants_are_short() {
        for s in Scenario::ALL {
            let full = s.environment(7);
            let short = s.short_environment(7);
            assert!(full.mission_length() > short.mission_length());
            assert!((short.mission_length() - 150.0).abs() < 1e-9);
            assert!(!short.field().is_empty());
        }
    }

    #[test]
    fn default_difficulty_reproduces_world_bit_for_bit() {
        for scenario in DynamicScenario::ALL {
            let (env_a, world_a) = scenario.world(41);
            let (env_b, world_b) = scenario.world_with(41, &DynamicDifficulty::default());
            assert_eq!(env_a.field().len(), env_b.field().len());
            assert_eq!(world_a.actors().len(), world_b.actors().len());
            for (a, b) in world_a.actors().iter().zip(world_b.actors()) {
                assert_eq!(a, b, "{} actor diverged", scenario.name());
            }
            // Poses too, out to a late instant.
            for (a, b) in world_a.actors().iter().zip(world_b.actors()) {
                let pa = a.pose_at(137.5);
                let pb = b.pose_at(137.5);
                assert_eq!(pa.x.to_bits(), pb.x.to_bits());
                assert_eq!(pa.y.to_bits(), pb.y.to_bits());
            }
        }
    }

    #[test]
    fn difficulty_scales_speed_count_and_density() {
        for scenario in DynamicScenario::ALL {
            let (base_env, base) = scenario.world(7);
            let (hard_env, hard) = scenario.world_with(
                7,
                &DynamicDifficulty {
                    density_scale: 1.5,
                    speed_scale: 2.0,
                    actor_waves: 2,
                },
            );
            assert_eq!(
                hard.actors().len(),
                2 * base.actors().len(),
                "{}",
                scenario.name()
            );
            // The base wave is the base pattern with doubled speeds.
            for (a, b) in base.actors().iter().zip(hard.actors()) {
                assert_eq!(a.id, b.id);
                assert!(
                    (b.max_speed() - 2.0 * a.max_speed()).abs() < 1e-12,
                    "{}: speed {} vs base {}",
                    scenario.name(),
                    b.max_speed(),
                    a.max_speed()
                );
            }
            // Wave ids never collide.
            let mut ids: Vec<u32> = hard.actors().iter().map(|a| a.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), hard.actors().len());
            // Density scaling produced a denser static field.
            assert!(hard_env.field().len() >= base_env.field().len());
        }
    }

    #[test]
    fn warehouse_aisle_has_a_navigable_gap() {
        let field = warehouse_aisle_field(5.0, 40.0);
        assert!(!field.is_empty());
        // The aisle centre is free; the racks are not.
        assert!(!field.is_occupied_with_margin(Vec3::new(20.0, 0.0, 5.0), 0.45));
        assert!(field.is_occupied(Vec3::new(9.0, 3.5, 5.0)));
        // Racks line both sides.
        let left = field
            .obstacles()
            .iter()
            .filter(|o| o.center().y > 0.0)
            .count();
        let right = field
            .obstacles()
            .iter()
            .filter(|o| o.center().y < 0.0)
            .count();
        assert_eq!(left, right);
    }

    #[test]
    fn aisle_layout_marks_the_aisle_congested() {
        let layout = aisle_layout(100.0);
        assert_eq!(layout.zone_at_x(10.0), Zone::A);
        assert_eq!(layout.zone_at_x(50.0), Zone::B);
    }
}
