//! Mission scenarios: the paper's motivating missions and the small
//! environments behind Figures 3 and 4.

use roborun_env::{
    DifficultyConfig, Environment, EnvironmentGenerator, GeneratorParams, Obstacle, ObstacleField,
    ZoneLayout,
};
use roborun_geom::{Aabb, Vec3};
use serde::{Deserialize, Serialize};

/// The named scenarios used by the examples and the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Package delivery: warehouse → open sky → warehouse (tight aisles at
    /// both ends, the paper's *high precision* emphasis).
    PackageDelivery,
    /// Search and rescue: hospital → disaster zone, long open stretch where
    /// high velocity matters (the paper's *high velocity* emphasis).
    SearchAndRescue,
    /// The mid-difficulty environment of the representative mission
    /// analysis (paper Section V-C, Figures 9–11).
    Representative,
}

impl Scenario {
    /// All scenarios.
    pub const ALL: [Scenario; 3] = [
        Scenario::PackageDelivery,
        Scenario::SearchAndRescue,
        Scenario::Representative,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::PackageDelivery => "package delivery",
            Scenario::SearchAndRescue => "search and rescue",
            Scenario::Representative => "representative mission",
        }
    }

    /// The difficulty configuration backing the scenario.
    pub fn difficulty(self) -> DifficultyConfig {
        match self {
            // Dense clusters, short-ish hop between warehouses.
            Scenario::PackageDelivery => DifficultyConfig {
                obstacle_density: 0.6,
                obstacle_spread: 40.0,
                goal_distance: 600.0,
            },
            // Sparse-but-wide debris, long transit leg.
            Scenario::SearchAndRescue => DifficultyConfig {
                obstacle_density: 0.3,
                obstacle_spread: 120.0,
                goal_distance: 1_200.0,
            },
            Scenario::Representative => DifficultyConfig::mid(),
        }
    }

    /// Generates the scenario's environment for a seed.
    pub fn environment(self, seed: u64) -> Environment {
        EnvironmentGenerator::new(self.difficulty()).generate(seed)
    }

    /// A shortened variant of the scenario (same obstacle character, 150 m
    /// goal) used by examples and tests that need to finish quickly.
    pub fn short_environment(self, seed: u64) -> Environment {
        let difficulty = DifficultyConfig {
            goal_distance: 150.0,
            ..self.difficulty()
        };
        EnvironmentGenerator::new(difficulty)
            .with_params(GeneratorParams {
                obstacles_per_density: 40.0,
                ..GeneratorParams::default()
            })
            .generate(seed)
    }
}

/// A hand-built warehouse-aisle world for the paper's *high precision
/// mission* illustration (Fig. 3): two rows of racks forming a tight aisle
/// the MAV must thread, followed by open space.
pub fn warehouse_aisle_field(aisle_width: f64, aisle_length: f64) -> ObstacleField {
    let rack = |id: u32, x: f64, y: f64| {
        Obstacle::new(
            id,
            Aabb::new(Vec3::new(x, y, 0.0), Vec3::new(x + 2.0, y + 2.0, 14.0)),
        )
    };
    let mut obstacles = Vec::new();
    let mut id = 0;
    let mut x = 8.0;
    while x < 8.0 + aisle_length {
        obstacles.push(rack(id, x, aisle_width * 0.5));
        id += 1;
        obstacles.push(rack(id, x, -aisle_width * 0.5 - 2.0));
        id += 1;
        x += 4.0;
    }
    ObstacleField::new(obstacles)
}

/// Zone layout used when analysing hand-built fields (a single congested
/// stretch followed by open space).
pub fn aisle_layout(total_length: f64) -> ZoneLayout {
    ZoneLayout::new(0.0, total_length, 0.45)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_env::Zone;

    #[test]
    fn scenario_difficulties_match_their_story() {
        let pd = Scenario::PackageDelivery.difficulty();
        let sar = Scenario::SearchAndRescue.difficulty();
        // Package delivery is denser; search and rescue is longer.
        assert!(pd.obstacle_density > sar.obstacle_density);
        assert!(sar.goal_distance > pd.goal_distance);
        assert_eq!(
            Scenario::Representative.difficulty(),
            DifficultyConfig::mid()
        );
        for s in Scenario::ALL {
            assert!(!s.name().is_empty());
            assert!(s.difficulty().validate().is_ok());
        }
    }

    #[test]
    fn environments_generate_and_short_variants_are_short() {
        for s in Scenario::ALL {
            let full = s.environment(7);
            let short = s.short_environment(7);
            assert!(full.mission_length() > short.mission_length());
            assert!((short.mission_length() - 150.0).abs() < 1e-9);
            assert!(!short.field().is_empty());
        }
    }

    #[test]
    fn warehouse_aisle_has_a_navigable_gap() {
        let field = warehouse_aisle_field(5.0, 40.0);
        assert!(!field.is_empty());
        // The aisle centre is free; the racks are not.
        assert!(!field.is_occupied_with_margin(Vec3::new(20.0, 0.0, 5.0), 0.45));
        assert!(field.is_occupied(Vec3::new(9.0, 3.5, 5.0)));
        // Racks line both sides.
        let left = field
            .obstacles()
            .iter()
            .filter(|o| o.center().y > 0.0)
            .count();
        let right = field
            .obstacles()
            .iter()
            .filter(|o| o.center().y < 0.0)
            .count();
        assert_eq!(left, right);
    }

    #[test]
    fn aisle_layout_marks_the_aisle_congested() {
        let layout = aisle_layout(100.0);
        assert_eq!(layout.zone_at_x(10.0), Zone::A);
        assert_eq!(layout.zone_at_x(50.0), Zone::B);
    }
}
