//! The closed-loop mission runner.
//!
//! One [`MissionRunner::run`] call reproduces what the paper's HIL rig does
//! for a single flight: the drone repeatedly senses, perceives, plans and
//! flies until it reaches the goal (or crashes / times out), under either
//! the RoboRun governor or the static baseline. The runner charges each
//! decision the latency the calibrated compute model assigns to the knob
//! values in force, advances the simulated drone for that long, and records
//! the full telemetry the paper's figures are drawn from.

use crate::metrics::MissionMetrics;
use roborun_control::TrajectoryFollower;
use roborun_core::{
    DecisionRecord, Governor, GovernorConfig, KnobAblation, MissionTelemetry, Profilers,
    RuntimeMode,
};
use roborun_env::{Environment, Zone};
use roborun_geom::{Aabb, Vec3};
use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
use roborun_planning::{CollisionChecker, PlanError, Planner, PlannerConfig, RrtConfig};
use roborun_sim::{
    CameraRig, ComputeLatencyModel, CpuModel, DepthCamera, DroneConfig, DroneState, EnergyModel,
    FaultConfig, FaultInjector, SimClock,
};
use serde::{Deserialize, Serialize};

/// Configuration of one mission run.
#[derive(Debug, Clone)]
pub struct MissionConfig {
    /// Runtime mode (RoboRun or the static baseline).
    pub mode: RuntimeMode,
    /// Drone platform limits.
    pub drone: DroneConfig,
    /// Profiler configuration.
    pub profilers: Profilers,
    /// Calibrated compute-latency model.
    pub latency: ComputeLatencyModel,
    /// Energy model.
    pub energy: EnergyModel,
    /// CPU-utilisation model.
    pub cpu: CpuModel,
    /// Distance at which the goal counts as reached (metres).
    pub goal_tolerance: f64,
    /// Hard cap on simulated mission time (seconds).
    pub max_mission_time: f64,
    /// Hard cap on the number of decisions.
    pub max_decisions: usize,
    /// Re-plan at least every this many decisions.
    pub replan_every: usize,
    /// Receding-horizon distance of the local planning goal (metres).
    pub planning_horizon: f64,
    /// Minimum decision epoch (seconds): even a very cheap decision only
    /// advances the world by this much before the next one.
    pub min_epoch: f64,
    /// Map memory bound: voxels farther than this from the drone are
    /// dropped (metres).
    pub map_retain_radius: f64,
    /// Planning clearance as a multiple of the body radius. Values above 1
    /// keep planned paths away from *observed* obstacle surfaces, which
    /// also protects against the unobserved sides of partially seen
    /// obstacles (the depth cameras only ever see front faces).
    pub planning_margin_factor: f64,
    /// Ablation switch forwarded to the governor: `false` replaces the
    /// waypoint-aware Algorithm 1 budget with the instantaneous Eq. 1
    /// budget.
    pub waypoint_budgeting: bool,
    /// Per-knob ablation forwarded to the governor: frozen knobs stay at
    /// their static Table II values while the rest keep adapting.
    pub ablation: KnobAblation,
    /// Sensing faults injected between the camera rig and the point-cloud
    /// kernel (fog, dropouts, range noise). Healthy by default.
    pub faults: FaultConfig,
    /// Random seed for the stochastic planner.
    pub seed: u64,
}

impl MissionConfig {
    /// A default configuration for the given runtime mode.
    ///
    /// The camera rig used for sensing is the 6-camera rig with a reduced
    /// per-camera resolution (the latency charged for perception comes from
    /// the calibrated model, so the ray count only needs to be high enough
    /// to populate the map faithfully).
    pub fn new(mode: RuntimeMode) -> Self {
        MissionConfig {
            mode,
            drone: DroneConfig::default(),
            profilers: Profilers::default(),
            latency: ComputeLatencyModel::calibrated(),
            energy: EnergyModel::default(),
            cpu: CpuModel::default(),
            goal_tolerance: 6.0,
            max_mission_time: 5_000.0,
            max_decisions: 3_000,
            replan_every: 6,
            planning_horizon: 40.0,
            min_epoch: 0.5,
            map_retain_radius: 70.0,
            planning_margin_factor: 1.7,
            waypoint_budgeting: true,
            ablation: KnobAblation::none(),
            faults: FaultConfig::healthy(),
            seed: 1,
        }
    }

    /// The sensing rig: six cameras at reduced resolution.
    pub fn camera_rig(&self) -> CameraRig {
        CameraRig::new(
            (0..6)
                .map(|i| DepthCamera {
                    h_res: 10,
                    v_res: 5,
                    ..DepthCamera::mounted_at(i as f64 * std::f64::consts::TAU / 6.0)
                })
                .collect(),
        )
    }

    /// Governor configuration derived from this mission configuration.
    pub fn governor_config(&self) -> GovernorConfig {
        GovernorConfig {
            mode: self.mode,
            max_velocity: self.drone.max_speed,
            oblivious_visibility: self.profilers.min_visibility,
            waypoint_budgeting: self.waypoint_budgeting,
            ablation: self.ablation,
            ..GovernorConfig::default()
        }
    }
}

/// Outcome of one mission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MissionResult {
    /// Mission-level metrics (Fig. 7 quantities).
    pub metrics: MissionMetrics,
    /// Full per-decision telemetry (Figures 5, 10, 11).
    pub telemetry: MissionTelemetry,
    /// The trajectory of drone positions over the mission (one per
    /// decision), for map plots like Fig. 9.
    pub flown_path: Vec<Vec3>,
}

/// Runs missions in a given configuration.
#[derive(Debug, Clone)]
pub struct MissionRunner {
    config: MissionConfig,
}

impl MissionRunner {
    /// Creates a runner.
    ///
    /// # Panics
    ///
    /// Panics if the drone configuration is invalid.
    pub fn new(config: MissionConfig) -> Self {
        config
            .drone
            .validate()
            .expect("invalid drone configuration");
        MissionRunner { config }
    }

    /// The runner's configuration.
    pub fn config(&self) -> &MissionConfig {
        &self.config
    }

    /// Runs one mission in the given environment.
    pub fn run(&self, env: &Environment) -> MissionResult {
        let cfg = &self.config;
        let governor = Governor::new(cfg.governor_config());
        let rig = cfg.camera_rig();
        let planner_seed_base = cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(env.seed());

        let mut fault_injector = (!cfg.faults.is_healthy()).then(|| FaultInjector::new(cfg.faults));
        let mut drone = DroneState::at(env.start());
        let mut clock = SimClock::new();
        let mut map = OccupancyMap::new(governor.config().ranges.precision_min);
        let mut telemetry = MissionTelemetry::new(cfg.mode);
        let mut flown_path = vec![drone.position];
        let mut follower: Option<TrajectoryFollower> = None;
        // One collision checker lives across the whole mission: each
        // replan patches its broad-phase from the export delta instead of
        // rebuilding it from scratch (the margin never changes mid-run).
        let mut collision: Option<CollisionChecker> = None;
        let mut energy_joules = 0.0;
        let mut collided = false;
        let mut reached_goal = false;
        let mut decisions = 0usize;
        let mut decisions_since_plan = usize::MAX / 2; // force an initial plan
        let baseline_velocity = governor.baseline_velocity();
        let planning_margin = cfg.drone.body_radius * cfg.planning_margin_factor;

        while decisions < cfg.max_decisions && clock.now() < cfg.max_mission_time {
            decisions += 1;

            // ------------------------------------------------------ sensing
            let pose = drone.pose();
            let scan = rig.capture(env.field(), &pose);
            let sensed_points = match fault_injector.as_mut() {
                Some(injector) => injector.corrupt_sweep(pose.position, &scan.points),
                None => scan.points.clone(),
            };
            let raw_cloud = PointCloud::new(pose.position, sensed_points);

            // --------------------------------------------------- profiling
            let heading = direction_towards(drone.position, env.goal(), drone.velocity);
            let trajectory_ref = follower.as_ref().map(|f| f.trajectory().clone());
            let mut profile = cfg.profilers.profile(
                &raw_cloud,
                &map,
                trajectory_ref.as_ref(),
                drone.position,
                drone.speed(),
                heading,
            );
            if let Some(injector) = fault_injector.as_ref() {
                // Fog also limits how far the MAV can trust its view, which
                // the deadline equation must see.
                profile.visibility = profile.visibility.min(injector.visibility_cap());
            }

            // ---------------------------------------------------- governing
            let policy = governor.decide(&profile);
            let knobs = policy.knobs;

            // ------------------------------------------- perception operators
            let downsampled = raw_cloud.downsampled(knobs.point_cloud_precision);
            let limited = downsampled.volume_limited(drone.position, knobs.octomap_volume);
            // Substrate note: free-space carving uses a step no finer than
            // 0.5 m regardless of the knob — the latency charged for the
            // stage comes from the calibrated model, so the carve step only
            // affects map fidelity, not the reported cost.
            let carve_step = knobs.point_cloud_precision.max(0.5);
            map.integrate_cloud(&limited, carve_step);
            map.retain_within(drone.position, cfg.map_retain_radius);
            let export = PlannerMap::export(
                &map,
                &ExportConfig::new(
                    knobs.map_to_planner_precision,
                    knobs.map_to_planner_volume,
                    drone.position,
                ),
            );

            // ------------------------------------------------ decision cost
            let breakdown = cfg.latency.decision_breakdown(
                knobs.point_cloud_precision,
                knobs.octomap_volume,
                knobs.map_to_planner_precision,
                knobs.map_to_planner_volume,
                knobs.map_to_planner_precision,
                knobs.planner_volume,
                cfg.mode.is_aware(),
            );
            let latency = breakdown.total();

            // ------------------------------------------------- safe velocity
            let commanded_velocity = match cfg.mode {
                RuntimeMode::SpatialOblivious => baseline_velocity,
                RuntimeMode::SpatialAware => governor.safe_velocity(latency, profile.visibility),
            };

            // --------------------------------------------------- (re)planning
            decisions_since_plan += 1;
            let blockage = first_blockage_distance(
                follower.as_ref(),
                &export,
                planning_margin,
                drone.position,
            );
            let need_plan = follower.as_ref().map(|f| f.finished()).unwrap_or(true)
                || decisions_since_plan >= cfg.replan_every
                || blockage.is_some();
            let mut replanned = false;
            if need_plan {
                let local_goal = self.local_goal(env, &export, drone.position);
                let bounds = planning_bounds(drone.position, local_goal, env.bounds());
                let check_step = knobs.map_to_planner_precision.max(0.3);
                let planner = Planner::new(PlannerConfig {
                    rrt: RrtConfig {
                        seed: planner_seed_base.wrapping_add(decisions as u64),
                        max_explored_volume: knobs.planner_volume,
                        max_samples: 900,
                        ..RrtConfig::default()
                    },
                    margin: planning_margin,
                    collision_check_step: check_step,
                    ..PlannerConfig::default()
                });
                match collision.as_mut() {
                    Some(checker) => {
                        checker.update_map(export.clone());
                        checker.set_check_step(check_step);
                    }
                    None => {
                        collision = Some(CollisionChecker::new(
                            export.clone(),
                            planning_margin,
                            check_step,
                        ));
                    }
                }
                let checker = collision.as_mut().expect("checker just initialised");
                let mut outcome = planner.plan_with_checker(
                    checker,
                    drone.position,
                    local_goal,
                    &bounds,
                    commanded_velocity.max(0.5),
                );
                if matches!(outcome, Err(PlanError::StartBlocked)) {
                    // A coarse export voxel can swallow the drone's own
                    // (physically free) position. Fall back to the
                    // worst-case export precision for this plan — the same
                    // recovery a spatial-oblivious pipeline gets for free.
                    let fine_export = PlannerMap::export(
                        &map,
                        &ExportConfig::new(
                            map.resolution(),
                            knobs.map_to_planner_volume,
                            drone.position,
                        ),
                    );
                    outcome = planner.plan(
                        &fine_export,
                        drone.position,
                        local_goal,
                        &bounds,
                        commanded_velocity.max(0.5),
                    );
                }
                if let Ok((trajectory, _stats)) = outcome {
                    match follower.as_mut() {
                        Some(f) => f.replace_trajectory(trajectory),
                        None => follower = Some(TrajectoryFollower::new(trajectory, 0.5)),
                    }
                    decisions_since_plan = 0;
                    replanned = true;
                }
            }
            // Emergency stop: the remaining trajectory collides with the
            // freshly observed map *within stopping range* and no
            // replacement was found this decision — brake and hover until a
            // valid plan exists. This is the reaction the stopping-distance
            // term of Eq. 1 budgets for. Blockages further out leave time to
            // keep flying while replanning (and coarse-voxel false positives
            // resolve as the MAV gets close and precision tightens).
            if let (Some(distance), false) = (blockage, replanned) {
                let stop_distance = governor
                    .config()
                    .budgeter
                    .stopping
                    .stopping_distance(drone.speed());
                // Reaction distance: the drone keeps moving for one decision
                // epoch before the next chance to brake.
                let reaction = drone.speed() * latency.max(cfg.min_epoch);
                if distance <= stop_distance + reaction + 2.0 * cfg.drone.body_radius {
                    follower = None;
                }
            }

            // --------------------------------------------------- record
            let cpu_sample = cfg
                .cpu
                .sample(breakdown.compute_total(), latency.max(cfg.min_epoch));
            telemetry.push(DecisionRecord {
                time: clock.now(),
                position: drone.position,
                commanded_velocity,
                visibility: profile.visibility,
                deadline: policy.deadline,
                knobs,
                breakdown,
                cpu_utilization: cpu_sample.utilization,
                zone: Some(zone_label(env.zone_at(drone.position))),
            });

            // ----------------------------------------- advance the world
            let epoch = latency.max(cfg.min_epoch);
            let substep = 0.25f64;
            let mut remaining = epoch;
            while remaining > 1e-9 {
                let dt = substep.min(remaining);
                remaining -= dt;
                let (target, speed) = match follower.as_mut() {
                    Some(f) if !f.finished() => {
                        let cmd = f.update(drone.position, dt);
                        (cmd.target, cmd.speed.min(commanded_velocity))
                    }
                    // No active trajectory: brake along the current motion
                    // direction (acceleration-limited), then hover.
                    _ => (drone.position + drone.velocity, 0.0),
                };
                drone.advance_towards(&cfg.drone, target, speed, dt);
                energy_joules += cfg.energy.energy_for(drone.speed(), dt);
                clock.advance(dt);
                if env
                    .field()
                    .is_occupied_with_margin(drone.position, cfg.drone.body_radius * 0.8)
                {
                    collided = true;
                    break;
                }
            }
            flown_path.push(drone.position);

            if collided {
                break;
            }
            if drone.position.distance(env.goal()) <= cfg.goal_tolerance {
                reached_goal = true;
                break;
            }
        }

        let mission_time = clock.now().max(1e-9);
        let metrics = MissionMetrics {
            mode: cfg.mode,
            mission_time,
            energy_kj: energy_joules / 1000.0,
            mean_velocity: drone.distance_travelled / mission_time,
            mean_cpu_utilization: telemetry.mean_cpu_utilization(),
            median_latency: telemetry.median_latency().unwrap_or(0.0),
            decisions,
            distance_travelled: drone.distance_travelled,
            reached_goal,
            collided,
        };
        MissionResult {
            metrics,
            telemetry,
            flown_path,
        }
    }

    /// Receding-horizon local goal: a free point towards the mission goal,
    /// at most `planning_horizon` metres ahead, nudged laterally when the
    /// direct candidate is blocked in the exported map.
    fn local_goal(&self, env: &Environment, export: &PlannerMap, position: Vec3) -> Vec3 {
        let goal = env.goal();
        let to_goal = goal - position;
        let distance = to_goal.norm();
        if distance <= self.config.planning_horizon {
            return goal;
        }
        let dir = to_goal / distance;
        let base = position + dir * self.config.planning_horizon;
        let margin = self.config.drone.body_radius * 1.5;
        if !export.is_occupied(base, margin) {
            return base;
        }
        let lateral = Vec3::new(-dir.y, dir.x, 0.0);
        for offset in [4.0, -4.0, 8.0, -8.0, 14.0, -14.0, 20.0, -20.0] {
            let candidate = base + lateral * offset;
            if env.bounds().contains(candidate) && !export.is_occupied(candidate, margin) {
                return candidate;
            }
        }
        base
    }
}

/// Direction of travel used for the unknown-space probe: the current
/// velocity when moving, otherwise straight at the goal.
pub(crate) fn direction_towards(position: Vec3, goal: Vec3, velocity: Vec3) -> Vec3 {
    if velocity.norm() > 0.3 {
        velocity
    } else {
        goal - position
    }
}

/// Distance (metres, straight-line from `position`) to the first point of
/// the remaining trajectory that collides with the freshly exported map, or
/// `None` when the remaining trajectory is clear (knowledge gained since
/// the last plan has not invalidated it).
pub(crate) fn first_blockage_distance(
    follower: Option<&TrajectoryFollower>,
    export: &PlannerMap,
    margin: f64,
    position: Vec3,
) -> Option<f64> {
    let f = follower?;
    let remaining = f.trajectory().remaining_from(f.progress_time());
    remaining
        .points()
        .iter()
        .find(|p| export.is_occupied(p.position, margin * 0.6))
        .map(|p| p.position.distance(position))
}

/// Axis-aligned sampling bounds for the local planning problem.
pub(crate) fn planning_bounds(start: Vec3, goal: Vec3, world: Aabb) -> Aabb {
    let corridor = Aabb::new(start, goal).inflate(25.0);
    corridor.intersection(&world).unwrap_or(corridor)
}

/// Zone enum → the single-character label used in telemetry.
pub(crate) fn zone_label(zone: Zone) -> char {
    match zone {
        Zone::A => 'A',
        Zone::B => 'B',
        Zone::C => 'C',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_env::{DifficultyConfig, EnvironmentGenerator};

    /// A short mission (120 m) so unit tests stay fast.
    fn short_environment(seed: u64) -> Environment {
        let cfg = DifficultyConfig {
            obstacle_density: 0.35,
            obstacle_spread: 40.0,
            goal_distance: 120.0,
        };
        EnvironmentGenerator::new(cfg).generate(seed)
    }

    fn quick_config(mode: RuntimeMode) -> MissionConfig {
        MissionConfig {
            max_decisions: 600,
            max_mission_time: 1_500.0,
            ..MissionConfig::new(mode)
        }
    }

    #[test]
    fn aware_mission_reaches_goal() {
        let env = short_environment(21);
        let runner = MissionRunner::new(quick_config(RuntimeMode::SpatialAware));
        let result = runner.run(&env);
        assert!(
            result.metrics.reached_goal,
            "mission did not reach the goal"
        );
        assert!(!result.metrics.collided, "mission collided");
        assert!(result.metrics.mission_time > 0.0);
        assert!(result.metrics.decisions > 1);
        assert!(result.metrics.distance_travelled >= 100.0);
        assert!(!result.telemetry.is_empty());
        assert_eq!(result.telemetry.len(), result.metrics.decisions);
        assert!(result.flown_path.len() > 2);
    }

    #[test]
    fn oblivious_mission_reaches_goal_slowly() {
        let env = short_environment(21);
        let aware = MissionRunner::new(quick_config(RuntimeMode::SpatialAware)).run(&env);
        let oblivious_cfg = MissionConfig {
            max_decisions: 1_500,
            max_mission_time: 3_000.0,
            ..MissionConfig::new(RuntimeMode::SpatialOblivious)
        };
        let oblivious = MissionRunner::new(oblivious_cfg).run(&env);
        assert!(
            oblivious.metrics.reached_goal,
            "baseline did not reach the goal"
        );
        // The headline directions: RoboRun is faster in both velocity and
        // mission time, and uses less CPU per decision.
        assert!(
            aware.metrics.mean_velocity > 1.5 * oblivious.metrics.mean_velocity,
            "aware {} vs oblivious {} m/s",
            aware.metrics.mean_velocity,
            oblivious.metrics.mean_velocity
        );
        assert!(aware.metrics.mission_time < oblivious.metrics.mission_time);
        assert!(aware.metrics.energy_kj < oblivious.metrics.energy_kj);
        assert!(
            aware.metrics.mean_cpu_utilization < oblivious.metrics.mean_cpu_utilization,
            "aware CPU {} vs oblivious {}",
            aware.metrics.mean_cpu_utilization,
            oblivious.metrics.mean_cpu_utilization
        );
        assert!(aware.metrics.median_latency < oblivious.metrics.median_latency);
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let env = short_environment(5);
        let runner = MissionRunner::new(quick_config(RuntimeMode::SpatialAware));
        let a = runner.run(&env);
        let b = runner.run(&env);
        assert_eq!(a.metrics.decisions, b.metrics.decisions);
        assert!((a.metrics.mission_time - b.metrics.mission_time).abs() < 1e-9);
        assert!((a.metrics.energy_kj - b.metrics.energy_kj).abs() < 1e-9);
    }

    #[test]
    fn open_world_mission_is_fast_for_aware_mode() {
        // No obstacles at all: the aware design should sustain (near) the
        // platform's maximum speed.
        let cfg = DifficultyConfig {
            obstacle_density: 0.01,
            obstacle_spread: 40.0,
            goal_distance: 100.0,
        };
        let env = EnvironmentGenerator::new(cfg).generate(3);
        let runner = MissionRunner::new(quick_config(RuntimeMode::SpatialAware));
        let result = runner.run(&env);
        assert!(result.metrics.reached_goal);
        assert!(
            result.metrics.mean_velocity > 1.5,
            "open-sky velocity {}",
            result.metrics.mean_velocity
        );
    }

    #[test]
    fn telemetry_records_zones_and_deadlines() {
        let env = short_environment(9);
        let runner = MissionRunner::new(quick_config(RuntimeMode::SpatialAware));
        let result = runner.run(&env);
        let zones: std::collections::HashSet<char> = result
            .telemetry
            .records()
            .iter()
            .filter_map(|r| r.zone)
            .collect();
        assert!(zones.contains(&'A'));
        for r in result.telemetry.records() {
            assert!(r.deadline > 0.0);
            assert!(r.latency() > 0.0);
            assert!(r.commanded_velocity >= 0.0);
            assert!((0.0..=1.0).contains(&r.cpu_utilization));
        }
    }

    #[test]
    fn foggy_missions_slow_down_but_mostly_stay_safe() {
        // The planner is stochastic (the paper accepts ≥80% collision-free
        // flights), so fog is assessed over several seeds: most runs must
        // still succeed, and on the runs that do, fog must cost velocity
        // relative to the clear-sky run of the same environment.
        //
        // The ceiling sits just above the pipeline's stall cliff: below
        // ~12 m of visibility the governor's safe velocity collapses and
        // missions crawl without ever reaching the goal (measured: every
        // seed stalls at 0.03–0.05 m/s with an 8–10 m ceiling).
        let mut successes = 0usize;
        let mut velocity_ratios = Vec::new();
        for seed in [21, 5, 9] {
            let env = short_environment(seed);
            let foggy_cfg = MissionConfig {
                faults: FaultConfig::fog(12.0),
                max_decisions: 1_500,
                max_mission_time: 3_000.0,
                ..MissionConfig::new(RuntimeMode::SpatialAware)
            };
            let foggy = MissionRunner::new(foggy_cfg).run(&env);
            for r in foggy.telemetry.records() {
                assert!(r.visibility <= 12.0 + 1e-9);
            }
            if foggy.metrics.reached_goal && !foggy.metrics.collided {
                successes += 1;
                let clear = MissionRunner::new(quick_config(RuntimeMode::SpatialAware)).run(&env);
                if clear.metrics.reached_goal {
                    velocity_ratios.push(foggy.metrics.mean_velocity / clear.metrics.mean_velocity);
                }
            }
        }
        assert!(
            successes >= 2,
            "only {successes}/3 foggy missions succeeded"
        );
        assert!(!velocity_ratios.is_empty());
        let mean_ratio: f64 = velocity_ratios.iter().sum::<f64>() / velocity_ratios.len() as f64;
        assert!(
            mean_ratio < 1.0,
            "fog did not cost velocity: mean foggy/clear ratio {mean_ratio}"
        );
    }

    #[test]
    fn flaky_sensors_do_not_crash_the_mission() {
        let env = short_environment(9);
        let cfg = MissionConfig {
            faults: FaultConfig::flaky_sensors(0.1, 0.3),
            max_decisions: 1_200,
            max_mission_time: 3_000.0,
            ..MissionConfig::new(RuntimeMode::SpatialAware)
        };
        let result = MissionRunner::new(cfg).run(&env);
        assert!(
            result.metrics.reached_goal,
            "mission did not finish under sensor faults"
        );
        assert!(!result.metrics.collided);
    }

    #[test]
    fn safety_report_audits_a_mission() {
        use roborun_core::SafetyReport;
        let env = short_environment(21);
        let aware = MissionRunner::new(quick_config(RuntimeMode::SpatialAware)).run(&env);
        let report = SafetyReport::from_telemetry(&aware.telemetry);
        assert_eq!(report.decisions, aware.metrics.decisions);
        assert!(report.mean_budget_consumption > 0.0);
        assert!(report.tightest_deadline > 0.0);
        // The enforced invariant — latency fits the budget at the velocity
        // the runtime actually commanded — holds for almost every decision;
        // the pre-decision deadline is routinely exceeded near obstacles and
        // is reported for analysis only.
        assert!(
            report.velocity_violation_rate() < 0.1,
            "velocity-budget violation rate {} (report: {report:?})",
            report.velocity_violation_rate()
        );
        assert!(report.deadline_violations >= report.velocity_violations);
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn knob_ablation_costs_mission_performance() {
        // Freezing every knob keeps the dynamic deadline but removes knob
        // adaptation, so the ablated design must be slower than full
        // RoboRun (and no faster than it on mean velocity).
        let env = short_environment(21);
        let full = MissionRunner::new(quick_config(RuntimeMode::SpatialAware)).run(&env);
        let ablated_cfg = MissionConfig {
            ablation: KnobAblation::all(),
            max_decisions: 1_500,
            max_mission_time: 3_000.0,
            ..MissionConfig::new(RuntimeMode::SpatialAware)
        };
        let ablated = MissionRunner::new(ablated_cfg).run(&env);
        assert!(full.metrics.reached_goal && ablated.metrics.reached_goal);
        assert!(
            ablated.metrics.mission_time > full.metrics.mission_time,
            "ablated {} s vs full {} s",
            ablated.metrics.mission_time,
            full.metrics.mission_time
        );
        assert!(ablated.metrics.mean_velocity <= full.metrics.mean_velocity * 1.05);
        // Every decision's knobs are pinned at the static values.
        for r in ablated.telemetry.records() {
            assert_eq!(r.knobs, roborun_core::KnobSettings::static_baseline());
        }
    }

    #[test]
    #[should_panic(expected = "invalid drone configuration")]
    fn invalid_drone_config_panics() {
        let mut cfg = MissionConfig::new(RuntimeMode::SpatialAware);
        cfg.drone.max_speed = 0.0;
        let _ = MissionRunner::new(cfg);
    }
}
