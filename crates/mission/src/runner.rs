//! The closed-loop mission runner.
//!
//! One [`MissionRunner::run`] call reproduces what the paper's HIL rig does
//! for a single flight: the drone repeatedly senses, perceives, plans and
//! flies until it reaches the goal (or crashes / times out), under either
//! the RoboRun governor or the static baseline. The runner charges each
//! decision the latency the calibrated compute model assigns to the knob
//! values in force, advances the simulated drone for that long, and records
//! the full telemetry the paper's figures are drawn from.
//!
//! The per-decision logic itself lives in [`crate::cycle`]: the runner is a
//! thin driver that loops a [`cycle::DecisionCycle`](crate::cycle) until the
//! mission closes, and — when [`MissionConfig::plan_ahead`] is enabled —
//! hosts the scoped planner worker that speculatively plans each next
//! decision while control executes the current trajectory (see the
//! snapshot/validation contract in the [`crate::cycle`] module docs).

use crate::cycle::{self, DecisionCycle, PlanAheadWorker};
use crate::metrics::MissionMetrics;
use roborun_core::{KnobAblation, MissionTelemetry, Profilers, RuntimeMode};
use roborun_dynamics::DynamicWorld;
use roborun_env::Environment;
use roborun_faults::FaultPlanConfig;
use roborun_geom::Vec3;
use roborun_sim::{
    CameraRig, ComputeLatencyModel, CpuModel, DepthCamera, DroneConfig, EnergyModel, FaultConfig,
};
use serde::{Deserialize, Serialize};
use std::sync::mpsc;

/// Configuration of one mission run.
#[derive(Debug, Clone)]
pub struct MissionConfig {
    /// Runtime mode (RoboRun or the static baseline).
    pub mode: RuntimeMode,
    /// Drone platform limits.
    pub drone: DroneConfig,
    /// Profiler configuration.
    pub profilers: Profilers,
    /// Calibrated compute-latency model.
    pub latency: ComputeLatencyModel,
    /// Energy model.
    pub energy: EnergyModel,
    /// CPU-utilisation model.
    pub cpu: CpuModel,
    /// Distance at which the goal counts as reached (metres).
    pub goal_tolerance: f64,
    /// Hard cap on simulated mission time (seconds).
    pub max_mission_time: f64,
    /// Hard cap on the number of decisions.
    pub max_decisions: usize,
    /// Re-plan at least every this many decisions.
    pub replan_every: usize,
    /// Receding-horizon distance of the local planning goal (metres).
    pub planning_horizon: f64,
    /// Minimum decision epoch (seconds): even a very cheap decision only
    /// advances the world by this much before the next one.
    pub min_epoch: f64,
    /// Map memory bound: voxels farther than this from the drone are
    /// dropped (metres).
    pub map_retain_radius: f64,
    /// Planning clearance as a multiple of the body radius. Values above 1
    /// keep planned paths away from *observed* obstacle surfaces, which
    /// also protects against the unobserved sides of partially seen
    /// obstacles (the depth cameras only ever see front faces).
    pub planning_margin_factor: f64,
    /// Ablation switch forwarded to the governor: `false` replaces the
    /// waypoint-aware Algorithm 1 budget with the instantaneous Eq. 1
    /// budget.
    pub waypoint_budgeting: bool,
    /// Per-knob ablation forwarded to the governor: frozen knobs stay at
    /// their static Table II values while the rest keep adapting.
    pub ablation: KnobAblation,
    /// Sensing faults injected between the camera rig and the point-cloud
    /// kernel (fog, dropouts, range noise). Healthy by default.
    pub faults: FaultConfig,
    /// Overlap planning with execution: speculatively plan the next
    /// decision on a worker thread while control executes the current
    /// trajectory, masking the planning stage's latency when the
    /// speculation survives the incremental re-check (see the
    /// [`crate::cycle`] module docs). Off by default; with it off every
    /// mission is bit-identical to the non-overlapped behaviour.
    pub plan_ahead: bool,
    /// Lookahead horizon (seconds) over which moving obstacles' predicted
    /// occupancy invalidates the followed trajectory and plan-ahead
    /// speculations. Only consulted when a mission runs against a
    /// [`roborun_dynamics::DynamicWorld`] with actors.
    pub dynamic_lookahead: f64,
    /// Plan *through* the predicted moving-obstacle occupancy instead of
    /// only vetoing finished plans against it: the planner (synchronous
    /// and speculative) queries the composed
    /// [`roborun_planning::HazardContext`] — static checker plus the
    /// decision's predicted boxes as time-free soft obstacles — so plans
    /// route around a crossing lane in one shot rather than converging
    /// by repeated rejection. The posterior predicted-occupancy veto is
    /// retained as the safety net (smoothing can still cut a corner).
    /// Off by default: with it off (or in a static world) every mission
    /// is bit-identical to the reject-loop behaviour.
    pub predicted_costmap: bool,
    /// Stale-occupied decay window of the occupancy map, in decisions:
    /// with `Some(n)`, an occupied voxel older than `n` decisions yields
    /// to a contradicting free-space ray, so cells vacated by moving
    /// obstacles actually free up (the removals flow into the export
    /// delta the incremental collision checker patches from). `None`
    /// (the default) keeps the classic accrete-only map bit for bit.
    pub voxel_decay: Option<u64>,
    /// Deterministic fault campaign over the whole stack: sensor
    /// blackouts/bursts, planner spikes and forced failures, stale-map
    /// epochs, and (on the node pipeline) bus link faults. Healthy by
    /// default; a healthy plan is never armed, so faults-off missions run
    /// the exact pre-fault code path bit for bit.
    pub fault_plan: FaultPlanConfig,
    /// Graceful-degradation runtime: the planning watchdog with bounded
    /// retries, the reuse → hover → wedge-retreat fallback ladder, and
    /// stale-perception velocity derating. Disabled by default; the
    /// fault-oblivious baseline runs with this off.
    pub degradation: DegradationConfig,
    /// Committed trajectories of *other* drones sharing this world (fleet
    /// missions), one polyline per peer. Each polyline is swept into
    /// clearance-inflated boxes and merged into the predicted-hazard
    /// source every decision, so the planner routes around peer corridors
    /// exactly like predicted moving-obstacle occupancy (see
    /// [`roborun_planning::PeerTrajectoryHazard`] for the two-margin
    /// clearance semantics). Empty by default: with no peers every
    /// mission is bit-identical to the single-drone behaviour. Fleet
    /// coordination (live re-publication as peers replan) layers on top
    /// via [`crate::fleet`].
    pub peer_trajectories: Vec<Vec<Vec3>>,
    /// Routes a share of RRT* proposals into goal- and gap-regions
    /// derived from the composed hazard boxes (the planner's
    /// [`SamplingMix`](roborun_planning::SamplingMix) at its default
    /// weights). Advisory only — validity still comes from the
    /// collision checker — and off by default; with it off, or with no
    /// hazards composed into a decision, every plan is bit-identical
    /// to the uniform sampler.
    pub hazard_biased_sampling: bool,
    /// Cross-decision planner reuse: warm-start each synchronous replan
    /// from the previous decision's RRT* tree (rebased to the new start
    /// and pruned against the map delta and retargeted hazards), switch
    /// the sampler to informed prolate-spheroid rejection once a solution
    /// exists, and cap post-solution refinement with a bounded sample
    /// budget. Off by default: with it off every mission consumes the
    /// exact pre-reuse RNG stream bit for bit.
    pub planner_reuse: bool,
    /// Random seed for the stochastic planner.
    pub seed: u64,
}

/// Configuration of the graceful-degradation runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Master switch. With `false` (the default) every fault is absorbed
    /// the way the pre-degradation runtime absorbed it: spikes serialise
    /// into the decision epoch, failed plans silently keep the old
    /// trajectory, stale data flies at full trust.
    pub enabled: bool,
    /// Planning watchdog budget (seconds): a planning stage modelled to
    /// exceed this is aborted at the budget and retried.
    pub watchdog_budget: f64,
    /// Bounded retries after a watchdog abort.
    pub max_retries: u32,
    /// Multiplicative decay applied to the modelled spike on each retry
    /// (a transient overload drains away; a forced failure never
    /// succeeds regardless).
    pub retry_backoff: f64,
    /// Consecutive planner-failure hovers tolerated before the ladder
    /// bottoms out into a wedge-retreat safe-stop.
    pub hover_limit: u32,
    /// Perception data age (seconds) beyond which the runtime stops
    /// trusting the map enough to move at all and hovers until sensing
    /// recovers.
    pub stale_hover_age: f64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            enabled: false,
            watchdog_budget: 4.0,
            max_retries: 2,
            retry_backoff: 0.5,
            hover_limit: 6,
            stale_hover_age: 8.0,
        }
    }
}

impl MissionConfig {
    /// A default configuration for the given runtime mode.
    ///
    /// The camera rig used for sensing is the 6-camera rig with a reduced
    /// per-camera resolution (the latency charged for perception comes from
    /// the calibrated model, so the ray count only needs to be high enough
    /// to populate the map faithfully).
    pub fn new(mode: RuntimeMode) -> Self {
        MissionConfig {
            mode,
            drone: DroneConfig::default(),
            profilers: Profilers::default(),
            latency: ComputeLatencyModel::calibrated(),
            energy: EnergyModel::default(),
            cpu: CpuModel::default(),
            goal_tolerance: 6.0,
            max_mission_time: 5_000.0,
            max_decisions: 3_000,
            replan_every: 6,
            planning_horizon: 40.0,
            min_epoch: 0.5,
            map_retain_radius: 70.0,
            planning_margin_factor: 1.7,
            waypoint_budgeting: true,
            ablation: KnobAblation::none(),
            faults: FaultConfig::healthy(),
            plan_ahead: false,
            dynamic_lookahead: 4.0,
            predicted_costmap: false,
            voxel_decay: None,
            fault_plan: FaultPlanConfig::healthy(),
            degradation: DegradationConfig::default(),
            peer_trajectories: Vec::new(),
            hazard_biased_sampling: false,
            planner_reuse: false,
            seed: 1,
        }
    }

    /// The six horizontal cameras every rig is built from.
    fn horizontal_cameras() -> Vec<DepthCamera> {
        (0..6)
            .map(|i| DepthCamera {
                h_res: 10,
                v_res: 5,
                ..DepthCamera::mounted_at(i as f64 * std::f64::consts::TAU / 6.0)
            })
            .collect()
    }

    /// The sensing rig: six cameras at reduced resolution.
    pub fn camera_rig(&self) -> CameraRig {
        CameraRig::new(Self::horizontal_cameras())
    }

    /// The sensing rig for dynamic (moving-obstacle) missions: the six
    /// horizontal cameras plus three down-tilted ones. Moving obstacles
    /// push plans out of the horizontal band — an escape or an
    /// over-the-top route later *descends*, and the classic rig's ±22.5°
    /// band would let the MAV descend through unsensed space straight
    /// into pillar tops the map never saw.
    pub fn dynamic_camera_rig(&self) -> CameraRig {
        let mut cameras = Self::horizontal_cameras();
        cameras.extend((0..3).map(|i| DepthCamera {
            h_res: 10,
            v_res: 5,
            mount_pitch: -0.75,
            v_fov: 0.9,
            ..DepthCamera::mounted_at(i as f64 * std::f64::consts::TAU / 3.0)
        }));
        CameraRig::new(cameras)
    }

    /// Governor configuration derived from this mission configuration.
    pub fn governor_config(&self) -> roborun_core::GovernorConfig {
        roborun_core::GovernorConfig {
            mode: self.mode,
            max_velocity: self.drone.max_speed,
            oblivious_visibility: self.profilers.min_visibility,
            waypoint_budgeting: self.waypoint_budgeting,
            ablation: self.ablation,
            ..roborun_core::GovernorConfig::default()
        }
    }
}

/// Outcome of one mission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MissionResult {
    /// Mission-level metrics (Fig. 7 quantities).
    pub metrics: MissionMetrics,
    /// Full per-decision telemetry (Figures 5, 10, 11).
    pub telemetry: MissionTelemetry,
    /// The trajectory of drone positions over the mission (one per
    /// decision), for map plots like Fig. 9.
    pub flown_path: Vec<Vec3>,
    /// Simulation time of each [`MissionResult::flown_path`] entry
    /// (seconds), so flown positions can be judged against the world
    /// state of their instant — e.g. the dynamic-world safety audit that
    /// checks no flown point ever intersects a moving actor's true pose.
    pub flown_times: Vec<f64>,
}

/// Runs missions in a given configuration.
#[derive(Debug, Clone)]
pub struct MissionRunner {
    config: MissionConfig,
}

impl MissionRunner {
    /// Creates a runner.
    ///
    /// # Panics
    ///
    /// Panics if the drone configuration is invalid.
    pub fn new(config: MissionConfig) -> Self {
        config
            .drone
            .validate()
            .expect("invalid drone configuration");
        MissionRunner { config }
    }

    /// The runner's configuration.
    pub fn config(&self) -> &MissionConfig {
        &self.config
    }

    /// Runs one mission in the given environment.
    ///
    /// With [`MissionConfig::plan_ahead`] enabled, a scoped worker thread
    /// serves speculative planning requests for the duration of the run;
    /// the mission stays deterministic because each speculation is a pure
    /// function of its snapshot and the loop joins the worker's answer
    /// before using it.
    pub fn run(&self, env: &Environment) -> MissionResult {
        self.run_with(env, None)
    }

    /// Runs one mission against a dynamic world: the same decision loop,
    /// sensing from the snapshot field of each instant, validating
    /// trajectories against the predicted moving-obstacle occupancy and
    /// budgeting reaction time with the closing-speed term (see the
    /// [`crate::cycle`] module docs). With an actor-free world the
    /// mission is bit-identical to [`MissionRunner::run`].
    pub fn run_dynamic(&self, env: &Environment, dynamics: &DynamicWorld) -> MissionResult {
        self.run_with(env, Some(dynamics))
    }

    fn run_with(&self, env: &Environment, dynamics: Option<&DynamicWorld>) -> MissionResult {
        if !self.config.plan_ahead {
            return self.drive(env, dynamics, None);
        }
        let (req_tx, req_rx) = mpsc::channel();
        let (out_tx, out_rx) = mpsc::channel();
        std::thread::scope(|scope| {
            scope.spawn(move || cycle::speculation_worker(req_rx, out_tx));
            let mut worker = PlanAheadWorker::new(req_tx, out_rx);
            // `worker` (and with it the request sender) drops when this
            // closure returns, which hangs up the channel and lets the
            // scoped thread exit before the scope joins it.
            self.drive(env, dynamics, Some(&mut worker))
        })
    }

    /// The decision loop: a thin driver of [`cycle::DecisionCycle`].
    fn drive(
        &self,
        env: &Environment,
        dynamics: Option<&DynamicWorld>,
        mut worker: Option<&mut PlanAheadWorker>,
    ) -> MissionResult {
        let mut cycle = DecisionCycle::new(&self.config, env, dynamics);
        while cycle.mission_open() {
            cycle.run_decision(worker.as_deref_mut());
        }
        cycle.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_env::{DifficultyConfig, EnvironmentGenerator};

    /// A short mission (120 m) so unit tests stay fast.
    fn short_environment(seed: u64) -> Environment {
        let cfg = DifficultyConfig {
            obstacle_density: 0.35,
            obstacle_spread: 40.0,
            goal_distance: 120.0,
        };
        EnvironmentGenerator::new(cfg).generate(seed)
    }

    fn quick_config(mode: RuntimeMode) -> MissionConfig {
        MissionConfig {
            max_decisions: 600,
            max_mission_time: 1_500.0,
            ..MissionConfig::new(mode)
        }
    }

    #[test]
    fn aware_mission_reaches_goal() {
        let env = short_environment(21);
        let runner = MissionRunner::new(quick_config(RuntimeMode::SpatialAware));
        let result = runner.run(&env);
        assert!(
            result.metrics.reached_goal,
            "mission did not reach the goal"
        );
        assert!(!result.metrics.collided, "mission collided");
        assert!(result.metrics.mission_time > 0.0);
        assert!(result.metrics.decisions > 1);
        assert!(result.metrics.distance_travelled >= 100.0);
        assert!(!result.telemetry.is_empty());
        assert_eq!(result.telemetry.len(), result.metrics.decisions);
        assert!(result.flown_path.len() > 2);
    }

    #[test]
    fn oblivious_mission_reaches_goal_slowly() {
        let env = short_environment(21);
        let aware = MissionRunner::new(quick_config(RuntimeMode::SpatialAware)).run(&env);
        let oblivious_cfg = MissionConfig {
            max_decisions: 1_500,
            max_mission_time: 3_000.0,
            ..MissionConfig::new(RuntimeMode::SpatialOblivious)
        };
        let oblivious = MissionRunner::new(oblivious_cfg).run(&env);
        assert!(
            oblivious.metrics.reached_goal,
            "baseline did not reach the goal"
        );
        // The headline directions: RoboRun is faster in both velocity and
        // mission time, and uses less CPU per decision.
        assert!(
            aware.metrics.mean_velocity > 1.5 * oblivious.metrics.mean_velocity,
            "aware {} vs oblivious {} m/s",
            aware.metrics.mean_velocity,
            oblivious.metrics.mean_velocity
        );
        assert!(aware.metrics.mission_time < oblivious.metrics.mission_time);
        assert!(aware.metrics.energy_kj < oblivious.metrics.energy_kj);
        assert!(
            aware.metrics.mean_cpu_utilization < oblivious.metrics.mean_cpu_utilization,
            "aware CPU {} vs oblivious {}",
            aware.metrics.mean_cpu_utilization,
            oblivious.metrics.mean_cpu_utilization
        );
        assert!(aware.metrics.median_latency < oblivious.metrics.median_latency);
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let env = short_environment(5);
        let runner = MissionRunner::new(quick_config(RuntimeMode::SpatialAware));
        let a = runner.run(&env);
        let b = runner.run(&env);
        assert_eq!(a.metrics.decisions, b.metrics.decisions);
        assert!((a.metrics.mission_time - b.metrics.mission_time).abs() < 1e-9);
        assert!((a.metrics.energy_kj - b.metrics.energy_kj).abs() < 1e-9);
    }

    #[test]
    fn open_world_mission_is_fast_for_aware_mode() {
        // No obstacles at all: the aware design should sustain (near) the
        // platform's maximum speed.
        let cfg = DifficultyConfig {
            obstacle_density: 0.01,
            obstacle_spread: 40.0,
            goal_distance: 100.0,
        };
        let env = EnvironmentGenerator::new(cfg).generate(3);
        let runner = MissionRunner::new(quick_config(RuntimeMode::SpatialAware));
        let result = runner.run(&env);
        assert!(result.metrics.reached_goal);
        assert!(
            result.metrics.mean_velocity > 1.5,
            "open-sky velocity {}",
            result.metrics.mean_velocity
        );
    }

    #[test]
    fn telemetry_records_zones_and_deadlines() {
        let env = short_environment(9);
        let runner = MissionRunner::new(quick_config(RuntimeMode::SpatialAware));
        let result = runner.run(&env);
        let zones: std::collections::HashSet<char> = result
            .telemetry
            .records()
            .iter()
            .filter_map(|r| r.zone)
            .collect();
        assert!(zones.contains(&'A'));
        for r in result.telemetry.records() {
            assert!(r.deadline > 0.0);
            assert!(r.latency() > 0.0);
            assert!(r.commanded_velocity >= 0.0);
            assert!((0.0..=1.0).contains(&r.cpu_utilization));
        }
    }

    #[test]
    fn foggy_missions_slow_down_but_mostly_stay_safe() {
        // The planner is stochastic (the paper accepts ≥80% collision-free
        // flights), so fog is assessed over several seeds: most runs must
        // still succeed, and on the runs that do, fog must cost velocity
        // relative to the clear-sky run of the same environment.
        //
        // The ceiling sits just above the pipeline's stall cliff: below
        // ~12 m of visibility the governor's safe velocity collapses and
        // missions crawl without ever reaching the goal (measured: every
        // seed stalls at 0.03–0.05 m/s with an 8–10 m ceiling).
        let mut successes = 0usize;
        let mut velocity_ratios = Vec::new();
        for seed in [21, 5, 9] {
            let env = short_environment(seed);
            let foggy_cfg = MissionConfig {
                faults: FaultConfig::fog(12.0),
                max_decisions: 1_500,
                max_mission_time: 3_000.0,
                ..MissionConfig::new(RuntimeMode::SpatialAware)
            };
            let foggy = MissionRunner::new(foggy_cfg).run(&env);
            for r in foggy.telemetry.records() {
                assert!(r.visibility <= 12.0 + 1e-9);
            }
            if foggy.metrics.reached_goal && !foggy.metrics.collided {
                successes += 1;
                let clear = MissionRunner::new(quick_config(RuntimeMode::SpatialAware)).run(&env);
                if clear.metrics.reached_goal {
                    velocity_ratios.push(foggy.metrics.mean_velocity / clear.metrics.mean_velocity);
                }
            }
        }
        assert!(
            successes >= 2,
            "only {successes}/3 foggy missions succeeded"
        );
        assert!(!velocity_ratios.is_empty());
        let mean_ratio: f64 = velocity_ratios.iter().sum::<f64>() / velocity_ratios.len() as f64;
        assert!(
            mean_ratio < 1.0,
            "fog did not cost velocity: mean foggy/clear ratio {mean_ratio}"
        );
    }

    #[test]
    fn flaky_sensors_do_not_crash_the_mission() {
        let env = short_environment(9);
        let cfg = MissionConfig {
            faults: FaultConfig::flaky_sensors(0.1, 0.3),
            max_decisions: 1_200,
            max_mission_time: 3_000.0,
            ..MissionConfig::new(RuntimeMode::SpatialAware)
        };
        let result = MissionRunner::new(cfg).run(&env);
        assert!(
            result.metrics.reached_goal,
            "mission did not finish under sensor faults"
        );
        assert!(!result.metrics.collided);
    }

    #[test]
    fn safety_report_audits_a_mission() {
        use roborun_core::SafetyReport;
        let env = short_environment(21);
        let aware = MissionRunner::new(quick_config(RuntimeMode::SpatialAware)).run(&env);
        let report = SafetyReport::from_telemetry(&aware.telemetry);
        assert_eq!(report.decisions, aware.metrics.decisions);
        assert!(report.mean_budget_consumption > 0.0);
        assert!(report.tightest_deadline > 0.0);
        // The enforced invariant — latency fits the budget at the velocity
        // the runtime actually commanded — holds for almost every decision;
        // the pre-decision deadline is routinely exceeded near obstacles and
        // is reported for analysis only.
        assert!(
            report.velocity_violation_rate() < 0.1,
            "velocity-budget violation rate {} (report: {report:?})",
            report.velocity_violation_rate()
        );
        assert!(report.deadline_violations >= report.velocity_violations);
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn knob_ablation_costs_mission_performance() {
        // Freezing every knob keeps the dynamic deadline but removes knob
        // adaptation, so the ablated design must be slower than full
        // RoboRun (and no faster than it on mean velocity).
        let env = short_environment(21);
        let full = MissionRunner::new(quick_config(RuntimeMode::SpatialAware)).run(&env);
        let ablated_cfg = MissionConfig {
            ablation: KnobAblation::all(),
            max_decisions: 1_500,
            max_mission_time: 3_000.0,
            ..MissionConfig::new(RuntimeMode::SpatialAware)
        };
        let ablated = MissionRunner::new(ablated_cfg).run(&env);
        assert!(full.metrics.reached_goal && ablated.metrics.reached_goal);
        assert!(
            ablated.metrics.mission_time > full.metrics.mission_time,
            "ablated {} s vs full {} s",
            ablated.metrics.mission_time,
            full.metrics.mission_time
        );
        assert!(ablated.metrics.mean_velocity <= full.metrics.mean_velocity * 1.05);
        // Every decision's knobs are pinned at the static values.
        for r in ablated.telemetry.records() {
            assert_eq!(r.knobs, roborun_core::KnobSettings::static_baseline());
        }
    }

    #[test]
    #[should_panic(expected = "invalid drone configuration")]
    fn invalid_drone_config_panics() {
        let mut cfg = MissionConfig::new(RuntimeMode::SpatialAware);
        cfg.drone.max_speed = 0.0;
        let _ = MissionRunner::new(cfg);
    }
}
