//! The async mission service: a long-running front end that turns the
//! batch sweep machinery into a request/stream server.
//!
//! # Request / shard / stream contract
//!
//! * **Request.** [`MissionService::submit`] takes a [`SweepConfig`],
//!   validates it up front with [`SweepConfig::validate`] (a NaN knob is
//!   rejected at the door with a typed [`SweepError`], never deep inside
//!   a worker thread) and returns a monotonically increasing
//!   [`RequestId`]. One request expands into one work item per
//!   difficulty row.
//! * **Shards.** Work items are assigned to the `shards` worker threads
//!   round-robin in submission order. Each worker computes complete
//!   sweep rows (the exact [`crate::sweep::run_sweep`] row function —
//!   one oblivious and one aware mission in the row's environment), so a
//!   row's *value* never depends on which shard ran it or when.
//! * **Stream.** Every finished row is published on the middleware bus
//!   topic [`ROW_TOPIC`] as a [`RowMessage`]. The collector re-orders
//!   completions so the stream is emitted in **(request order, row
//!   order)** regardless of shard scheduling. [`MissionService::collect`]
//!   blocks until a request's rows are all done and returns them as
//!   [`SweepResults`], again in row order.
//!
//! # Determinism guarantee
//!
//! Row values are pure functions of `(config, row index)` — every
//! mission inside a row owns its seed — and both the bus stream and
//! `collect` present rows in (request order, row order). The service's
//! observable output is therefore bit-identical for a given (seed,
//! request order), whatever the shard count, thread scheduling or
//! submission timing. A one-shard service and a batch
//! [`crate::sweep::run_sweep_serial`] call produce the same rows bit for
//! bit.
//!
//! A panic inside a row is captured on the shard, recorded against its
//! request with the failing row index, and resumed on the caller's
//! thread by [`MissionService::collect`] — the same first-failure
//! contract as the pooled batch sweep.

use crate::sweep::{run_sweep_row, SweepConfig, SweepError, SweepResults, SweepRow};
use roborun_middleware::{MessageBus, Node, Publisher, QosProfile, Subscription};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The bus topic finished rows stream on.
pub const ROW_TOPIC: &str = "/mission_service/rows";

/// Identifier of a submitted request, monotonically increasing in
/// submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// One finished sweep row as streamed over [`ROW_TOPIC`].
#[derive(Debug, Clone, PartialEq)]
pub struct RowMessage {
    /// The request this row belongs to.
    pub request: RequestId,
    /// The row's index inside its request (difficulty order).
    pub row: usize,
    /// The computed row.
    pub value: SweepRow,
}

impl roborun_middleware::Message for RowMessage {
    fn approx_size_bytes(&self) -> usize {
        std::mem::size_of::<RowMessage>()
    }

    fn type_name() -> &'static str {
        "mission/RowMessage"
    }
}

/// Configuration of the mission service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker (shard) count. Clamped to at least 1.
    pub shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: roborun_trace::host_cores(),
        }
    }
}

/// A row's computation outcome on a shard: the value, or the captured
/// panic message of the first failing row.
enum RowOutcome {
    Done(Box<SweepRow>),
    Panicked(String),
}

/// Per-request state shared between the submitter, the shards, the
/// collector and `collect`.
struct RequestState {
    id: RequestId,
    config: SweepConfig,
    rows: Mutex<RequestRows>,
    done: Condvar,
}

struct RequestRows {
    values: Vec<Option<SweepRow>>,
    completed: usize,
    /// First captured row panic, as `(row index, message)`.
    failure: Option<(usize, String)>,
}

impl RequestState {
    fn total(&self) -> usize {
        self.config.difficulties.len()
    }
}

/// One unit of shard work: a row of a submitted request.
struct WorkItem {
    request: Arc<RequestState>,
    row: usize,
}

/// What the shards report to the collector, in completion order.
struct Completion {
    request: RequestId,
    row: usize,
    outcome: RowOutcome,
}

struct ServiceShared {
    /// Round-robin shard inboxes; `None` is the shutdown sentinel.
    queues: Vec<Mutex<VecDeque<Option<WorkItem>>>>,
    /// One condvar per shard inbox.
    available: Vec<Condvar>,
    /// Completions from the shards to the collector; `None` = shutdown.
    completions: Mutex<VecDeque<Option<Completion>>>,
    completions_ready: Condvar,
    /// Requests in submission order the collector still has to stream.
    pending_stream: Mutex<VecDeque<Arc<RequestState>>>,
}

/// The long-running mission service (see the module docs for the
/// request/shard/stream contract and the determinism guarantee).
pub struct MissionService {
    shared: Arc<ServiceShared>,
    bus: MessageBus,
    workers: Vec<JoinHandle<()>>,
    collector: Option<JoinHandle<()>>,
    requests: Mutex<HashMap<RequestId, Arc<RequestState>>>,
    next_request: Mutex<u64>,
    next_shard: Mutex<usize>,
}

impl std::fmt::Debug for MissionService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MissionService")
            .field("shards", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl MissionService {
    /// Starts the service: spawns the shard workers and the stream
    /// collector. The service owns a free-transport [`MessageBus`];
    /// subscribe to [`ROW_TOPIC`] (e.g. via
    /// [`MissionService::subscribe_rows`]) before submitting to observe
    /// the stream.
    pub fn start(config: ServiceConfig) -> Self {
        let shards = config.shards.max(1);
        let shared = Arc::new(ServiceShared {
            queues: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            available: (0..shards).map(|_| Condvar::new()).collect(),
            completions: Mutex::new(VecDeque::new()),
            completions_ready: Condvar::new(),
            pending_stream: Mutex::new(VecDeque::new()),
        });
        let bus = MessageBus::with_free_transport();
        let workers = (0..shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || shard_loop(&shared, shard))
            })
            .collect();
        let collector = {
            let shared = Arc::clone(&shared);
            let node = Node::new(&bus, "mission_service").expect("service node");
            let publisher = node.publisher::<RowMessage>(ROW_TOPIC).expect("row topic");
            Some(std::thread::spawn(move || {
                collector_loop(&shared, &publisher)
            }))
        };
        MissionService {
            shared,
            bus,
            workers,
            collector,
            requests: Mutex::new(HashMap::new()),
            next_request: Mutex::new(0),
            next_shard: Mutex::new(0),
        }
    }

    /// The service's bus (for graph introspection or extra topics).
    pub fn bus(&self) -> &MessageBus {
        &self.bus
    }

    /// A subscription to the finished-row stream. Subscribe before
    /// submitting — the reliable queue holds up to `depth` rows.
    pub fn subscribe_rows(&self, depth: usize) -> Subscription<RowMessage> {
        let node = Node::new(&self.bus, "row_listener").expect("listener node");
        node.subscribe::<RowMessage>(ROW_TOPIC, QosProfile::reliable(depth))
            .expect("row subscription")
    }

    /// Submits a sweep request. The configuration is validated up front:
    /// a non-finite knob or an empty difficulty list is rejected here,
    /// before any worker sees it.
    pub fn submit(&self, config: SweepConfig) -> Result<RequestId, SweepError> {
        config.validate()?;
        let id = {
            let mut next = self.next_request.lock().expect("request counter poisoned");
            let id = RequestId(*next);
            *next += 1;
            id
        };
        let state = Arc::new(RequestState {
            id,
            rows: Mutex::new(RequestRows {
                values: vec![None; config.difficulties.len()],
                completed: 0,
                failure: None,
            }),
            done: Condvar::new(),
            config,
        });
        self.requests
            .lock()
            .expect("request map poisoned")
            .insert(id, Arc::clone(&state));
        self.shared
            .pending_stream
            .lock()
            .expect("stream queue poisoned")
            .push_back(Arc::clone(&state));
        // Round-robin the rows across the shard inboxes in row order —
        // assignment is deterministic, though row values never depend on
        // it.
        let mut shard = self.next_shard.lock().expect("shard cursor poisoned");
        for row in 0..state.total() {
            let target = *shard % self.shared.queues.len();
            *shard = (*shard + 1) % self.shared.queues.len();
            self.shared.queues[target]
                .lock()
                .expect("shard queue poisoned")
                .push_back(Some(WorkItem {
                    request: Arc::clone(&state),
                    row,
                }));
            self.shared.available[target].notify_one();
        }
        Ok(id)
    }

    /// Blocks until every row of `request` is finished and returns them
    /// in row order. Submitting and collecting interleave freely; each
    /// request can be collected once.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown (or already collected), or — resuming
    /// the shard's captured failure — if a row of this request panicked,
    /// with the failing row index attached.
    pub fn collect(&self, request: RequestId) -> SweepResults {
        let state = self
            .requests
            .lock()
            .expect("request map poisoned")
            .remove(&request)
            .unwrap_or_else(|| panic!("unknown or already collected request {request:?}"));
        let mut rows = state.rows.lock().expect("request rows poisoned");
        while rows.completed < state.total() && rows.failure.is_none() {
            rows = state.done.wait(rows).expect("request rows poisoned");
        }
        if let Some((index, message)) = rows.failure.take() {
            panic!("sweep row {index} panicked: {message}");
        }
        let values = std::mem::take(&mut rows.values);
        SweepResults::from_rows(
            values
                .into_iter()
                .map(|row| row.expect("every row was completed"))
                .collect(),
        )
    }

    /// Stops the shards and the collector and waits for them. Queued
    /// work that has not started is dropped; call
    /// [`MissionService::collect`] for every submitted request *before*
    /// shutting down.
    pub fn shutdown(mut self) {
        for (queue, available) in self.shared.queues.iter().zip(&self.shared.available) {
            queue.lock().expect("shard queue poisoned").push_back(None);
            available.notify_one();
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("shard worker panicked");
        }
        self.shared
            .completions
            .lock()
            .expect("completion queue poisoned")
            .push_back(None);
        self.shared.completions_ready.notify_one();
        if let Some(collector) = self.collector.take() {
            collector.join().expect("collector panicked");
        }
        self.bus.shutdown();
    }
}

/// One shard: pop a work item, compute its row (capturing panics), post
/// the completion, repeat until the shutdown sentinel.
fn shard_loop(shared: &ServiceShared, shard: usize) {
    // Every event this shard emits (row spans and the mission spans the
    // rows produce) lands on its own deterministic track.
    roborun_trace::collector::set_track(
        roborun_trace::SHARD_TRACK_BASE + u32::try_from(shard).unwrap_or(u32::MAX - 1),
    );
    loop {
        let item = {
            let mut queue = shared.queues[shard].lock().expect("shard queue poisoned");
            loop {
                match queue.pop_front() {
                    Some(item) => break item,
                    None => {
                        queue = shared.available[shard]
                            .wait(queue)
                            .expect("shard queue poisoned");
                    }
                }
            }
        };
        let Some(WorkItem { request, row }) = item else {
            return;
        };
        let row_timer = roborun_trace::timer();
        let outcome = match catch_unwind(AssertUnwindSafe(|| run_sweep_row(&request.config, row))) {
            Ok(value) => {
                if roborun_trace::armed() {
                    // The row span covers the two missions' combined sim
                    // time; the wall duration is the shard's real cost.
                    roborun_trace::collector::complete(
                        roborun_trace::SpanKind::ShardRow,
                        0.0,
                        value.oblivious.mission_time + value.aware.mission_time,
                        roborun_trace::timer_ns(&row_timer),
                        &[("shard", shard as f64), ("row", row as f64)],
                    );
                    roborun_trace::collector::flush();
                }
                RowOutcome::Done(Box::new(value))
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                RowOutcome::Panicked(message)
            }
        };
        // Record against the request first (collect() may be waiting),
        // then hand the completion to the collector for streaming.
        {
            let mut rows = request.rows.lock().expect("request rows poisoned");
            match &outcome {
                RowOutcome::Done(value) => {
                    rows.values[row] = Some(**value);
                    rows.completed += 1;
                }
                RowOutcome::Panicked(message) => {
                    if rows.failure.is_none() {
                        rows.failure = Some((row, message.clone()));
                    }
                }
            }
            request.done.notify_all();
        }
        shared
            .completions
            .lock()
            .expect("completion queue poisoned")
            .push_back(Some(Completion {
                request: request.id,
                row,
                outcome,
            }));
        shared.completions_ready.notify_one();
    }
}

/// The collector: receive completions in whatever order the shards
/// finish, publish them on the bus strictly in (request order, row
/// order) through a reorder buffer.
fn collector_loop(shared: &ServiceShared, publisher: &Publisher<RowMessage>) {
    let mut buffer: HashMap<(RequestId, usize), SweepRow> = HashMap::new();
    // Cursor into the front pending request's rows.
    let mut front: Option<(Arc<RequestState>, usize)> = None;
    loop {
        let completion = {
            let mut queue = shared
                .completions
                .lock()
                .expect("completion queue poisoned");
            loop {
                match queue.pop_front() {
                    Some(completion) => break completion,
                    None => {
                        queue = shared
                            .completions_ready
                            .wait(queue)
                            .expect("completion queue poisoned");
                    }
                }
            }
        };
        let Some(completion) = completion else {
            return;
        };
        match completion.outcome {
            RowOutcome::Done(value) => {
                buffer.insert((completion.request, completion.row), *value);
            }
            // A panicked row never streams; its request's remaining rows
            // may still arrive and stream up to the gap.
            RowOutcome::Panicked(_) => continue,
        }
        // Drain everything now in order.
        loop {
            if front.is_none() {
                front = shared
                    .pending_stream
                    .lock()
                    .expect("stream queue poisoned")
                    .pop_front()
                    .map(|state| (state, 0));
            }
            let Some((state, next_row)) = front.as_mut() else {
                break;
            };
            if *next_row >= state.total() {
                front = None;
                continue;
            }
            let Some(value) = buffer.remove(&(state.id, *next_row)) else {
                break;
            };
            publisher
                .publish(RowMessage {
                    request: state.id,
                    row: *next_row,
                    value,
                })
                .expect("row stream publish");
            *next_row += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_sweep_serial;

    fn tiny_request(seed: u64) -> SweepConfig {
        let mut config = SweepConfig::quick(seed);
        config.difficulties.truncate(2);
        config.aware.max_decisions = 400;
        config.oblivious.max_decisions = 1_000;
        config
    }

    #[test]
    fn service_rows_match_the_batch_sweep_and_stream_in_order() {
        let service = MissionService::start(ServiceConfig { shards: 3 });
        let stream = service.subscribe_rows(64);
        let config = tiny_request(31);
        let id = service.submit(config.clone()).expect("valid request");
        let results = service.collect(id);
        let reference = run_sweep_serial(&config);
        assert_eq!(results.rows(), reference.rows());
        service.shutdown();
        let streamed: Vec<RowMessage> =
            stream.drain().into_iter().map(|s| s.into_inner()).collect();
        assert_eq!(streamed.len(), reference.rows().len());
        for (i, message) in streamed.iter().enumerate() {
            assert_eq!(message.request, id);
            assert_eq!(message.row, i);
            assert_eq!(message.value, reference.rows()[i]);
        }
    }

    #[test]
    fn invalid_requests_are_rejected_at_submission() {
        let service = MissionService::start(ServiceConfig { shards: 1 });
        let mut config = tiny_request(1);
        config.difficulties[0].obstacle_density = f64::NAN;
        let err = service
            .submit(config)
            .expect_err("NaN knob must be rejected");
        assert!(matches!(err, SweepError::NonFiniteKnob { index: 0, .. }));
        service.shutdown();
    }
}
