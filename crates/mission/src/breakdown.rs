//! Latency-breakdown analysis over zones (paper Fig. 11).

use roborun_core::MissionTelemetry;
use serde::{Deserialize, Serialize};

/// Latency statistics of one zone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneStats {
    /// Zone label (`'A'`, `'B'`, `'C'`).
    pub zone: char,
    /// Number of decisions taken inside the zone.
    pub decisions: usize,
    /// Mean end-to-end latency in the zone (seconds).
    pub mean_latency: f64,
    /// Latency spread (max − min) in the zone (seconds) — the paper's
    /// heterogeneity indicator.
    pub latency_spread: f64,
    /// Mean commanded velocity in the zone (m/s).
    pub mean_velocity: f64,
    /// Mean point-cloud precision knob value in the zone (metres).
    pub mean_precision: f64,
}

/// Per-zone breakdown of a mission's telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneBreakdown {
    /// Statistics for each zone that has at least one decision, in A/B/C
    /// order.
    pub zones: Vec<ZoneStats>,
    /// Mission-wide mean share of the end-to-end latency per stage
    /// (Fig. 11b).
    pub stage_shares: Vec<(String, f64)>,
}

impl ZoneBreakdown {
    /// Computes the breakdown from a mission's telemetry.
    pub fn from_telemetry(telemetry: &MissionTelemetry) -> Self {
        let mut zones = Vec::new();
        for zone in ['A', 'B', 'C'] {
            let records = telemetry.records_in_zone(zone);
            if records.is_empty() {
                continue;
            }
            let n = records.len() as f64;
            let mean_latency = records.iter().map(|r| r.latency()).sum::<f64>() / n;
            let mean_velocity = records.iter().map(|r| r.commanded_velocity).sum::<f64>() / n;
            let mean_precision = records
                .iter()
                .map(|r| r.knobs.point_cloud_precision)
                .sum::<f64>()
                / n;
            zones.push(ZoneStats {
                zone,
                decisions: records.len(),
                mean_latency,
                latency_spread: telemetry.latency_spread_in_zone(zone),
                mean_velocity,
                mean_precision,
            });
        }
        let stage_shares = telemetry
            .mean_breakdown_shares()
            .into_iter()
            .map(|(name, share)| (name.to_string(), share))
            .collect();
        ZoneBreakdown {
            zones,
            stage_shares,
        }
    }

    /// Statistics of a specific zone, if it was visited.
    pub fn zone(&self, label: char) -> Option<&ZoneStats> {
        self.zones.iter().find(|z| z.zone == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_core::{DecisionRecord, Degradation, KnobSettings, RuntimeMode};
    use roborun_geom::Vec3;
    use roborun_sim::LatencyBreakdown;

    fn record(zone: char, latency: f64, velocity: f64, precision: f64) -> DecisionRecord {
        DecisionRecord {
            time: 0.0,
            position: Vec3::ZERO,
            commanded_velocity: velocity,
            visibility: 20.0,
            deadline: 5.0,
            knobs: KnobSettings {
                point_cloud_precision: precision,
                ..KnobSettings::static_baseline()
            },
            breakdown: LatencyBreakdown {
                point_cloud: 0.21,
                perception: latency,
                planning: latency * 0.5,
                communication: 0.1,
                ..LatencyBreakdown::default()
            },
            cpu_utilization: 0.5,
            zone: Some(zone),
            masked_latency: 0.0,
            degradation: Degradation::Healthy,
        }
    }

    #[test]
    fn breakdown_reflects_zone_structure() {
        let mut telemetry = MissionTelemetry::new(RuntimeMode::SpatialAware);
        // Zone A: slow, precise, heterogeneous latency.
        telemetry.push(record('A', 2.0, 0.8, 0.3));
        telemetry.push(record('A', 0.5, 1.2, 0.6));
        // Zone B: fast, coarse, uniform latency.
        telemetry.push(record('B', 0.2, 4.5, 9.6));
        telemetry.push(record('B', 0.2, 4.5, 9.6));
        let breakdown = ZoneBreakdown::from_telemetry(&telemetry);
        assert_eq!(breakdown.zones.len(), 2);
        let a = breakdown.zone('A').unwrap();
        let b = breakdown.zone('B').unwrap();
        assert!(breakdown.zone('C').is_none());
        assert_eq!(a.decisions, 2);
        assert!(a.mean_latency > b.mean_latency);
        assert!(a.latency_spread > b.latency_spread);
        assert!(b.mean_velocity > a.mean_velocity);
        assert!(b.mean_precision > a.mean_precision);
        // Stage shares are normalised.
        let total: f64 = breakdown.stage_shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_telemetry_has_no_zones() {
        let telemetry = MissionTelemetry::new(RuntimeMode::SpatialAware);
        let breakdown = ZoneBreakdown::from_telemetry(&telemetry);
        assert!(breakdown.zones.is_empty());
        assert!(breakdown.stage_shares.is_empty());
    }
}
