//! Mission-level metrics (the paper's Fig. 7 quantities).

use roborun_core::RuntimeMode;
use roborun_geom::RunningStats;
use serde::{Deserialize, Serialize};

/// Metrics of a single mission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissionMetrics {
    /// Runtime mode the mission ran with.
    pub mode: RuntimeMode,
    /// Total mission (flight) time in seconds.
    pub mission_time: f64,
    /// Total flight energy in kilojoules.
    pub energy_kj: f64,
    /// Average flight velocity (distance travelled / mission time), m/s.
    pub mean_velocity: f64,
    /// Mean CPU utilisation per decision, `[0, 1]`.
    pub mean_cpu_utilization: f64,
    /// Median end-to-end decision latency (seconds).
    pub median_latency: f64,
    /// 95th-percentile end-to-end decision latency (seconds), from the
    /// shared fixed-bucket log-scale histogram
    /// ([`roborun_geom::LogHistogram`]) — bucketed, unlike the exact
    /// median above.
    pub p95_latency: f64,
    /// 99th-percentile end-to-end decision latency (seconds), from the
    /// same shared histogram.
    pub p99_latency: f64,
    /// Exact worst-case end-to-end decision latency (seconds).
    pub max_latency: f64,
    /// Number of navigation decisions taken.
    pub decisions: usize,
    /// Distance travelled (metres).
    pub distance_travelled: f64,
    /// `true` when the MAV reached the goal.
    pub reached_goal: bool,
    /// `true` when the MAV collided with an obstacle.
    pub collided: bool,
    /// Total planning latency masked from the critical path by plan-ahead
    /// overlap (seconds). Zero when plan-ahead is disabled.
    pub masked_planning_latency: f64,
    /// Speculative plans launched by the plan-ahead worker.
    pub plan_ahead_attempts: usize,
    /// Speculative plans adopted (including goal-drift patches) instead
    /// of a synchronous replan.
    pub plan_ahead_hits: usize,
    /// Decisions on which a moving obstacle's predicted occupancy
    /// crossed the followed trajectory and forced a replan. Zero in
    /// static worlds.
    pub dynamic_replans: usize,
    /// Arrived plan-ahead speculations discarded because a moving
    /// obstacle's predicted occupancy crossed the speculative
    /// trajectory. Zero in static worlds or with plan-ahead off.
    pub predicted_invalidations: usize,
    /// Fault-channel activations injected by the armed
    /// [`FaultPlan`](roborun_faults::FaultPlan) over the mission (one per
    /// active channel per decision, plus bus fault events on the node
    /// pipeline). Zero on healthy missions.
    pub faults_injected: usize,
    /// Decisions on which the planning watchdog fired (the modelled
    /// planning latency exceeded the watchdog budget).
    pub watchdog_fires: usize,
    /// Total bounded planning retries attempted after watchdog aborts.
    pub retries: usize,
    /// Decisions recorded with a non-`Healthy`
    /// [`Degradation`](roborun_core::Degradation) state.
    pub degraded_decisions: usize,
    /// 1 when the mission ended in a deliberate wedge-retreat safe-stop
    /// (the bottom of the degradation ladder), else 0.
    pub safe_stops: usize,
    /// Synchronous replans that reused (rebased) the previous decision's
    /// RRT* tree instead of cold-starting (requires `planner_reuse`).
    pub warm_replans: usize,
    /// Total tree nodes carried across decisions by warm-started replans.
    pub planner_nodes_retained: usize,
    /// Total tree nodes discarded during warm-start rebase (invalidated by
    /// map deltas, hazards, or unreachable from the new root).
    pub planner_nodes_pruned: usize,
}

impl MissionMetrics {
    /// `true` when the mission both reached the goal and stayed collision
    /// free (the paper requires ≥80% of flights to be collision free).
    pub fn successful(&self) -> bool {
        self.reached_goal && !self.collided
    }

    /// Fraction of launched speculations that survived the incremental
    /// re-check and were adopted, or `None` when plan-ahead never
    /// speculated (disabled, or no replan was ever predictable).
    pub fn plan_ahead_hit_rate(&self) -> Option<f64> {
        (self.plan_ahead_attempts > 0)
            .then(|| self.plan_ahead_hits as f64 / self.plan_ahead_attempts as f64)
    }
}

/// Aggregate of many missions of the same mode (e.g. the 27 environments).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AggregateMetrics {
    /// Runtime mode aggregated over.
    pub mode: Option<RuntimeMode>,
    mission_time: RunningStats,
    energy_kj: RunningStats,
    velocity: RunningStats,
    cpu: RunningStats,
    median_latency: RunningStats,
    p95_latency: RunningStats,
    p99_latency: RunningStats,
    max_latency: RunningStats,
    masked_latency: RunningStats,
    successes: usize,
    total: usize,
}

impl AggregateMetrics {
    /// Creates an empty aggregate for a mode.
    pub fn new(mode: RuntimeMode) -> Self {
        AggregateMetrics {
            mode: Some(mode),
            ..AggregateMetrics::default()
        }
    }

    /// Adds one mission's metrics.
    pub fn push(&mut self, m: &MissionMetrics) {
        self.mission_time.push(m.mission_time);
        self.energy_kj.push(m.energy_kj);
        self.velocity.push(m.mean_velocity);
        self.cpu.push(m.mean_cpu_utilization);
        self.median_latency.push(m.median_latency);
        self.p95_latency.push(m.p95_latency);
        self.p99_latency.push(m.p99_latency);
        self.max_latency.push(m.max_latency);
        self.masked_latency.push(m.masked_planning_latency);
        if m.successful() {
            self.successes += 1;
        }
        self.total += 1;
    }

    /// Number of missions aggregated.
    pub fn count(&self) -> usize {
        self.total
    }

    /// Mean mission time (seconds).
    pub fn mean_mission_time(&self) -> f64 {
        self.mission_time.mean()
    }

    /// Mean flight energy (kJ).
    pub fn mean_energy_kj(&self) -> f64 {
        self.energy_kj.mean()
    }

    /// Mean of the per-mission average velocities (m/s).
    pub fn mean_velocity(&self) -> f64 {
        self.velocity.mean()
    }

    /// Mean CPU utilisation.
    pub fn mean_cpu_utilization(&self) -> f64 {
        self.cpu.mean()
    }

    /// Mean of the per-mission median latencies (seconds).
    pub fn mean_median_latency(&self) -> f64 {
        self.median_latency.mean()
    }

    /// Mean of the per-mission p95 latencies (seconds).
    pub fn mean_p95_latency(&self) -> f64 {
        self.p95_latency.mean()
    }

    /// Mean of the per-mission p99 latencies (seconds).
    pub fn mean_p99_latency(&self) -> f64 {
        self.p99_latency.mean()
    }

    /// Mean of the per-mission worst-case latencies (seconds).
    pub fn mean_max_latency(&self) -> f64 {
        self.max_latency.mean()
    }

    /// Mean of the per-mission masked planning latencies (seconds; zero
    /// across the board when plan-ahead was disabled).
    pub fn mean_masked_latency(&self) -> f64 {
        self.masked_latency.mean()
    }

    /// Fraction of missions that reached the goal without colliding.
    pub fn success_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.successes as f64 / self.total as f64
        }
    }
}

/// Improvement factors of RoboRun over the baseline (the Fig. 7 headline
/// numbers: 5X velocity, 4.5X mission time, 4X energy, 36% CPU reduction).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImprovementFactors {
    /// Baseline velocity divided into RoboRun velocity (higher is better).
    pub velocity_gain: f64,
    /// Baseline mission time divided by RoboRun mission time.
    pub mission_time_gain: f64,
    /// Baseline energy divided by RoboRun energy.
    pub energy_gain: f64,
    /// Relative CPU-utilisation reduction `(baseline − roborun) / baseline`.
    pub cpu_reduction: f64,
}

impl ImprovementFactors {
    /// Computes the improvement factors from two aggregates.
    pub fn from_aggregates(baseline: &AggregateMetrics, roborun: &AggregateMetrics) -> Self {
        let safe_div = |a: f64, b: f64| if b.abs() < 1e-12 { 0.0 } else { a / b };
        ImprovementFactors {
            velocity_gain: safe_div(roborun.mean_velocity(), baseline.mean_velocity()),
            mission_time_gain: safe_div(baseline.mean_mission_time(), roborun.mean_mission_time()),
            energy_gain: safe_div(baseline.mean_energy_kj(), roborun.mean_energy_kj()),
            cpu_reduction: safe_div(
                baseline.mean_cpu_utilization() - roborun.mean_cpu_utilization(),
                baseline.mean_cpu_utilization(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(mode: RuntimeMode, time: f64, velocity: f64, cpu: f64) -> MissionMetrics {
        MissionMetrics {
            mode,
            mission_time: time,
            energy_kj: time * 0.48,
            mean_velocity: velocity,
            mean_cpu_utilization: cpu,
            median_latency: 1.0,
            p95_latency: 1.4,
            p99_latency: 1.8,
            max_latency: 2.0,
            decisions: 100,
            distance_travelled: time * velocity,
            reached_goal: true,
            collided: false,
            masked_planning_latency: 0.0,
            plan_ahead_attempts: 0,
            plan_ahead_hits: 0,
            dynamic_replans: 0,
            predicted_invalidations: 0,
            faults_injected: 0,
            watchdog_fires: 0,
            retries: 0,
            degraded_decisions: 0,
            safe_stops: 0,
            warm_replans: 0,
            planner_nodes_retained: 0,
            planner_nodes_pruned: 0,
        }
    }

    #[test]
    fn success_flag() {
        let good = metrics(RuntimeMode::SpatialAware, 400.0, 2.5, 0.5);
        assert!(good.successful());
        let crashed = MissionMetrics {
            collided: true,
            ..good
        };
        assert!(!crashed.successful());
        let lost = MissionMetrics {
            reached_goal: false,
            ..good
        };
        assert!(!lost.successful());
    }

    #[test]
    fn aggregate_means() {
        let mut agg = AggregateMetrics::new(RuntimeMode::SpatialAware);
        assert_eq!(agg.count(), 0);
        assert_eq!(agg.success_rate(), 0.0);
        agg.push(&metrics(RuntimeMode::SpatialAware, 400.0, 2.0, 0.5));
        agg.push(&metrics(RuntimeMode::SpatialAware, 600.0, 3.0, 0.7));
        assert_eq!(agg.count(), 2);
        assert!((agg.mean_mission_time() - 500.0).abs() < 1e-9);
        assert!((agg.mean_velocity() - 2.5).abs() < 1e-9);
        assert!((agg.mean_cpu_utilization() - 0.6).abs() < 1e-9);
        assert!((agg.success_rate() - 1.0).abs() < 1e-12);
        assert!(agg.mean_energy_kj() > 0.0);
        assert!((agg.mean_median_latency() - 1.0).abs() < 1e-12);
        assert!((agg.mean_p95_latency() - 1.4).abs() < 1e-12);
        assert!((agg.mean_p99_latency() - 1.8).abs() < 1e-12);
        assert!((agg.mean_max_latency() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn plan_ahead_hit_rate_reporting() {
        let base = metrics(RuntimeMode::SpatialAware, 400.0, 2.5, 0.5);
        assert_eq!(base.plan_ahead_hit_rate(), None);
        let overlapped = MissionMetrics {
            masked_planning_latency: 12.5,
            plan_ahead_attempts: 40,
            plan_ahead_hits: 30,
            ..base
        };
        assert!((overlapped.plan_ahead_hit_rate().unwrap() - 0.75).abs() < 1e-12);
        let mut agg = AggregateMetrics::new(RuntimeMode::SpatialAware);
        agg.push(&base);
        agg.push(&overlapped);
        assert!((agg.mean_masked_latency() - 6.25).abs() < 1e-12);
    }

    #[test]
    fn improvement_factors_reproduce_paper_directions() {
        let mut baseline = AggregateMetrics::new(RuntimeMode::SpatialOblivious);
        let mut roborun = AggregateMetrics::new(RuntimeMode::SpatialAware);
        // Paper-scale numbers: 2093 s vs 465 s, 0.4 vs 2.5 m/s, CPU −36%.
        baseline.push(&metrics(RuntimeMode::SpatialOblivious, 2093.0, 0.4, 0.85));
        roborun.push(&metrics(RuntimeMode::SpatialAware, 465.0, 2.5, 0.55));
        let f = ImprovementFactors::from_aggregates(&baseline, &roborun);
        assert!(f.velocity_gain > 4.0);
        assert!(f.mission_time_gain > 3.5);
        assert!(f.energy_gain > 3.5);
        assert!(f.cpu_reduction > 0.2);
    }

    #[test]
    fn improvement_factors_handle_zero_baseline() {
        let baseline = AggregateMetrics::new(RuntimeMode::SpatialOblivious);
        let roborun = AggregateMetrics::new(RuntimeMode::SpatialAware);
        let f = ImprovementFactors::from_aggregates(&baseline, &roborun);
        assert_eq!(f.velocity_gain, 0.0);
        assert_eq!(f.mission_time_gain, 0.0);
    }
}
