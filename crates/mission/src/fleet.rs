//! Fleet missions: K drones flying one shared world, each treating the
//! others' committed trajectories as hazards.
//!
//! The coordinator runs one [`DecisionCycle`](crate::cycle) per drone in
//! **event-driven lockstep**: every iteration, the open cycle with the
//! smallest simulation clock takes the next decision (ties break on the
//! lowest drone index), so no drone ever decides against a peer
//! trajectory that is staler than one decision. After each decision the
//! decider's committed polyline — its current position plus the
//! remaining points of its active trajectory — is re-published into
//! every other drone's [`PeerTrajectoryHazard`](roborun_planning::PeerTrajectoryHazard)
//! (a no-op when bitwise
//! unchanged, mirroring `PredictedHazards::retarget`). Peer corridors
//! then ride the predicted-hazard path through the whole decision:
//! blockage detection, the composed planning context, the in-danger
//! escape trigger and the speculation gate all see them as soft boxes.
//!
//! # Determinism
//!
//! The whole fleet run is a pure function of `(config, environment)`:
//! drone `i` plans with seed `base.seed + i`, the lockstep order is
//! decided by `f64::total_cmp` on the cycles' clocks with an index
//! tie-break, and peer publication happens at a fixed point of every
//! iteration. Re-running the same fleet twice produces bit-identical
//! [`FleetResult`]s, including every flown position.
//!
//! # Shared static world (cross-mission caching)
//!
//! All K missions fly the same obstacle field, so the fleet builds the
//! ground-truth survey checker **once** ([`SharedStaticWorld`]) and hands
//! each per-drone audit an `O(1)` clone: the broad-phase lives behind an
//! `Arc` inside [`CollisionChecker`], shared between clones until one of
//! them patches its map (copy-on-write). The `kernel_scaling` bench
//! measures the amortized build cost; the per-drone perception maps stay
//! private — sharing observed maps across drones would change what each
//! drone has *sensed*, which is the paper's variable under test.

use crate::cycle::DecisionCycle;
use crate::runner::{MissionConfig, MissionResult};
use roborun_env::Environment;
use roborun_geom::Vec3;
use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
use roborun_planning::CollisionChecker;

/// Configuration of one fleet mission.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-drone mission configuration template. Drone `i` flies with
    /// seed `base.seed + i`; everything else is shared. Any
    /// [`MissionConfig::peer_trajectories`] entries in the template are
    /// ignored — the coordinator publishes live peer trajectories
    /// instead.
    pub base: MissionConfig,
    /// Number of drones (`K >= 1`).
    pub drones: usize,
    /// Lateral (y-axis) spacing between adjacent drones' start and goal
    /// points (metres). The formation is centred on the environment's
    /// own endpoints, so with an odd `K` the middle drone flies the
    /// original corridor.
    pub lateral_spacing: f64,
}

impl FleetConfig {
    /// A fleet of `drones` drones over the given per-drone template,
    /// with a default 10 m lateral spacing.
    pub fn new(base: MissionConfig, drones: usize) -> Self {
        FleetConfig {
            base,
            drones,
            lateral_spacing: 10.0,
        }
    }
}

/// Outcome of one fleet mission.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Per-drone mission results, in drone-index order.
    pub missions: Vec<MissionResult>,
    /// The minimum distance between any two drones over the whole fleet
    /// run (metres), sampled by interpolating every drone's flown path
    /// on a common time grid (finished drones park at their final
    /// position). `f64::INFINITY` for a single-drone fleet.
    pub min_separation: f64,
    /// Peer-trajectory publications that actually changed a peer's view
    /// (bitwise-identical re-publications are skipped at the source).
    pub peer_updates: usize,
    /// Total decisions taken across the fleet.
    pub decisions: usize,
}

impl FleetResult {
    /// `true` when every drone reached its goal without colliding.
    pub fn all_reached_goal(&self) -> bool {
        self.missions
            .iter()
            .all(|m| m.metrics.reached_goal && !m.metrics.collided)
    }
}

/// The fleet's shared ground-truth survey of a static environment: one
/// [`CollisionChecker`] built from a dense surface scan of every
/// obstacle, with its broad-phase prebuilt. [`SharedStaticWorld::checker`]
/// clones are `O(1)` — the broad-phase is `Arc`-shared until a clone
/// patches its map — so N missions (or N audits) in one environment pay
/// one build instead of N.
#[derive(Debug, Clone)]
pub struct SharedStaticWorld {
    checker: CollisionChecker,
}

impl SharedStaticWorld {
    /// Surveys the environment at the given voxel resolution: every
    /// obstacle's surface is sampled on a `resolution`-spaced grid and
    /// integrated into a ground-truth planner map (deterministic — no
    /// sensing noise), and the resulting checker's broad-phase is built
    /// eagerly so clones never pay for it.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not a positive finite number.
    pub fn survey(env: &Environment, resolution: f64, margin: f64) -> Self {
        assert!(
            resolution.is_finite() && resolution > 0.0,
            "survey resolution must be positive and finite"
        );
        let mut map = OccupancyMap::new(resolution);
        for obstacle in env.obstacles() {
            let b = obstacle.bounds;
            // Short rays from just above the top face keep the free-space
            // carve cheap; the accrete-only map never un-marks occupied
            // surface voxels anyway.
            let origin = Vec3::new(b.center().x, b.center().y, b.max.z + resolution);
            let points = sample_surface(b.min, b.max, resolution);
            map.integrate_cloud(&PointCloud::new(origin, points), resolution);
        }
        let export = PlannerMap::export(&map, &ExportConfig::new(resolution, 1e12, env.start()));
        let mut checker = CollisionChecker::new(export, margin, resolution);
        checker.prebuild_broad_phase();
        SharedStaticWorld { checker }
    }

    /// An `O(1)` clone of the prebuilt survey checker: the broad-phase is
    /// shared with every other clone until this one patches its map.
    pub fn checker(&self) -> CollisionChecker {
        self.checker.clone()
    }

    /// `true` when `other` still shares this survey's broad-phase
    /// storage (i.e. it has not been detached by a map patch).
    pub fn shares_broad_phase_with(&self, other: &CollisionChecker) -> bool {
        self.checker.shares_broad_phase_with(other)
    }
}

/// Surface samples of the box `[min, max]` on a `step`-spaced grid:
/// every face, edges and corners included, deduplicated by construction
/// (each face samples its own interior plus the boundary rows it owns).
fn sample_surface(min: Vec3, max: Vec3, step: f64) -> Vec<Vec3> {
    let mut points = Vec::new();
    let xs = axis_samples(min.x, max.x, step);
    let ys = axis_samples(min.y, max.y, step);
    let zs = axis_samples(min.z, max.z, step);
    for &x in &xs {
        for &y in &ys {
            points.push(Vec3::new(x, y, min.z));
            if max.z > min.z {
                points.push(Vec3::new(x, y, max.z));
            }
        }
    }
    // Interior z rows only: the top/bottom faces already cover the ends.
    let z_interior: Vec<f64> = zs
        .iter()
        .copied()
        .filter(|&z| z > min.z && z < max.z)
        .collect();
    for &z in &z_interior {
        for &y in &ys {
            points.push(Vec3::new(min.x, y, z));
            if max.x > min.x {
                points.push(Vec3::new(max.x, y, z));
            }
        }
        for &x in xs.iter().filter(|&&x| x > min.x && x < max.x) {
            points.push(Vec3::new(x, min.y, z));
            if max.y > min.y {
                points.push(Vec3::new(x, max.y, z));
            }
        }
    }
    points
}

/// `lo..=hi` sampled every `step` metres, endpoint always included.
fn axis_samples(lo: f64, hi: f64, step: f64) -> Vec<f64> {
    let span = (hi - lo).max(0.0);
    let n = (span / step).ceil().max(1.0) as usize;
    let mut out: Vec<f64> = (0..n).map(|i| lo + i as f64 * step).collect();
    out.push(hi);
    out
}

/// Runs a fleet mission: `config.drones` drones in the environment's
/// world, laterally offset endpoints, live peer-trajectory exchange (see
/// the module docs for the lockstep and determinism contracts).
///
/// A single-drone fleet takes the exact single-drone code path — no
/// peers are ever published — and its one mission is bit-identical to
/// [`crate::MissionRunner::run`] with the same configuration.
///
/// # Panics
///
/// Panics if `drones == 0` or `lateral_spacing` is not a positive finite
/// number.
pub fn run_fleet(config: &FleetConfig, env: &Environment) -> FleetResult {
    assert!(config.drones >= 1, "a fleet needs at least one drone");
    assert!(
        config.lateral_spacing.is_finite() && config.lateral_spacing > 0.0,
        "lateral spacing must be positive and finite"
    );
    let k = config.drones;

    // Per-drone worlds: the same obstacle field, endpoints offset
    // laterally so the formation is centred on the original corridor. A
    // zero offset keeps the environment bitwise untouched (the odd-K
    // middle drone, and the whole single-drone fleet).
    let envs: Vec<Environment> = (0..k)
        .map(|i| {
            let offset = (i as f64 - (k as f64 - 1.0) / 2.0) * config.lateral_spacing;
            if offset == 0.0 {
                env.clone()
            } else {
                let shift = Vec3::new(0.0, offset, 0.0);
                env.with_endpoints(env.start() + shift, env.goal() + shift)
            }
        })
        .collect();
    let cfgs: Vec<MissionConfig> = (0..k)
        .map(|i| MissionConfig {
            seed: config.base.seed.wrapping_add(i as u64),
            // The coordinator owns peer exchange; template entries would
            // collide with the live peer ids.
            peer_trajectories: Vec::new(),
            ..config.base.clone()
        })
        .collect();

    let mut cycles: Vec<DecisionCycle> = (0..k)
        .map(|i| DecisionCycle::new(&cfgs[i], &envs[i], None))
        .collect();

    // Cached committed polylines, outside the cycles so drone `i`'s
    // update can be pushed into every other cycle without aliasing.
    let mut polylines: Vec<Vec<Vec3>> = (0..k).map(|i| cycles[i].committed_polyline()).collect();
    let mut peer_updates = 0usize;
    if k > 1 {
        // Seed every drone with its peers' starting positions — a parked
        // drone still occupies its hover point.
        for (i, cycle) in cycles.iter_mut().enumerate() {
            for (j, polyline) in polylines.iter().enumerate() {
                if i != j {
                    cycle.set_peer_trajectory(j as u64, polyline);
                    peer_updates += 1;
                }
            }
        }
    }

    // Event-driven lockstep: the open cycle with the smallest clock
    // decides next (ties break on the lowest index).
    let mut decisions = 0usize;
    while let Some(i) = (0..k)
        .filter(|&i| cycles[i].mission_open())
        .min_by(|&a, &b| cycles[a].now().total_cmp(&cycles[b].now()).then(a.cmp(&b)))
    {
        // Each drone traces onto its own track; the turn span brackets
        // the decision on the sim clock so lockstep interleaving is
        // visible in Perfetto. One relaxed load when disarmed.
        let turn_start = if roborun_trace::armed() {
            roborun_trace::collector::set_track(i as u32);
            Some(cycles[i].now())
        } else {
            None
        };
        cycles[i].run_decision(None);
        decisions += 1;
        if let Some(start) = turn_start {
            roborun_trace::collector::complete(
                roborun_trace::SpanKind::FleetTurn,
                start,
                cycles[i].now() - start,
                0,
                &[("drone", i as f64), ("turn", decisions as f64)],
            );
        }
        if k == 1 {
            continue;
        }
        // Re-publish drone i's commitment: the remaining trajectory
        // while the mission is open, the parked final position once it
        // closes (a finished drone no longer flies its old corridor).
        let polyline = if cycles[i].mission_open() {
            cycles[i].committed_polyline()
        } else {
            vec![cycles[i].position()]
        };
        if polyline != polylines[i] {
            polylines[i] = polyline;
            for (j, cycle) in cycles.iter_mut().enumerate() {
                if j != i {
                    cycle.set_peer_trajectory(i as u64, &polylines[i]);
                }
            }
            peer_updates += 1;
        }
    }

    let missions: Vec<MissionResult> = cycles.into_iter().map(DecisionCycle::finish).collect();
    let min_separation = min_pairwise_separation(&missions);
    FleetResult {
        missions,
        min_separation,
        peer_updates,
        decisions,
    }
}

/// The minimum distance between any two drones over the fleet run:
/// every drone's flown path is interpolated on a common 0.25 s time
/// grid (clamped to its own span, so a finished drone parks at its
/// final position), and all pairs are audited at every sample.
fn min_pairwise_separation(missions: &[MissionResult]) -> f64 {
    if missions.len() < 2 {
        return f64::INFINITY;
    }
    let end = missions
        .iter()
        .filter_map(|m| m.flown_times.last().copied())
        .fold(0.0_f64, f64::max);
    let step = 0.25;
    let samples = (end / step).ceil().max(1.0) as usize;
    let mut min_separation = f64::INFINITY;
    for s in 0..=samples {
        let t = (s as f64 * step).min(end);
        for (a, ma) in missions.iter().enumerate() {
            let pa = position_at(&ma.flown_path, &ma.flown_times, t);
            for mb in &missions[a + 1..] {
                let pb = position_at(&mb.flown_path, &mb.flown_times, t);
                let d = pa.distance(pb);
                if d < min_separation {
                    min_separation = d;
                }
            }
        }
    }
    min_separation
}

/// The drone's position at simulation time `t`, linearly interpolated
/// between flown samples and clamped to the path's span.
fn position_at(path: &[Vec3], times: &[f64], t: f64) -> Vec3 {
    debug_assert_eq!(times.len(), path.len());
    if path.is_empty() {
        return Vec3::ZERO;
    }
    if t <= times[0] {
        return path[0];
    }
    if t >= *times.last().expect("non-empty") {
        return *path.last().expect("non-empty");
    }
    // First sample strictly after t (exists: t < last).
    let hi = times.partition_point(|&ti| ti <= t);
    let (t0, t1) = (times[hi - 1], times[hi]);
    let (p0, p1) = (path[hi - 1], path[hi]);
    let span = t1 - t0;
    if span <= 1e-12 {
        return p1;
    }
    let alpha = (t - t0) / span;
    p0 + (p1 - p0) * alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_core::RuntimeMode;
    use roborun_env::{DifficultyConfig, EnvironmentGenerator};

    fn short_environment(seed: u64) -> Environment {
        EnvironmentGenerator::new(DifficultyConfig {
            obstacle_density: 0.35,
            obstacle_spread: 40.0,
            goal_distance: 120.0,
        })
        .generate(seed)
    }

    fn quick_base() -> MissionConfig {
        MissionConfig {
            max_decisions: 600,
            max_mission_time: 1_500.0,
            ..MissionConfig::new(RuntimeMode::SpatialAware)
        }
    }

    #[test]
    fn survey_checker_clones_share_the_broad_phase() {
        let env = short_environment(7);
        let world = SharedStaticWorld::survey(&env, 1.0, 0.6);
        let a = world.checker();
        let b = world.checker();
        assert!(world.shares_broad_phase_with(&a));
        assert!(a.shares_broad_phase_with(&b));
        // The survey sees the obstacles: some segment across the field
        // must be blocked, while the start hover point is free.
        let mut probe = world.checker();
        assert!(probe.point_free(env.start()));
        let blocked = env.obstacles().iter().any(|o| {
            let c = o.bounds.center();
            !probe.point_free(c) || !probe.segment_free(env.start(), c)
        });
        assert!(blocked, "survey checker saw no obstacle at all");
    }

    #[test]
    fn single_drone_fleet_matches_the_mission_runner() {
        let env = short_environment(21);
        let base = quick_base();
        let fleet = run_fleet(&FleetConfig::new(base.clone(), 1), &env);
        let solo = crate::MissionRunner::new(base).run(&env);
        assert_eq!(fleet.missions.len(), 1);
        assert_eq!(fleet.peer_updates, 0);
        assert_eq!(fleet.min_separation, f64::INFINITY);
        let m = &fleet.missions[0];
        assert_eq!(m.flown_path, solo.flown_path);
        assert_eq!(m.flown_times, solo.flown_times);
        assert_eq!(m.metrics.decisions, solo.metrics.decisions);
        assert_eq!(m.metrics.mission_time, solo.metrics.mission_time);
        assert_eq!(m.metrics.energy_kj, solo.metrics.energy_kj);
    }

    #[test]
    fn interpolation_clamps_and_blends() {
        let path = vec![Vec3::new(0.0, 0.0, 5.0), Vec3::new(10.0, 0.0, 5.0)];
        let times = vec![0.0, 10.0];
        assert_eq!(position_at(&path, &times, -1.0), Vec3::new(0.0, 0.0, 5.0));
        assert_eq!(position_at(&path, &times, 5.0), Vec3::new(5.0, 0.0, 5.0));
        assert_eq!(position_at(&path, &times, 99.0), Vec3::new(10.0, 0.0, 5.0));
    }
}
