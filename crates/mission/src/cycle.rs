//! The shared decision-cycle core and the plan-ahead (speculative
//! planning) machinery built on top of it.
//!
//! One navigation decision is the same sequence of stages regardless of
//! the transport that carries it: **sense → profile → govern → operate
//! (perception) → cost → plan → follow**, plus the local-goal and
//! emergency-stop policies around the planning stage. Before this module
//! existed that sequence lived twice — inline in
//! [`crate::MissionRunner::run`] and re-expressed as bus nodes in
//! [`crate::node_pipeline`] — and drifted subtly (two `local_goal`
//! variants, two `first_blockage_distance` copies, two epoch-advance
//! loops). Both drivers are now thin: the direct runner drives a
//! `DecisionCycle` (which owns the whole per-mission state), and the
//! node pipeline's nodes delegate every policy decision to the free
//! functions here, keeping only the topic plumbing to themselves.
//!
//! # Plan-ahead: the snapshot / validation contract
//!
//! With [`crate::MissionConfig::plan_ahead`] enabled, a planner worker
//! thread speculatively plans decision *k + 1* while control executes the
//! epoch of decision *k*, hiding the planning stage's latency behind the
//! execution window (the ROADMAP's "concurrent planner instances" item;
//! the same overlap discipline Π-RT applies to heterogeneous pipeline
//! stages). The contract has three parts:
//!
//! 1. **Snapshot.** A speculation is a *pure function* of its request:
//!    a cloned [`Planner`] whose RRT* seed is the one decision *k + 1*
//!    owns (`seed_base + (k + 1)`), a cloned [`CollisionChecker`] with
//!    its broad-phase already built (so the worker never rebuilds), the
//!    drone position at the end of epoch *k* (bit-exact: nothing moves
//!    the drone between the epoch end and the next planning stage), and
//!    the local goal computed from the *snapshot* export. Determinism of
//!    the whole mission therefore survives the extra thread: the main
//!    loop blocks on the worker's answer before using it.
//!
//! 2. **Validation.** At decision *k + 1* the fresh export may differ
//!    from the snapshot. The speculative trajectory is re-checked
//!    *incrementally*: only the voxel keys the
//!    [`PlannerMapDelta`](roborun_perception::PlannerMapDelta) **added**
//!    since the snapshot can invalidate it (removed keys only free
//!    space, and the plan is already collision-free against the
//!    snapshot), so [`CollisionChecker::path_clear_of_added`] walks the
//!    trajectory polyline against those keys alone — sampled every
//!    `check_step` metres like a synchronous edge check, at the same
//!    `margin * 0.6` clearance the blockage detector uses, so an adopted
//!    plan is never immediately re-flagged as blocked by the very delta
//!    it was validated against and no added voxel can slip between two
//!    trajectory samples. The verdict is
//!    [`SpeculationVerdict::Adopted`] (plan valid, goal unchanged),
//!    [`SpeculationVerdict::Patched`] (plan valid but the local goal
//!    drifted with the new export — the trajectory is still adopted and
//!    the regular replan cadence corrects the goal), or
//!    [`SpeculationVerdict::Discarded`] (planning failed, the export
//!    precision knob changed the voxel size, or the re-check found an
//!    added voxel on the trajectory) — which falls back to a synchronous
//!    replan, exactly as if plan-ahead were off.
//!
//! 3. **Accounting.** An adopted (or patched) speculation removes the
//!    planning stage from the decision's critical path, but only up to
//!    the *overlap window*: work can only hide behind the previous
//!    epoch's duration, so `masked = min(planning, previous_epoch)`
//!    ([`roborun_sim::LatencyBreakdown::critical_path`]). The governor's
//!    budget law and the epoch advance then see the critical-path
//!    latency, and [`roborun_core::DecisionRecord::masked_latency`]
//!    records what overlap bought each decision.
//!
//! With plan-ahead **off**, no worker exists, every masked term is zero
//! and the decision sequence is bit-identical to the pre-refactor
//! behaviour (locked by the `golden_sweep` fixture).
//!
//! # Dynamic worlds: the sense / validate / budget contract
//!
//! A mission may run against a [`DynamicWorld`] (moving-obstacle actors
//! composed with the static field — see `roborun-dynamics`). The cycle
//! touches the dynamic world in exactly four places, each of which
//! degenerates to the static behaviour (bit for bit) when the world has
//! no actors:
//!
//! * **Sense** from the *snapshot* field of the current instant: the
//!   cameras see actors at their true poses, so actor surfaces enter the
//!   occupancy map like any other obstacle (and, with
//!   [`crate::MissionConfig::voxel_decay`] enabled, leave it again once
//!   their stale trail is re-observed free).
//! * **Validate** the followed trajectory — and any plan-ahead
//!   speculation — against the *predicted* occupancy over
//!   [`crate::MissionConfig::dynamic_lookahead`] seconds: a predicted
//!   box crossing the remaining trajectory forces a replan
//!   (`dynamic_replans`), and an arrived speculation whose path crosses
//!   a predicted box is discarded (`predicted_invalidations`).
//!   Predictions are conservative over-approximations (see the
//!   `roborun-dynamics` crate docs), so they only ever *discard* plans.
//! * **Budget** reaction time with the governor's closing-speed term
//!   ([`roborun_core::Governor::safe_velocity_closing`]): an obstacle
//!   approaching at `v_c` eats `v_c · latency` of the visible margin
//!   before the next decision can react.
//! * **Collide** against actors' true poses at every physics substep of
//!   the epoch advance, so ground-truth safety is judged against where
//!   actors actually are, never against predictions.
//!
//! Every predicted-occupancy query above goes through one
//! [`PredictedHazards`] source (see the `roborun_planning::hazard`
//! module docs for the full contract): the cycle *composes* it with the
//! long-lived static checker once per decision and *retargets* it from
//! the fresh predicted boxes (an incremental patch mirroring the
//! checker's map-delta patch). Blockage detection, the fresh-plan veto
//! and the speculation gate are all walks of that one source, so the
//! planner-side and validation-side notions of "clear" cannot drift.
//! With [`crate::MissionConfig::predicted_costmap`] enabled, the
//! synchronous and speculative searches additionally plan *through* the
//! composed [`HazardContext`], routing around predicted lanes in one
//! shot; the posterior veto is retained as the safety net and as the
//! reference reject-loop path (bit-identical whenever the flag is off
//! or the predicted set is empty).
//!
//! # Faults and graceful degradation
//!
//! A mission may arm a deterministic
//! [`FaultPlan`]
//! ([`crate::MissionConfig::fault_plan`]) and the degradation runtime
//! ([`crate::MissionConfig::degradation`]). Every injected fault is a
//! pure function of `(plan seed, decision index)` — see the
//! `roborun-faults` crate docs for the determinism contract — and with
//! a healthy plan every hook below is compiled down to a no-op branch,
//! keeping healthy missions bit-identical to the pre-fault behaviour
//! (locked by all golden fixtures):
//!
//! * **Sensor blackout / bursts** hit the sensing stage: a blackout
//!   loses the whole sweep and withholds map integration; a burst
//!   corrupts the surviving depth returns through a per-decision
//!   deterministic corruptor.
//! * **Stale-map epochs** withhold integration only: the planner keeps
//!   exporting from the aging map.
//! * **Planner latency spikes** inflate the modelled planning latency.
//!   With degradation armed, a **watchdog** aborts any attempt that
//!   exceeds [`crate::DegradationConfig::watchdog_budget`] (charging the
//!   full budget for the aborted attempt) and retries with
//!   multiplicatively backed-off injected latency, up to
//!   [`crate::DegradationConfig::max_retries`] times; an unrecovered
//!   abort degenerates to a forced planner failure. The fault-oblivious
//!   baseline just eats the spike, which serialises straight into the
//!   decision epoch.
//! * **Forced planner failures** leave the decision with no planner
//!   output. The degradation **fallback ladder** then runs: *reuse* the
//!   last valid trajectory while it is clear → *hover* in place
//!   (no motion command; the follower keeps its progress) → a
//!   wedge-retreat **safe-stop** once hovering has not bought a plan for
//!   [`crate::DegradationConfig::hover_limit`] consecutive decisions.
//!   A safe-stop deliberately ends the mission (`safe_stops = 1`,
//!   neither `collided` nor `reached_goal`): provably parked, not
//!   crashed.
//! * **Stale-perception derating**: the governor's data-age law
//!   ([`roborun_core::Governor::safe_velocity_stale`]) shaves the
//!   visible margin by how long ago the map last integrated fresh
//!   sensing, the same structure as the closing-speed term; perception
//!   older than [`crate::DegradationConfig::stale_hover_age`] seconds
//!   forces a hover rather than flying through unsensed space. Stale
//!   hovers never escalate to the safe-stop — hovering is indefinitely
//!   safe in a static world, and fresh sensing re-arms the mission the
//!   moment it returns.
//!
//! Each decision records its [`roborun_core::Degradation`] state in the
//! telemetry, and the mission metrics aggregate the counters
//! (`faults_injected`, `watchdog_fires`, `retries`, `degraded_decisions`,
//! `safe_stops`). The fault sweep ([`crate::sweep::run_fault_sweep`]) turns
//! this into the headline experiment: under identical fault plans the
//! fault-oblivious baseline collides or deadlocks while the
//! degradation-aware runtime completes or provably safe-stops.
//!
//! # Cross-decision planner reuse
//!
//! With [`crate::MissionConfig::planner_reuse`] enabled, every
//! synchronous replan hands the previous decision's RRT* tree back to
//! the planner through a per-mission
//! [`PlannerScratch`], together with a
//! [`WarmStart`] delta mirroring the
//! plan-ahead validation contract above: the *added* voxel boxes of the
//! export delta since the tree was grown (the same boxes
//! [`CollisionChecker::path_clear_of_added`] checks, via
//! [`CollisionChecker::added_boxes_into`]) plus the decision's
//! retargeted predicted/peer hazard boxes at the blockage-detector
//! clearance. The planner rebases the tree to the new start, prunes
//! invalidated branches, and repairs costs — see the
//! `roborun_planning::rrtstar` module docs for the contract. Warm plans
//! also enable informed sampling and a bounded refine budget, so a
//! barely-changed zone replans in a fraction of a cold search. The
//! scratch is reused (never reallocated) even when the flag is off, and
//! the flag itself is off by default: every golden fixture regenerates
//! bit-identically without it. Speculation-worker plans always cold
//! start (their checker is a snapshot clone) but reuse a worker-owned
//! scratch for the same zero-allocation property.

use crate::metrics::MissionMetrics;
use crate::runner::{DegradationConfig, MissionConfig, MissionResult};
use roborun_control::TrajectoryFollower;
use roborun_core::{
    DecisionRecord, Degradation, Governor, KnobSettings, MissionTelemetry, Policy, RuntimeMode,
    SpatialProfile,
};
use roborun_dynamics::{DynamicWorld, PoseCache};
use roborun_env::{Environment, Zone};
use roborun_faults::{FaultFrame, FaultPlan, SensorBurst};
use roborun_geom::{Aabb, Vec3};
use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
use roborun_planning::{
    first_polyline_conflict, polyline_clear_of_boxes, CollisionChecker, HazardContext,
    PeerTrajectoryHazard, PlanError, PlanStats, Planner, PlannerConfig, PlannerScratch,
    PredictedHazards, RrtConfig, SamplingMix, Trajectory, TrajectoryPoint, WarmStart,
};
use roborun_sim::{
    CameraRig, DroneConfig, DroneState, EnergyModel, FaultConfig, FaultInjector, LatencyBreakdown,
    SimClock,
};
use std::sync::mpsc::{Receiver, Sender};

// ---------------------------------------------------------------------------
// Shared per-decision policies (used by both drivers)
// ---------------------------------------------------------------------------

/// Builds the per-decision burst corruptor both drivers use for the
/// fault plan's depth-noise bursts: a one-shot [`FaultInjector`] seeded
/// from the burst parameters (pure in the burst, so the corruption is a
/// deterministic function of `(plan seed, decision index)`).
pub(crate) fn burst_injector(burst: SensorBurst) -> FaultInjector {
    FaultInjector::new(FaultConfig {
        sweep_dropout_probability: 0.0,
        point_dropout_probability: burst.dropout,
        range_noise_std: burst.noise_std,
        fog_visibility_cap: f64::INFINITY,
        seed: burst.seed,
    })
}

/// Direction of travel used for the unknown-space probe: the current
/// velocity when moving, otherwise straight at the goal.
pub fn direction_towards(position: Vec3, goal: Vec3, velocity: Vec3) -> Vec3 {
    if velocity.norm() > 0.3 {
        velocity
    } else {
        goal - position
    }
}

/// Distance (metres, straight-line from `position`) to the first point of
/// the remaining trajectory (past `progress_time`) that collides with the
/// freshly exported map, or `None` when the remaining trajectory is clear
/// (knowledge gained since the last plan has not invalidated it). The
/// probe clearance is `margin * 0.6`, matching the planner's inflated
/// export voxels without double-counting the full margin.
pub fn first_blockage_distance(
    trajectory: &Trajectory,
    progress_time: f64,
    export: &PlannerMap,
    margin: f64,
    position: Vec3,
) -> Option<f64> {
    trajectory
        .remaining_from(progress_time)
        .points()
        .iter()
        .find(|p| export.is_occupied(p.position, margin * 0.6))
        .map(|p| p.position.distance(position))
}

/// Distance (metres, straight-line from `position`) to the first point of
/// the remaining trajectory that comes within `clearance` of any
/// *predicted* moving-obstacle box, or `None` when the remaining
/// trajectory clears every box. The dynamic counterpart of
/// [`first_blockage_distance`]: the boxes come from
/// [`DynamicWorld::predicted_boxes`] over the configured lookahead, so a
/// hit means an actor *may* cross the corridor — conservative by
/// construction, and used only to discard plans, never to admit them.
/// A thin wrapper over the unified hazard walk
/// ([`first_polyline_conflict`]); the in-cycle path runs the same walk
/// through the decision's retargeted [`PredictedHazards`].
pub fn predicted_blockage_distance(
    trajectory: &Trajectory,
    progress_time: f64,
    predicted: &[Aabb],
    clearance: f64,
    position: Vec3,
    max_range: f64,
) -> Option<f64> {
    let remaining = trajectory.remaining_from(progress_time);
    first_polyline_conflict(
        remaining.points().iter().map(|p| p.position),
        predicted,
        clearance,
        position,
        max_range,
    )
    .map(|p| p.distance(position))
}

/// `true` when the polyline through `points` stays clear of every
/// predicted box by more than `clearance` within `max_range` of
/// `origin` — the dynamic-world check an arrived plan-ahead speculation
/// (or a fresh synchronous plan) must additionally pass before adoption.
/// The polyline is sampled densely (segments can span metres; a
/// crossing actor must not slip between two waypoints). Points farther
/// than `max_range` are ignored: the MAV cannot reach them within the
/// prediction horizon, and the boxes say nothing about the world beyond
/// it — rejecting on far conflicts would only starve the mission (the
/// next decision re-predicts with fresher poses). A thin wrapper over
/// the unified hazard walk ([`polyline_clear_of_boxes`]).
pub fn path_clear_of_predicted(
    points: impl IntoIterator<Item = Vec3>,
    predicted: &[Aabb],
    clearance: f64,
    origin: Vec3,
    max_range: f64,
) -> bool {
    polyline_clear_of_boxes(points, predicted, clearance, origin, max_range)
}

/// Folds the static-map blockage and the predicted moving-obstacle
/// conflict into the single blockage distance the replan/brake machinery
/// reasons about: the nearer of the two (either alone when only one
/// fired). Both drivers share this merge so their dynamic behaviour
/// cannot drift.
pub fn merge_blockages(static_blockage: Option<f64>, predicted: Option<f64>) -> Option<f64> {
    match (static_blockage, predicted) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    }
}

/// How far ahead a predicted moving-obstacle conflict is actionable: the
/// distance the MAV can cover within the lookahead at its current speed
/// (with a 1 m/s floor so a hovering drone still sees adjacent
/// conflicts), plus a body-clearance allowance. Conflicts beyond this
/// range cannot materialise within the prediction horizon — both drivers
/// share this policy.
pub fn predicted_relevance_range(speed: f64, lookahead: f64, margin: f64) -> f64 {
    speed.max(1.0) * lookahead + 2.0 * margin
}

/// Plans one decision's trajectory through the composed hazard context
/// when `one_shot`, retrying through the bare static checker when the
/// composed search fails (no route threads both the map and the
/// predicted lanes, or an endpoint sits inside one) — the retained
/// reject-loop reference path, whose posterior veto then governs the
/// result. With `one_shot` false this is exactly the bare-checker plan.
/// Shared by both drivers so the fallback policy cannot drift.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_through_hazards(
    planner: &Planner,
    checker: &mut CollisionChecker,
    hazards: &PredictedHazards,
    one_shot: bool,
    start: Vec3,
    goal: Vec3,
    bounds: &Aabb,
    cruise: f64,
    scratch: &mut PlannerScratch,
    warm: Option<&WarmStart>,
) -> Result<(Trajectory, PlanStats), PlanError> {
    if one_shot {
        let mut context = HazardContext::new(checker, hazards);
        let outcome =
            planner.plan_with_scratch(&mut context, start, goal, bounds, cruise, scratch, warm);
        if outcome.is_ok() {
            return outcome;
        }
        // The composed search failed: the bare retry deliberately ignores
        // the predicted lanes, so the hazard-pruned warm tree does not
        // apply — cold start it (the posterior veto still governs).
        return planner.plan_with_scratch(checker, start, goal, bounds, cruise, scratch, None);
    }
    planner.plan_with_scratch(checker, start, goal, bounds, cruise, scratch, warm)
}

/// The speculation request's hazard source: this decision's boxes
/// re-anchored at the post-epoch position the speculation starts from
/// (empty when the costmap is off, keeping the worker bit-identical to a
/// bare-checker plan). Shared by both drivers so the re-anchor policy
/// lives once.
pub(crate) fn speculation_hazards(
    hazards: &PredictedHazards,
    predicted_costmap: bool,
    start: Vec3,
    speed: f64,
    lookahead: f64,
    margin: f64,
) -> PredictedHazards {
    if predicted_costmap && !hazards.is_empty() {
        hazards.reanchored(start, predicted_relevance_range(speed, lookahead, margin))
    } else {
        PredictedHazards::empty()
    }
}

/// A short, slow straight-line manoeuvre directly away from the nearest
/// exported occupied box (straight up when the export is empty or the
/// position is swallowed by a box), clipped so it does not run into
/// other mapped occupancy. Used only to un-wedge a start-blocked drone
/// in a dynamic mission: static missions never park inside the margin
/// shell of mapped occupancy, but an escape manoeuvre or a passing actor
/// can leave a dynamic one there, where every plan is start-blocked
/// forever.
pub fn retreat_trajectory(export: &PlannerMap, pos: Vec3, margin: f64) -> Trajectory {
    let away = export
        .boxes()
        .iter()
        .min_by(|a, b| {
            a.distance_to_point(pos)
                .partial_cmp(&b.distance_to_point(pos))
                .expect("distances are never NaN")
        })
        .map(|b| pos - b.closest_point(pos))
        .and_then(|v| v.try_normalize())
        .unwrap_or(Vec3::Z);
    let mut length: f64 = 0.5;
    while length < 2.5 && !export.is_occupied(pos + away * (length + 0.5), margin * 0.3) {
        length += 0.5;
    }
    let speed = 0.4;
    Trajectory::new(vec![
        TrajectoryPoint {
            time: 0.0,
            position: pos,
            speed,
        },
        TrajectoryPoint {
            time: length / speed,
            position: pos + away * length,
            speed,
        },
    ])
}

/// Axis-aligned sampling bounds for the local planning problem.
pub fn planning_bounds(start: Vec3, goal: Vec3, world: Aabb) -> Aabb {
    let corridor = Aabb::new(start, goal).inflate(25.0);
    corridor.intersection(&world).unwrap_or(corridor)
}

/// Zone enum → the single-character label used in telemetry.
pub fn zone_label(zone: Zone) -> char {
    match zone {
        Zone::A => 'A',
        Zone::B => 'B',
        Zone::C => 'C',
    }
}

/// Receding-horizon local goal: a free point towards the mission goal, at
/// most `horizon` metres ahead, nudged laterally when the direct candidate
/// is blocked in the exported map at `probe_margin` clearance.
pub fn local_goal(
    env: &Environment,
    export: &PlannerMap,
    position: Vec3,
    horizon: f64,
    probe_margin: f64,
) -> Vec3 {
    let goal = env.goal();
    let to_goal = goal - position;
    let distance = to_goal.norm();
    if distance <= horizon {
        return goal;
    }
    let dir = to_goal / distance;
    let base = position + dir * horizon;
    if !export.is_occupied(base, probe_margin) {
        return base;
    }
    let lateral = Vec3::new(-dir.y, dir.x, 0.0);
    for offset in [4.0, -4.0, 8.0, -8.0, 14.0, -14.0, 20.0, -20.0] {
        let candidate = base + lateral * offset;
        if env.bounds().contains(candidate) && !export.is_occupied(candidate, probe_margin) {
            return candidate;
        }
    }
    base
}

/// The mission-level sampling mix for a config flag: the planner's
/// default weights, gated on
/// [`crate::MissionConfig::hazard_biased_sampling`]. Disabled it is the
/// planner default, so every existing plan stays bit-identical.
pub fn sampling_mix_for(enabled: bool) -> SamplingMix {
    SamplingMix {
        enabled,
        ..SamplingMix::default()
    }
}

/// The per-decision planner both drivers instantiate: decision-owned RRT*
/// seed, the governor's planner-volume knob, the planning-precision
/// knob as the collision sample spacing, and the mission's sampling mix
/// (advisory hazard bias, a no-op when disabled or hazard-free).
pub fn planner_for(
    seed_base: u64,
    decision: usize,
    knobs: &KnobSettings,
    margin: f64,
    mix: SamplingMix,
) -> Planner {
    planner_for_with_reuse(seed_base, decision, knobs, margin, mix, false)
}

/// [`planner_for`] with the cross-decision reuse knobs
/// ([`crate::MissionConfig::planner_reuse`]): warm-started trees,
/// informed sampling and a bounded refine budget once a solution exists.
/// With `reuse` false this is exactly [`planner_for`], bit for bit.
pub fn planner_for_with_reuse(
    seed_base: u64,
    decision: usize,
    knobs: &KnobSettings,
    margin: f64,
    mix: SamplingMix,
    reuse: bool,
) -> Planner {
    Planner::new(PlannerConfig {
        rrt: RrtConfig {
            seed: seed_base.wrapping_add(decision as u64),
            max_explored_volume: knobs.planner_volume,
            max_samples: 900,
            sampling_mix: mix,
            warm_start: reuse,
            informed_sampling: reuse,
            refine_samples: if reuse { 512 } else { 0 },
            ..RrtConfig::default()
        },
        margin,
        collision_check_step: planning_check_step(knobs),
        ..PlannerConfig::default()
    })
}

/// Collision-check sample spacing for a knob assignment (the planning
/// precision knob, floored at the substrate's 0.3 m).
pub fn planning_check_step(knobs: &KnobSettings) -> f64 {
    knobs.map_to_planner_precision.max(0.3)
}

/// The emergency-stop rule shared by both drivers: a blockage is imminent
/// when it sits inside the stopping distance plus the driver's reaction
/// window plus a body-clearance allowance — the reaction the
/// stopping-distance term of Eq. 1 budgets for. Blockages further out
/// leave time to keep flying while replanning (and coarse-voxel false
/// positives resolve as the MAV gets close and precision tightens).
pub fn blockage_is_imminent(
    blockage: f64,
    stopping_distance: f64,
    reaction: f64,
    body_clearance: f64,
) -> bool {
    blockage <= stopping_distance + reaction + body_clearance
}

/// Advances the physical world for one decision epoch in fixed 0.25 s
/// substeps, charging energy and detecting collisions. `command` yields
/// the active trajectory's steering target and speed for a substep (or
/// `None` to brake along the current motion direction and hover); the
/// speed is clamped to the commanded velocity. `dynamic_hit` is the
/// moving-obstacle collision test, called with the drone position and the
/// simulation time *after* each substep (so actors are judged at their
/// true pose of that instant) — pass `|_, _| false` in a static world.
/// Returns `true` when the drone collided during the epoch.
#[allow(clippy::too_many_arguments)]
pub fn advance_epoch(
    drone: &mut DroneState,
    clock: &mut SimClock,
    energy_joules: &mut f64,
    env: &Environment,
    drone_cfg: &DroneConfig,
    energy_model: &EnergyModel,
    epoch: f64,
    commanded_velocity: f64,
    mut command: impl FnMut(Vec3, f64) -> Option<(Vec3, f64)>,
    mut dynamic_hit: impl FnMut(Vec3, f64) -> bool,
) -> bool {
    let substep = 0.25f64;
    let mut remaining = epoch;
    while remaining > 1e-9 {
        let dt = substep.min(remaining);
        remaining -= dt;
        let (target, speed) = match command(drone.position, dt) {
            Some((target, speed)) => (target, speed.min(commanded_velocity)),
            // No active trajectory: brake along the current motion
            // direction (acceleration-limited), then hover.
            None => (drone.position + drone.velocity, 0.0),
        };
        drone.advance_towards(drone_cfg, target, speed, dt);
        *energy_joules += energy_model.energy_for(drone.speed(), dt);
        clock.advance(dt);
        if env
            .field()
            .is_occupied_with_margin(drone.position, drone_cfg.body_radius * 0.8)
        {
            return true;
        }
        if dynamic_hit(drone.position, clock.now()) {
            return true;
        }
    }
    false
}

/// Running totals of the dynamic-world machinery over one mission.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DynamicsStats {
    /// Decisions where a predicted moving-obstacle conflict forced a
    /// replan.
    pub dynamic_replans: usize,
    /// Arrived speculations discarded by the predicted-occupancy check.
    pub predicted_invalidations: usize,
}

/// Running totals of the fault-injection and graceful-degradation
/// machinery over one mission. All zero on healthy missions with
/// degradation disarmed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DegradationStats {
    /// Fault-channel activations injected by the armed fault plan.
    pub faults_injected: usize,
    /// Decisions on which the planning watchdog aborted an over-budget
    /// planning attempt.
    pub watchdog_fires: usize,
    /// Bounded planning retries attempted after watchdog aborts.
    pub retries: usize,
    /// Decisions recorded with a non-healthy degradation state.
    pub degraded_decisions: usize,
    /// 1 when the mission ended in a deliberate wedge-retreat safe-stop.
    pub safe_stops: usize,
}

/// Applies the frame's planner fault channels to the modelled latency
/// breakdown — shared by both drivers so the watchdog arithmetic cannot
/// drift between them. With degradation armed, the **watchdog** aborts
/// any planning attempt whose modelled latency would exceed the budget
/// (charging the full budget for the aborted attempt) and retries with
/// multiplicatively backed-off injected latency up to `max_retries`
/// times; an unrecovered abort degenerates to a forced planner failure.
/// The fault-oblivious baseline just eats the spike — it serialises
/// straight into the decision epoch. Returns the degradation state so
/// far and whether the decision's planner output is lost outright
/// (injected failure, or an unrecovered watchdog abort).
pub(crate) fn apply_planner_faults(
    breakdown: &mut LatencyBreakdown,
    frame: &FaultFrame,
    policy: &DegradationConfig,
    stats: &mut DegradationStats,
) -> (Degradation, bool) {
    let mut degradation = Degradation::Healthy;
    let mut forced_failure = frame.planner_failure;
    if frame.planner_spike > 0.0 {
        if policy.enabled {
            let nominal = breakdown.planning;
            let mut spike = frame.planner_spike;
            if nominal + spike > policy.watchdog_budget {
                stats.watchdog_fires += 1;
                // The aborted attempt still costs the full budget.
                let mut charged = policy.watchdog_budget;
                let mut recovered = false;
                for retry in 1..=policy.max_retries {
                    spike *= policy.retry_backoff;
                    let attempt = nominal + spike;
                    if attempt <= policy.watchdog_budget {
                        charged += attempt;
                        stats.retries += retry as usize;
                        recovered = true;
                        break;
                    }
                    charged += policy.watchdog_budget;
                    if retry == policy.max_retries {
                        stats.retries += retry as usize;
                    }
                }
                breakdown.planning = charged;
                if recovered {
                    degradation = Degradation::RetriedPlan;
                } else {
                    forced_failure = true;
                }
            } else {
                breakdown.planning = nominal + spike;
            }
        } else {
            breakdown.planning += frame.planner_spike;
        }
    }
    (degradation, forced_failure)
}

/// Emits one [`roborun_trace::SpanKind::Plan`] event carrying the
/// planner's per-invocation counters (zero-length on the sim clock — the
/// planning *stage* span already shows the modeled latency; this event
/// carries the search internals and the measured wall time). Shared by
/// the synchronous path and the plan-ahead worker; no-op when disarmed.
pub(crate) fn emit_plan_span(
    stats: &PlanStats,
    sim_time: f64,
    timer: &Option<roborun_trace::WallTimer>,
) {
    if !roborun_trace::armed() {
        return;
    }
    roborun_trace::collector::complete(
        roborun_trace::SpanKind::Plan,
        sim_time,
        0.0,
        roborun_trace::timer_ns(timer),
        &[
            ("samples_drawn", stats.samples_drawn as f64),
            ("tree_size", stats.tree_size as f64),
            ("rewires", stats.rewires as f64),
            ("batch_rounds", stats.batch_rounds as f64),
            ("collision_queries", stats.collision_queries as f64),
            ("explored_volume", stats.explored_volume),
            ("volume_capped", f64::from(u8::from(stats.volume_capped))),
            ("retained_nodes", stats.retained_nodes as f64),
            ("pruned_nodes", stats.pruned_nodes as f64),
            ("rebased", f64::from(u8::from(stats.rebased))),
            ("informed_rejections", stats.informed_rejections as f64),
        ],
    );
}

/// Stable trace label of a degradation-ladder rung.
pub(crate) fn degradation_label(degradation: Degradation) -> &'static str {
    match degradation {
        Degradation::Healthy => "healthy",
        Degradation::StalePerception => "stale_perception",
        Degradation::RetriedPlan => "retried_plan",
        Degradation::ReusedTrajectory => "reused_trajectory",
        Degradation::Hover => "hover",
        Degradation::SafeStop => "safe_stop",
    }
}

/// Assembles the mission-level metrics both drivers report.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finalize_metrics(
    mode: RuntimeMode,
    mission_time: f64,
    energy_joules: f64,
    telemetry: &MissionTelemetry,
    drone: &DroneState,
    decisions: usize,
    reached_goal: bool,
    collided: bool,
    plan_ahead: &PlanAheadStats,
    dynamics: &DynamicsStats,
    degradation: &DegradationStats,
    reuse: &ReuseStats,
) -> MissionMetrics {
    MissionMetrics {
        mode,
        mission_time,
        energy_kj: energy_joules / 1000.0,
        mean_velocity: drone.distance_travelled / mission_time,
        mean_cpu_utilization: telemetry.mean_cpu_utilization(),
        median_latency: telemetry.median_latency().unwrap_or(0.0),
        p95_latency: telemetry.p95_latency().unwrap_or(0.0),
        p99_latency: telemetry.p99_latency().unwrap_or(0.0),
        max_latency: telemetry.max_latency().unwrap_or(0.0),
        decisions,
        distance_travelled: drone.distance_travelled,
        reached_goal,
        collided,
        masked_planning_latency: plan_ahead.masked_latency,
        plan_ahead_attempts: plan_ahead.attempts,
        plan_ahead_hits: plan_ahead.hits,
        dynamic_replans: dynamics.dynamic_replans,
        predicted_invalidations: dynamics.predicted_invalidations,
        faults_injected: degradation.faults_injected,
        watchdog_fires: degradation.watchdog_fires,
        retries: degradation.retries,
        degraded_decisions: degradation.degraded_decisions,
        safe_stops: degradation.safe_stops,
        warm_replans: reuse.warm_replans,
        planner_nodes_retained: reuse.nodes_retained,
        planner_nodes_pruned: reuse.nodes_pruned,
    }
}

// ---------------------------------------------------------------------------
// Cross-decision planner reuse
// ---------------------------------------------------------------------------

/// Running totals of the cross-decision planner reuse machinery (see the
/// module docs). All zero with [`crate::MissionConfig::planner_reuse`]
/// off.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct ReuseStats {
    /// Synchronous replans that rebased a retained tree.
    pub(crate) warm_replans: usize,
    /// Nodes recycled across those rebases.
    pub(crate) nodes_retained: usize,
    /// Previous-tree nodes pruned across those rebases.
    pub(crate) nodes_pruned: usize,
}

impl ReuseStats {
    /// Accumulates one plan's reuse counters.
    pub(crate) fn record(&mut self, stats: &PlanStats) {
        if stats.rebased {
            self.warm_replans += 1;
            self.nodes_retained += stats.retained_nodes;
            self.nodes_pruned += stats.pruned_nodes;
        }
    }
}

/// Warm-start bookkeeping a driver keeps per mission: the planner scratch
/// (retained tree + reusable search buffers), the export snapshot the
/// retained tree was grown against, and the reusable delta-box buffer.
/// The scratch is threaded through *every* synchronous plan so the
/// buffers reach a steady state even with reuse off; the snapshot/delta
/// machinery only engages when [`crate::MissionConfig::planner_reuse`]
/// is on.
pub(crate) struct PlanReuse {
    pub(crate) scratch: PlannerScratch,
    /// Export the retained tree planned against (`None` until the first
    /// tree-building plan lands).
    snapshot: Option<PlannerMap>,
    /// Reused buffer for the delta's added-voxel boxes.
    pub(crate) added_boxes: Vec<Aabb>,
    pub(crate) stats: ReuseStats,
}

/// Above this many added voxels since the snapshot, rebasing would spend
/// more on the O(edges × boxes) prune than a cold search: start cold.
const WARM_MAX_ADDED_BOXES: usize = 512;

/// Above this many retained nodes the tree is dropped and the next plan
/// cold-starts. Every warm replan appends its fresh samples to the
/// recycled tree, so without a cap the tree — and with it rebase,
/// neighbor-query, and rewire cost — grows without bound across a long
/// mission. The cap keeps a couple of warm generations per cold start
/// (mission searches draw ≤ ~900 samples each) and bounds memory.
const WARM_MAX_TREE_NODES: usize = 2_048;

impl PlanReuse {
    pub(crate) fn new() -> Self {
        PlanReuse {
            scratch: PlannerScratch::new(),
            snapshot: None,
            added_boxes: Vec::new(),
            stats: ReuseStats::default(),
        }
    }

    /// Prepares this decision's warm-start delta: the added-voxel boxes
    /// of `export` relative to the retained tree's snapshot. Returns
    /// `false` (cold start) when reuse is off, no snapshot exists, the
    /// voxel size changed (no key-level delta exists), the retained tree
    /// outgrew [`WARM_MAX_TREE_NODES`], or the delta is too large to be
    /// worth pruning against.
    pub(crate) fn prepare_warm(&mut self, enabled: bool, export: &PlannerMap) -> bool {
        if !enabled {
            return false;
        }
        if self.scratch.retained_tree_size() > WARM_MAX_TREE_NODES {
            self.scratch.invalidate_tree();
            return false;
        }
        let Some(snapshot) = self.snapshot.as_ref() else {
            return false;
        };
        let Some(delta) = export.delta_from(snapshot) else {
            return false;
        };
        if delta.added().len() > WARM_MAX_ADDED_BOXES {
            return false;
        }
        CollisionChecker::added_boxes_into(&delta, &mut self.added_boxes);
        true
    }

    /// Post-plan bookkeeping: when the search rebuilt or rebased the
    /// retained tree this decision (tree epoch advanced), the tree now
    /// corresponds to `export` — snapshot it for the next delta. A plan
    /// resolved by the direct-connection shortcut (or rejected before
    /// the search) leaves the tree and snapshot untouched, so deltas
    /// keep accumulating against the tree's true base.
    pub(crate) fn after_plan(&mut self, enabled: bool, epoch_before: u64, export: &PlannerMap) {
        if enabled && self.scratch.tree_epoch() != epoch_before {
            self.snapshot = Some(export.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// Plan-ahead machinery
// ---------------------------------------------------------------------------

/// Running totals of the plan-ahead machinery over one mission.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanAheadStats {
    /// Speculations launched.
    pub attempts: usize,
    /// Speculations adopted (including goal-drift patches).
    pub hits: usize,
    /// Planning latency masked from the critical path (seconds).
    pub masked_latency: f64,
}

/// A speculation request: everything the worker needs to plan decision
/// *k + 1* as a pure function (see the module docs' snapshot contract).
/// With [`crate::MissionConfig::predicted_costmap`] on, the request also
/// carries the decision's predicted hazards, so the speculative search
/// itself routes around predicted lanes (an empty set keeps the worker
/// bit-identical to a bare-checker plan).
pub(crate) struct SpeculationRequest {
    pub(crate) planner: Planner,
    pub(crate) checker: CollisionChecker,
    pub(crate) hazards: PredictedHazards,
    pub(crate) start: Vec3,
    pub(crate) goal: Vec3,
    pub(crate) bounds: Aabb,
    pub(crate) cruise: f64,
    /// Sim time of the launching decision — the timestamp the worker's
    /// trace events carry (the worker owns no clock of its own).
    pub(crate) launched_at: f64,
}

/// The worker's answer to a [`SpeculationRequest`].
pub(crate) struct SpeculationOutcome {
    pub(crate) outcome: Result<(Trajectory, PlanStats), PlanError>,
}

/// Serves speculation requests until the requesting side hangs up. Runs on
/// the scoped worker thread [`crate::MissionRunner::run`] spawns when
/// plan-ahead is enabled.
pub(crate) fn speculation_worker(
    requests: Receiver<SpeculationRequest>,
    outcomes: Sender<SpeculationOutcome>,
) {
    roborun_trace::collector::set_track(roborun_trace::SPECULATION_TRACK);
    // Worker-owned scratch: speculative plans always cold start (each
    // request's checker is an independent snapshot clone, so no retained
    // tree matches it), but the search buffers still reach a steady state
    // across requests instead of reallocating per speculation.
    let mut scratch = PlannerScratch::new();
    while let Ok(mut request) = requests.recv() {
        let plan_timer = roborun_trace::timer();
        let mut context = HazardContext::new(&mut request.checker, &request.hazards);
        let outcome = request.planner.plan_with_scratch(
            &mut context,
            request.start,
            request.goal,
            &request.bounds,
            request.cruise,
            &mut scratch,
            None,
        );
        if let Ok((_, stats)) = &outcome {
            emit_plan_span(stats, request.launched_at, &plan_timer);
        }
        if outcomes.send(SpeculationOutcome { outcome }).is_err() {
            break;
        }
    }
    roborun_trace::collector::flush();
}

/// The mission loop's handle on the speculation worker.
pub(crate) struct PlanAheadWorker {
    pub(crate) requests: Sender<SpeculationRequest>,
    pub(crate) outcomes: Receiver<SpeculationOutcome>,
}

impl PlanAheadWorker {
    pub(crate) fn new(
        requests: Sender<SpeculationRequest>,
        outcomes: Receiver<SpeculationOutcome>,
    ) -> Self {
        PlanAheadWorker { requests, outcomes }
    }
}

/// The snapshot-side metadata of an in-flight speculation, kept by the
/// main loop while the worker plans.
struct PendingSpeculation {
    /// Export snapshot the speculation planned against.
    snapshot: PlannerMap,
    /// Start position handed to the worker (the drone position at the end
    /// of the previous epoch — must still hold bit-exactly on arrival).
    start: Vec3,
    /// Local goal computed from the snapshot export.
    goal: Vec3,
    /// Overlap window: the previous epoch's duration (seconds). Masked
    /// planning latency can never exceed it.
    window: f64,
}

/// Verdict of validating an arrived speculation against the fresh export.
#[derive(Debug, Clone, PartialEq)]
pub enum SpeculationVerdict {
    /// Plan valid under the incremental re-check and the local goal is
    /// unchanged: execute it.
    Adopted(Trajectory),
    /// Plan valid under the incremental re-check but the local goal
    /// drifted with the new export: execute it anyway; the replan cadence
    /// corrects the goal within `replan_every` decisions.
    Patched(Trajectory),
    /// Planning failed, the export voxel size changed, the start moved,
    /// or an added voxel blocks the trajectory: fall back to a
    /// synchronous replan.
    Discarded,
}

/// Validates a speculative plan against the export that actually arrived:
/// the incremental re-check of the module docs' validation contract.
/// `clearance` is the blockage-detector clearance (`margin * 0.6`);
/// `sample_step` is the planning-precision collision sample spacing the
/// synchronous path would use for this decision's knobs.
#[allow(clippy::too_many_arguments)]
pub fn validate_speculation(
    outcome: &Result<(Trajectory, PlanStats), PlanError>,
    snapshot: &PlannerMap,
    speculated_start: Vec3,
    speculated_goal: Vec3,
    fresh_export: &PlannerMap,
    fresh_goal: Vec3,
    position: Vec3,
    clearance: f64,
    sample_step: f64,
) -> SpeculationVerdict {
    let Ok((trajectory, _stats)) = outcome else {
        return SpeculationVerdict::Discarded;
    };
    if speculated_start != position {
        return SpeculationVerdict::Discarded;
    }
    let Some(delta) = fresh_export.delta_from(snapshot) else {
        // The export precision knob changed the voxel size: no key-level
        // delta exists, so the plan cannot be re-validated incrementally.
        return SpeculationVerdict::Discarded;
    };
    if !CollisionChecker::path_clear_of_added(
        &delta,
        trajectory.points().iter().map(|p| p.position),
        clearance,
        sample_step,
    ) {
        return SpeculationVerdict::Discarded;
    }
    if speculated_goal == fresh_goal {
        SpeculationVerdict::Adopted(trajectory.clone())
    } else {
        SpeculationVerdict::Patched(trajectory.clone())
    }
}

// ---------------------------------------------------------------------------
// The decision cycle (direct-driver core)
// ---------------------------------------------------------------------------

/// Output of the sensing stage.
pub(crate) struct Sensed {
    /// The (possibly fault-corrupted) point cloud of this decision.
    pub raw_cloud: PointCloud,
}

/// Output of the planning stage.
struct Planned {
    /// Straight-line distance to the first blockage on the remaining
    /// trajectory, if any.
    blockage: Option<f64>,
    /// Whether a replacement trajectory was installed this decision.
    replanned: bool,
    /// The drone's own position sits inside the predicted occupancy of a
    /// moving obstacle: escape beats braking.
    in_danger: bool,
    /// Whether this decision needed a plan at all (cadence, finished
    /// trajectory, blockage or danger) — the degradation ladder only
    /// engages when a needed plan failed.
    needed: bool,
}

/// The full per-mission state of the direct driver, advanced one decision
/// at a time by [`DecisionCycle::run_decision`]. [`crate::MissionRunner`]
/// owns nothing beyond its config; everything the loop touches lives here.
pub(crate) struct DecisionCycle<'m> {
    cfg: &'m MissionConfig,
    env: &'m Environment,
    /// Moving-obstacle world, or `None` for the classic static mission.
    /// A `Some` world with an empty actor set behaves bit-identically to
    /// `None` (every dynamic hook degenerates — see the module docs).
    dynamics: Option<&'m DynamicWorld>,
    governor: Governor,
    rig: CameraRig,
    planner_seed_base: u64,
    planning_margin: f64,
    baseline_velocity: f64,
    fault_injector: Option<FaultInjector>,
    drone: DroneState,
    clock: SimClock,
    map: OccupancyMap,
    telemetry: MissionTelemetry,
    flown_path: Vec<Vec3>,
    flown_times: Vec<f64>,
    follower: Option<TrajectoryFollower>,
    // One collision checker lives across the whole mission: each replan
    // patches its broad-phase from the export delta instead of rebuilding
    // it from scratch (the margin never changes mid-run).
    collision: Option<CollisionChecker>,
    // The predicted (soft) hazard source, retargeted every decision from
    // the dynamic world's predicted boxes — the other half of the
    // composed hazard context. Empty (and inert) in static worlds.
    hazards: PredictedHazards,
    // Committed trajectories of the *other* drones sharing this world
    // (fleet missions). Their swept boxes are merged into the predicted
    // vector above before every retarget, so blockage detection, the
    // composed planning context, the escape trigger and the speculation
    // gate all treat a peer's corridor exactly like predicted occupancy.
    // Empty (and inert, bit for bit) in single-drone missions.
    peers: PeerTrajectoryHazard,
    // Random-walk replay anchors: every cached world view is bit-identical
    // to the plain one, but walker poses cost O(1) per decision instead of
    // O(t / dwell).
    pose_cache: PoseCache,
    energy_joules: f64,
    collided: bool,
    reached_goal: bool,
    decisions: usize,
    decisions_since_plan: usize,
    pending: Option<PendingSpeculation>,
    stats: PlanAheadStats,
    // Cross-decision planner reuse: the retained RRT* tree, its export
    // snapshot, and the reusable search buffers (see the module docs).
    // The scratch is threaded through every synchronous plan even with
    // `planner_reuse` off (pure allocation reuse, bit-identical).
    reuse: PlanReuse,
    dynamics_stats: DynamicsStats,
    // Deterministic fault plan (None when the config is healthy — the
    // whole degradation machinery then stays off the hot path).
    fault_plan: Option<FaultPlan>,
    degradation_stats: DegradationStats,
    // Simulation time of the last decision that integrated fresh sensing
    // into the map; `now - last_integration_time` is the perception data
    // age the stale-derating law sees.
    last_integration_time: f64,
    // Consecutive planner-failure hovers (the degradation ladder
    // escalates to a safe-stop when this exceeds the configured limit).
    hover_streak: u32,
    // The ladder bottomed out: a wedge-retreat was flown and the mission
    // deliberately ended (provably safe-stopped, not crashed).
    safe_stopped: bool,
    // Previous decision's ladder rung, so the tracer can emit
    // degradation *transitions* instead of one instant per decision.
    last_degradation: Degradation,
}

impl<'m> DecisionCycle<'m> {
    pub(crate) fn new(
        cfg: &'m MissionConfig,
        env: &'m Environment,
        dynamics: Option<&'m DynamicWorld>,
    ) -> Self {
        let governor = Governor::new(cfg.governor_config());
        let rig = match dynamics {
            Some(world) if !world.is_static() => cfg.dynamic_camera_rig(),
            _ => cfg.camera_rig(),
        };
        let planner_seed_base = cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(env.seed());
        let fault_injector = (!cfg.faults.is_healthy()).then(|| FaultInjector::new(cfg.faults));
        let fault_plan =
            (!cfg.fault_plan.is_healthy()).then(|| FaultPlan::new(cfg.fault_plan.clone()));
        let drone = DroneState::at(env.start());
        let mut map = OccupancyMap::new(governor.config().ranges.precision_min);
        map.set_stale_decay(cfg.voxel_decay);
        let baseline_velocity = governor.baseline_velocity();
        let planning_margin = cfg.drone.body_radius * cfg.planning_margin_factor;
        let hazards = PredictedHazards::new(Vec::new(), planning_margin * 0.6, drone.position, 0.0);
        // Peer corridors carry two stacked margins: the swept boxes are
        // inflated by a hard two-body allowance (either drone's centre may
        // sit a body radius inside its own corridor wall), and queries add
        // the same soft standoff the predicted source uses.
        let mut peers =
            PeerTrajectoryHazard::new(planning_margin * 0.6, cfg.drone.body_radius * 2.0);
        for (id, polyline) in cfg.peer_trajectories.iter().enumerate() {
            peers.set_peer(id as u64, polyline);
        }
        let pose_cache = dynamics.map(DynamicWorld::pose_cache).unwrap_or_default();
        DecisionCycle {
            cfg,
            env,
            dynamics,
            governor,
            rig,
            planner_seed_base,
            planning_margin,
            baseline_velocity,
            fault_injector,
            flown_path: vec![drone.position],
            flown_times: vec![0.0],
            drone,
            clock: SimClock::new(),
            map,
            telemetry: MissionTelemetry::new(cfg.mode),
            follower: None,
            collision: None,
            hazards,
            peers,
            pose_cache,
            energy_joules: 0.0,
            collided: false,
            reached_goal: false,
            decisions: 0,
            decisions_since_plan: usize::MAX / 2, // force an initial plan
            pending: None,
            stats: PlanAheadStats::default(),
            reuse: PlanReuse::new(),
            dynamics_stats: DynamicsStats::default(),
            fault_plan,
            degradation_stats: DegradationStats::default(),
            last_integration_time: 0.0,
            hover_streak: 0,
            safe_stopped: false,
            last_degradation: Degradation::Healthy,
        }
    }

    /// `true` while the mission should take another decision.
    pub(crate) fn mission_open(&self) -> bool {
        !self.collided
            && !self.reached_goal
            && !self.safe_stopped
            && self.decisions < self.cfg.max_decisions
            && self.clock.now() < self.cfg.max_mission_time
    }

    // ------------------------------------------------- fleet interface

    /// Current simulation time — the fleet coordinator's lockstep
    /// scheduling key (the open cycle with the smallest clock decides
    /// next, so no drone's committed trajectory goes stale in peers).
    pub(crate) fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Current drone position.
    pub(crate) fn position(&self) -> Vec3 {
        self.drone.position
    }

    /// The polyline this drone is committed to fly from here: its
    /// current position followed by the remaining points of the active
    /// trajectory — or the position alone when no trajectory is active
    /// (parked, hovering before the first plan, or finished). A parked
    /// drone still occupies its hover point, so the single-point
    /// polyline keeps peers from planning through it.
    pub(crate) fn committed_polyline(&self) -> Vec<Vec3> {
        let mut points = vec![self.drone.position];
        if let Some(f) = self.follower.as_ref() {
            if !f.finished() {
                points.extend(
                    f.trajectory()
                        .remaining_from(f.progress_time())
                        .points()
                        .iter()
                        .map(|p| p.position),
                );
            }
        }
        points
    }

    /// Publishes (or refreshes) a peer's committed polyline into this
    /// drone's peer-hazard source. Re-publishing a bitwise-identical
    /// polyline is a no-op; an empty polyline removes the peer.
    pub(crate) fn set_peer_trajectory(&mut self, id: u64, polyline: &[Vec3]) {
        self.peers.set_peer(id, polyline);
    }

    // ------------------------------------------------------------ stages

    /// Sensing: capture the camera rig (from the dynamic snapshot field
    /// of the current instant when actors exist), apply sensor faults.
    /// A fault-plan blackout loses the whole sweep; a burst corrupts the
    /// surviving returns through a per-decision deterministic corruptor.
    fn sense(&mut self, frame: &FaultFrame) -> Sensed {
        let pose = self.drone.pose();
        if frame.sensor_blackout {
            return Sensed {
                raw_cloud: PointCloud::new(pose.position, Vec::new()),
            };
        }
        let snapshot;
        let field = match self.dynamics {
            Some(world) if !world.is_static() => {
                snapshot = world.snapshot_field_cached(self.clock.now(), &mut self.pose_cache);
                &snapshot
            }
            _ => self.env.field(),
        };
        let scan = self.rig.capture(field, &pose);
        let mut sensed_points = match self.fault_injector.as_mut() {
            Some(injector) => injector.corrupt_sweep(pose.position, &scan.points),
            None => scan.points.clone(),
        };
        if let Some(burst) = frame.sensor_burst {
            sensed_points = burst_injector(burst).corrupt_sweep(pose.position, &sensed_points);
        }
        Sensed {
            raw_cloud: PointCloud::new(pose.position, sensed_points),
        }
    }

    /// Profiling: the spatial profile the governor decides from.
    fn profile(&self, sensed: &Sensed) -> SpatialProfile {
        let heading = direction_towards(self.drone.position, self.env.goal(), self.drone.velocity);
        let trajectory_ref = self.follower.as_ref().map(|f| f.trajectory().clone());
        let mut profile = self.cfg.profilers.profile(
            &sensed.raw_cloud,
            &self.map,
            trajectory_ref.as_ref(),
            self.drone.position,
            self.drone.speed(),
            heading,
        );
        if let Some(injector) = self.fault_injector.as_ref() {
            // Fog also limits how far the MAV can trust its view, which
            // the deadline equation must see.
            profile.visibility = profile.visibility.min(injector.visibility_cap());
        }
        profile
    }

    /// Governing: profile → policy.
    fn govern(&self, profile: &SpatialProfile) -> Policy {
        self.governor.decide(profile)
    }

    /// Perception operators: downsample, volume-limit, integrate, retain,
    /// export under the policy's knobs. A blackout or stale-map fault
    /// withholds integration entirely — the planner keeps exporting from
    /// the aging map, and the data age feeds the stale-derating law.
    fn apply_operators(
        &mut self,
        sensed: &Sensed,
        knobs: &KnobSettings,
        stale: bool,
    ) -> PlannerMap {
        if !stale {
            // Stamp the decay epoch before integrating: with voxel decay
            // enabled, this decision's occupied observations are "fresh"
            // and older ones age against this counter (no-op when decay
            // is off).
            self.map.set_epoch(self.decisions as u64);
            let downsampled = sensed.raw_cloud.downsampled(knobs.point_cloud_precision);
            let limited = downsampled.volume_limited(self.drone.position, knobs.octomap_volume);
            // Substrate note: free-space carving uses a step no finer than
            // 0.5 m regardless of the knob — the latency charged for the
            // stage comes from the calibrated model, so the carve step only
            // affects map fidelity, not the reported cost.
            let carve_step = knobs.point_cloud_precision.max(0.5);
            self.map.integrate_cloud(&limited, carve_step);
            self.map
                .retain_within(self.drone.position, self.cfg.map_retain_radius);
            self.last_integration_time = self.clock.now();
        }
        PlannerMap::export(
            &self.map,
            &ExportConfig::new(
                knobs.map_to_planner_precision,
                knobs.map_to_planner_volume,
                self.drone.position,
            ),
        )
    }

    /// Decision cost: the calibrated model's latency breakdown for the
    /// knob assignment.
    fn decision_cost(&self, knobs: &KnobSettings) -> LatencyBreakdown {
        self.cfg.latency.decision_breakdown(
            knobs.point_cloud_precision,
            knobs.octomap_volume,
            knobs.map_to_planner_precision,
            knobs.map_to_planner_volume,
            knobs.map_to_planner_precision,
            knobs.planner_volume,
            self.cfg.mode.is_aware(),
        )
    }

    /// Planning: blockage detection, speculation validation (plan-ahead),
    /// synchronous replanning with the fine-export fallback. Returns the
    /// blockage distance and whether a plan was installed; the masked
    /// planning latency of an adopted speculation is returned separately
    /// by [`DecisionCycle::take_speculation`].
    fn plan(
        &mut self,
        export: &PlannerMap,
        knobs: &KnobSettings,
        commanded_velocity: f64,
        speculative: Option<SpeculationVerdict>,
        in_danger: bool,
        forced_failure: bool,
    ) -> Planned {
        let static_blockage = self.first_blockage(export);
        // A moving obstacle predicted to cross the remaining trajectory
        // is a blockage too: it forces the same replan/brake machinery,
        // at the same clearance, judged at the distance the conflict
        // sits from the drone. A predicted box over the drone's *own*
        // position (`in_danger`) additionally forces an escape replan —
        // hovering inside a crossing lane is the one thing the MAV must
        // never do.
        let predicted_conflict = self.predicted_blockage();
        if predicted_conflict.is_some() || in_danger {
            self.dynamics_stats.dynamic_replans += 1;
        }
        let blockage = merge_blockages(static_blockage, predicted_conflict);
        let need_plan = self.need_plan(blockage) || in_danger;
        let mut replanned = false;
        // A forced planner failure (fault plan, or an unrecovered
        // watchdog abort) means no planner output exists this decision:
        // the synchronous path is skipped outright and `take_speculation`
        // already discarded any arrived speculation before the overlap
        // accounting. The caller's degradation ladder (or, for the
        // fault-oblivious baseline, nothing at all) takes over.
        if need_plan && !forced_failure {
            match speculative {
                // `take_speculation` already discards (and accounts for)
                // arrived speculations on in-danger decisions, so an
                // adopted verdict here is always safe to install.
                Some(SpeculationVerdict::Adopted(trajectory))
                | Some(SpeculationVerdict::Patched(trajectory)) => {
                    self.install_trajectory(trajectory);
                    replanned = true;
                }
                Some(SpeculationVerdict::Discarded) | None => {
                    replanned =
                        self.plan_synchronously(export, knobs, commanded_velocity, in_danger);
                }
            }
        }
        Planned {
            blockage,
            replanned,
            in_danger,
            needed: need_plan,
        }
    }

    fn first_blockage(&self, export: &PlannerMap) -> Option<f64> {
        let f = self.follower.as_ref()?;
        first_blockage_distance(
            f.trajectory(),
            f.progress_time(),
            export,
            self.planning_margin,
            self.drone.position,
        )
    }

    /// The moving-obstacle boxes predicted over the configured lookahead
    /// from the current instant (empty without dynamics).
    fn predicted_boxes(&mut self) -> Vec<Aabb> {
        match self.dynamics {
            Some(world) if !world.is_static() => world.predicted_boxes_cached(
                self.clock.now(),
                self.cfg.dynamic_lookahead,
                &mut self.pose_cache,
            ),
            _ => Vec::new(),
        }
    }

    fn predicted_relevance_range(&self) -> f64 {
        predicted_relevance_range(
            self.drone.speed(),
            self.cfg.dynamic_lookahead,
            self.planning_margin,
        )
    }

    /// Distance to the first remaining-trajectory point inside the
    /// predicted moving-obstacle occupancy within the relevance range,
    /// or `None` when clear (or in a static world) — the same
    /// [`PredictedHazards`] walk the planner's composed context and the
    /// speculation gate use.
    fn predicted_blockage(&self) -> Option<f64> {
        let f = self.follower.as_ref()?;
        let remaining = f.trajectory().remaining_from(f.progress_time());
        self.hazards
            .first_conflict(remaining.points().iter().map(|p| p.position))
            .map(|p| p.distance(self.drone.position))
    }

    fn in_predicted_danger(&self) -> bool {
        self.hazards
            .any_within(self.drone.position, self.planning_margin)
    }

    fn need_plan(&self, blockage: Option<f64>) -> bool {
        self.follower.as_ref().map(|f| f.finished()).unwrap_or(true)
            || self.decisions_since_plan >= self.cfg.replan_every
            || blockage.is_some()
    }

    fn install_trajectory(&mut self, trajectory: Trajectory) {
        match self.follower.as_mut() {
            Some(f) => f.replace_trajectory(trajectory),
            None => self.follower = Some(TrajectoryFollower::new(trajectory, 0.5)),
        }
        self.decisions_since_plan = 0;
    }

    /// The synchronous planning path (identical to the pre-plan-ahead
    /// behaviour): refresh the long-lived checker from the export delta,
    /// plan, and on `StartBlocked` retry against a worst-case-precision
    /// export.
    ///
    /// With [`crate::MissionConfig::predicted_costmap`] on (and predicted
    /// boxes present), the search runs against the composed
    /// [`HazardContext`] so it routes around predicted lanes in one shot;
    /// a failed one-shot search falls back to the retained reject-loop
    /// reference path (static-only plan, posterior predicted veto below).
    /// Escape plans always use the bare checker: the drone is already
    /// inside a predicted box and any way out starts in conflict.
    fn plan_synchronously(
        &mut self,
        export: &PlannerMap,
        knobs: &KnobSettings,
        commanded_velocity: f64,
        escape: bool,
    ) -> bool {
        let plan_timer = roborun_trace::timer();
        let local_goal = self.local_goal(export);
        let bounds = self.sampling_bounds(self.drone.position, local_goal);
        let check_step = planning_check_step(knobs);
        let planner = planner_for_with_reuse(
            self.planner_seed_base,
            self.decisions,
            knobs,
            self.planning_margin,
            sampling_mix_for(self.cfg.hazard_biased_sampling),
            self.cfg.planner_reuse,
        );
        match self.collision.as_mut() {
            Some(checker) => {
                checker.update_map(export.clone());
                checker.set_check_step(check_step);
            }
            None => {
                self.collision = Some(CollisionChecker::new(
                    export.clone(),
                    self.planning_margin,
                    check_step,
                ));
            }
        }
        let one_shot = self.cfg.predicted_costmap && !escape && !self.hazards.is_empty();
        let cruise = commanded_velocity.max(0.5);
        // Cross-decision reuse: rebase the retained tree when a usable
        // delta exists (escape plans start inside a predicted box — cold
        // start those). With the flag off `prepare_warm` is a no-op and
        // the scratch only contributes allocation reuse.
        let warm_ready = !escape && self.reuse.prepare_warm(self.cfg.planner_reuse, export);
        let epoch_before = self.reuse.scratch.tree_epoch();
        let PlanReuse {
            scratch,
            added_boxes,
            ..
        } = &mut self.reuse;
        let warm = warm_ready.then(|| WarmStart {
            added_boxes,
            added_clearance: self.planning_margin,
            hazard_boxes: self.hazards.boxes(),
            hazard_clearance: self.hazards.clearance(),
            sample_step: check_step,
        });
        let mut outcome = plan_through_hazards(
            &planner,
            self.collision.as_mut().expect("checker just initialised"),
            &self.hazards,
            one_shot,
            self.drone.position,
            local_goal,
            &bounds,
            cruise,
            scratch,
            warm.as_ref(),
        );
        self.reuse
            .after_plan(self.cfg.planner_reuse, epoch_before, export);
        if matches!(outcome, Err(PlanError::StartBlocked)) {
            // A coarse export voxel can swallow the drone's own
            // (physically free) position. Fall back to the worst-case
            // export precision for this plan — the same recovery a
            // spatial-oblivious pipeline gets for free.
            let fine_export = PlannerMap::export(
                &self.map,
                &ExportConfig::new(
                    self.map.resolution(),
                    knobs.map_to_planner_volume,
                    self.drone.position,
                ),
            );
            outcome = planner.plan(
                &fine_export,
                self.drone.position,
                local_goal,
                &bounds,
                commanded_velocity.max(0.5),
            );
        }
        if matches!(outcome, Err(PlanError::StartBlocked))
            && self.dynamics.is_some_and(|world| !world.is_static())
        {
            // Wedged: the drone's own position sits inside the margin
            // shell of mapped occupancy even at the finest export. Static
            // missions cannot reach this state (planned paths keep the
            // margin), but a dynamic mission can — an escape manoeuvre or
            // a passing actor can leave the MAV parked against a surface,
            // where every plan is start-blocked forever. Back straight
            // out of the margin shell so the next decision can plan.
            let retreat = self.retreat_trajectory(export);
            self.install_trajectory(retreat);
            return true;
        }
        match outcome {
            Ok((trajectory, stats)) => {
                self.reuse.stats.record(&stats);
                emit_plan_span(&stats, self.clock.now(), &plan_timer);
                // A fresh plan that crosses the predicted moving-obstacle
                // occupancy is rejected like a failed plan: the planner
                // only knows where actors *are* (their mapped voxels),
                // the prediction knows where they may be within the
                // lookahead. Rejection leaves the emergency-stop policy
                // in charge until the conflict clears. The one exception
                // is an *escape* plan: when the drone's own position is
                // already inside a predicted box, any plan necessarily
                // starts in conflict and moving out beats hovering in a
                // crossing lane.
                if !escape
                    && !self
                        .hazards
                        .path_clear(trajectory.points().iter().map(|p| p.position))
                {
                    return false;
                }
                self.install_trajectory(trajectory);
                true
            }
            Err(_) => false,
        }
    }

    fn retreat_trajectory(&self, export: &PlannerMap) -> Trajectory {
        retreat_trajectory(export, self.drone.position, self.planning_margin)
    }

    /// The RRT sampling bounds for this mission.
    fn sampling_bounds(&self, start: Vec3, goal: Vec3) -> Aabb {
        planning_bounds(start, goal, self.env.bounds())
    }

    fn local_goal(&self, export: &PlannerMap) -> Vec3 {
        local_goal(
            self.env,
            export,
            self.drone.position,
            self.cfg.planning_horizon,
            self.cfg.drone.body_radius * 1.5,
        )
    }

    /// Emergency stop: the remaining trajectory collides with the freshly
    /// observed map *within stopping range* and no replacement was found
    /// this decision — brake and hover until a valid plan exists. Never
    /// triggered while the drone sits inside predicted moving-obstacle
    /// occupancy: braking there parks the MAV in a crossing lane, and
    /// the escape plan (or the old trajectory) moving it *anywhere* is
    /// safer than holding station.
    fn emergency_stop(&mut self, planned: &Planned, latency: f64) {
        if planned.in_danger {
            return;
        }
        if let (Some(distance), false) = (planned.blockage, planned.replanned) {
            let stop_distance = self
                .governor
                .config()
                .budgeter
                .stopping
                .stopping_distance(self.drone.speed());
            // Reaction distance: the drone keeps moving for one decision
            // epoch before the next chance to brake.
            let reaction = self.drone.speed() * latency.max(self.cfg.min_epoch);
            if blockage_is_imminent(
                distance,
                stop_distance,
                reaction,
                2.0 * self.cfg.drone.body_radius,
            ) {
                self.follower = None;
            }
        }
    }

    // ----------------------------------------------------- plan-ahead

    /// Joins the in-flight speculation (if any) and validates it against
    /// the fresh export. Returns the verdict and, for an adopted or
    /// patched plan, the planning latency masked by the overlap window.
    fn take_speculation(
        &mut self,
        worker: Option<&mut PlanAheadWorker>,
        export: &PlannerMap,
        knobs: &KnobSettings,
        breakdown: &LatencyBreakdown,
        in_danger: bool,
        forced_failure: bool,
    ) -> (Option<SpeculationVerdict>, f64) {
        let (Some(worker), Some(pending)) = (worker, self.pending.take()) else {
            return (None, 0.0);
        };
        // A hung-up worker (its thread panicked) degrades to a discarded
        // speculation — the mission falls back to synchronous replanning
        // instead of tearing down mid-flight.
        let Ok(outcome) = worker.outcomes.recv() else {
            self.trace_speculation_end("worker_lost", 0.0);
            return (Some(SpeculationVerdict::Discarded), 0.0);
        };
        let fresh_goal = self.local_goal(export);
        let mut verdict = validate_speculation(
            &outcome.outcome,
            &pending.snapshot,
            pending.start,
            pending.goal,
            export,
            fresh_goal,
            self.drone.position,
            self.planning_margin * 0.6,
            planning_check_step(knobs),
        );
        // Dynamic worlds add one more gate: a speculative trajectory is
        // discarded when it crosses the *predicted* occupancy of a
        // moving obstacle even though the voxel delta cleared it — the
        // delta only knows where actors were, the prediction knows where
        // they may be within the lookahead — and unconditionally on an
        // in-danger decision (the drone needs an escape plan, not the
        // routine progress plan that was speculated). Discarding here,
        // before the hit/masked accounting below, keeps the overlap
        // metrics honest: a dropped speculation masks nothing.
        if let SpeculationVerdict::Adopted(t) | SpeculationVerdict::Patched(t) = &verdict {
            if forced_failure {
                // The fault plan failed this decision's planner outright;
                // the speculation is the same planner's output, so it is
                // lost with it (before the hit/masked accounting — a
                // dropped speculation masks nothing).
                verdict = SpeculationVerdict::Discarded;
            } else if in_danger
                || !self
                    .hazards
                    .path_clear(t.points().iter().map(|p| p.position))
            {
                self.dynamics_stats.predicted_invalidations += 1;
                verdict = SpeculationVerdict::Discarded;
            }
        }
        let masked = match verdict {
            SpeculationVerdict::Adopted(_) | SpeculationVerdict::Patched(_) => {
                self.stats.hits += 1;
                let masked = breakdown.planning.min(pending.window);
                self.stats.masked_latency += masked;
                masked
            }
            SpeculationVerdict::Discarded => 0.0,
        };
        if roborun_trace::armed() {
            let label = match &verdict {
                SpeculationVerdict::Adopted(_) => "adopted",
                SpeculationVerdict::Patched(_) => "patched",
                SpeculationVerdict::Discarded => "discarded",
            };
            self.trace_speculation_end(label, masked);
        }
        (Some(verdict), masked)
    }

    /// Deterministic async-span id of the most recently launched
    /// speculation: `(track << 32) | launch counter`. Valid between a
    /// launch and its join because at most one speculation is in flight.
    fn speculation_trace_id(&self) -> u64 {
        (u64::from(roborun_trace::collector::current_track()) << 32) | self.stats.attempts as u64
    }

    /// Closes the in-flight speculation's async span and records its
    /// outcome as an instant. No-op when disarmed.
    fn trace_speculation_end(&self, label: &str, masked: f64) {
        if !roborun_trace::armed() {
            return;
        }
        let now = self.clock.now();
        roborun_trace::collector::async_end(
            roborun_trace::SpanKind::Speculation,
            self.speculation_trace_id(),
            now,
            &[("masked", masked)],
        );
        roborun_trace::collector::instant_labeled(
            roborun_trace::SpanKind::SpeculationOutcome,
            label,
            now,
            &[("masked", masked)],
        );
    }

    /// Launches a speculation for the next decision when a replan is
    /// predictably due (`replan_every` cadence or a finished trajectory —
    /// blockages cannot be predicted) and the long-lived checker exists to
    /// snapshot. Runs at the end of a decision, after the epoch advance:
    /// the drone position is exactly what the next planning stage will
    /// see.
    fn speculate(
        &mut self,
        worker: Option<&mut PlanAheadWorker>,
        export: &PlannerMap,
        knobs: &KnobSettings,
        commanded_velocity: f64,
        window: f64,
    ) {
        let Some(worker) = worker else { return };
        if !self.mission_open() {
            return;
        }
        let predicted_need = self.follower.as_ref().map(|f| f.finished()).unwrap_or(true)
            || self.decisions_since_plan + 1 >= self.cfg.replan_every;
        if !predicted_need {
            return;
        }
        if self.collision.is_none() {
            return;
        }
        let goal = self.local_goal(export);
        let planner = planner_for(
            self.planner_seed_base,
            self.decisions + 1,
            knobs,
            self.planning_margin,
            sampling_mix_for(self.cfg.hazard_biased_sampling),
        );
        let bounds = self.sampling_bounds(self.drone.position, goal);
        // Refresh the snapshot checker to this decision's export (an exact
        // delta patch, same as the synchronous path would apply) and build
        // its broad-phase so the worker never pays for it.
        let checker = self.collision.as_mut().expect("checked above");
        checker.update_map(export.clone());
        checker.set_check_step(planning_check_step(knobs));
        checker.prebuild_broad_phase();
        // With the predicted costmap on, the speculative search plans
        // through the same composed context the synchronous path uses —
        // re-anchored at the post-epoch position the speculation starts
        // from (the shared policy in [`speculation_hazards`]).
        let hazards = speculation_hazards(
            &self.hazards,
            self.cfg.predicted_costmap,
            self.drone.position,
            self.drone.speed(),
            self.cfg.dynamic_lookahead,
            self.planning_margin,
        );
        let request = SpeculationRequest {
            planner,
            checker: checker.clone(),
            hazards,
            start: self.drone.position,
            goal,
            bounds,
            cruise: commanded_velocity.max(0.5),
            launched_at: self.clock.now(),
        };
        if worker.requests.send(request).is_ok() {
            self.stats.attempts += 1;
            if roborun_trace::armed() {
                roborun_trace::collector::async_begin(
                    roborun_trace::SpanKind::Speculation,
                    self.speculation_trace_id(),
                    self.clock.now(),
                    &[("decision", self.decisions as f64), ("window", window)],
                );
            }
            self.pending = Some(PendingSpeculation {
                snapshot: export.clone(),
                start: self.drone.position,
                goal,
                window,
            });
        }
    }

    // ------------------------------------------------------- the driver

    /// Runs one full decision: every stage in order, the plan-ahead
    /// join/validate and re-launch included. The caller loops while
    /// [`DecisionCycle::mission_open`].
    pub(crate) fn run_decision(&mut self, mut worker: Option<&mut PlanAheadWorker>) {
        self.decisions += 1;
        // Tracing: one relaxed load when disarmed; everything below is
        // behind this flag (or inside the collector's own gates).
        let trace_on = roborun_trace::armed();
        let decision_timer = roborun_trace::timer();
        let t0 = self.clock.now();
        let watchdog_before = self.degradation_stats.watchdog_fires;

        // The fault plan's verdict for this decision: a pure function of
        // (plan seed, decision index), identical across drivers and runs.
        let frame = self
            .fault_plan
            .as_ref()
            .map(|plan| plan.frame(self.decisions as u64))
            .unwrap_or_default();
        self.degradation_stats.faults_injected += frame.injected_count();
        if trace_on && frame.injected_count() > 0 {
            roborun_trace::collector::instant(
                roborun_trace::SpanKind::FaultInjected,
                t0,
                &[("channels", frame.injected_count() as f64)],
            );
        }

        // sense → profile → govern → operate → cost.
        let sensed = self.sense(&frame);
        let profile = self.profile(&sensed);
        let policy = self.govern(&profile);
        let knobs = policy.knobs;
        let stale_map = frame.sensor_blackout || frame.map_stale;
        let export = self.apply_operators(&sensed, &knobs, stale_map);
        let mut breakdown = self.decision_cost(&knobs);

        // Planner fault channels: the watchdog/retry policy (degradation
        // armed) or the baseline's serialised spike — the thesis of the
        // fault sweep in one branch.
        let (mut degradation, forced_failure) = apply_planner_faults(
            &mut breakdown,
            &frame,
            &self.cfg.degradation,
            &mut self.degradation_stats,
        );
        if trace_on && self.degradation_stats.watchdog_fires > watchdog_before {
            roborun_trace::collector::instant(roborun_trace::SpanKind::WatchdogFire, t0, &[]);
        }
        // Moving-obstacle prediction for this decision's instant (empty
        // in static worlds), folded into the shared hazard source every
        // consumer below — blockage detection, the planner's composed
        // context, the speculation gate — queries. The retarget is an
        // incremental patch: only boxes that moved touch the source.
        let mut predicted = self.predicted_boxes();
        if !self.peers.is_empty() {
            // Fleet missions: peer corridors ride the same soft-hazard
            // path as predicted occupancy, so every consumer below covers
            // them for free. The relevance range still gates far peers —
            // a corridor beyond reach this decision costs nothing.
            predicted.extend_from_slice(self.peers.boxes());
        }
        let range = self.predicted_relevance_range();
        self.hazards
            .retarget(&predicted, self.drone.position, range);
        let in_danger = self.in_predicted_danger();

        // Plan-ahead join: an adopted speculation masks the planning stage
        // up to the overlap window; everything downstream (safe velocity,
        // epoch, telemetry) sees the critical-path latency.
        self.decisions_since_plan += 1;
        let (speculative, masked) = self.take_speculation(
            worker.as_deref_mut(),
            &export,
            &knobs,
            &breakdown,
            in_danger,
            forced_failure,
        );
        let latency = breakdown.critical_path(masked);

        // Safe velocity under the budget law (Eq. 1), on the critical path:
        // masked planning work never delayed the MAV's reaction. In a
        // dynamic world the reaction budget additionally absorbs the worst
        // closing speed of any sensed actor (the oblivious baseline cannot:
        // its velocity is fixed at design time — the thesis again).
        // Actors that can reach the visible margin within the lookahead
        // eat into the reaction budget; anything farther is throttling
        // the mission for an obstacle that cannot touch it.
        let closing_speed = match self.dynamics {
            Some(world) if !world.is_static() => world.max_closing_speed_cached(
                self.clock.now(),
                self.drone.position,
                profile.visibility + world.max_actor_speed() * self.cfg.dynamic_lookahead,
                &mut self.pose_cache,
            ),
            _ => 0.0,
        };
        // Stale-perception derating: with degradation armed and the map
        // older than this decision (a blackout or stale epoch withheld
        // integration), the governor's data-age law shaves the visible
        // margin by how far the world may have drifted since the last
        // integration — the same structure as the closing-speed term.
        // `data_age` is exactly 0.0 on decisions that integrated, so the
        // healthy path never enters this arm.
        let data_age = self.clock.now() - self.last_integration_time;
        let derate = self.cfg.degradation.enabled && data_age > 0.0;
        let commanded_velocity = match self.cfg.mode {
            RuntimeMode::SpatialOblivious => self.baseline_velocity,
            RuntimeMode::SpatialAware if derate => self.governor.safe_velocity_stale(
                breakdown.critical_path(masked),
                profile.visibility,
                closing_speed,
                data_age,
            ),
            RuntimeMode::SpatialAware if closing_speed > 0.0 => {
                self.governor.safe_velocity_closing(
                    breakdown.critical_path(masked),
                    profile.visibility,
                    closing_speed,
                )
            }
            RuntimeMode::SpatialAware => {
                self.governor
                    .safe_velocity_overlapped(&breakdown, masked, profile.visibility)
            }
        };
        if derate && degradation == Degradation::Healthy {
            degradation = Degradation::StalePerception;
        }

        // Plan (or adopt), then the degradation ladder and the
        // emergency-stop policy.
        let planned = self.plan(
            &export,
            &knobs,
            commanded_velocity,
            speculative,
            in_danger,
            forced_failure,
        );
        let mut hover = false;
        if self.cfg.degradation.enabled {
            if forced_failure && planned.needed && !planned.replanned {
                // Fallback ladder: reuse the last valid trajectory while
                // it is clear, hover in place otherwise, and bottom out
                // in a wedge-retreat safe-stop once hovering has not
                // bought a plan for `hover_limit` consecutive decisions.
                let reusable = self.follower.as_ref().is_some_and(|f| !f.finished());
                if reusable && planned.blockage.is_none() && !planned.in_danger {
                    degradation = Degradation::ReusedTrajectory;
                    self.hover_streak = 0;
                } else if self.hover_streak >= self.cfg.degradation.hover_limit {
                    let retreat = self.retreat_trajectory(&export);
                    self.install_trajectory(retreat);
                    self.safe_stopped = true;
                    self.degradation_stats.safe_stops += 1;
                    degradation = Degradation::SafeStop;
                } else {
                    hover = true;
                    self.hover_streak += 1;
                    degradation = Degradation::Hover;
                }
            } else {
                self.hover_streak = 0;
                // Perception too old to trust: hold position until fresh
                // data arrives rather than flying through unsensed space.
                // Hovering is indefinitely safe, so stale hovers never
                // escalate towards the safe-stop.
                if data_age > self.cfg.degradation.stale_hover_age {
                    hover = true;
                    degradation = Degradation::Hover;
                }
            }
        }
        if !hover && degradation != Degradation::SafeStop {
            self.emergency_stop(&planned, latency);
        }
        if degradation.is_degraded() {
            self.degradation_stats.degraded_decisions += 1;
        }

        // Record.
        let cpu_sample = self
            .cfg
            .cpu
            .sample(breakdown.compute_total(), latency.max(self.cfg.min_epoch));
        if trace_on {
            if degradation != self.last_degradation {
                roborun_trace::collector::instant_labeled(
                    roborun_trace::SpanKind::DegradationTransition,
                    degradation_label(degradation),
                    t0,
                    &[],
                );
            }
            // The decision span covers the critical-path latency window;
            // the seven stage spans partition it exactly (the planning
            // stage is reduced by the masked plan-ahead share), so the
            // exporter's coverage check holds by construction.
            roborun_trace::collector::complete(
                roborun_trace::SpanKind::Decision,
                t0,
                latency,
                roborun_trace::timer_ns(&decision_timer),
                &[
                    ("decision", self.decisions as f64),
                    ("velocity", commanded_velocity),
                    ("visibility", profile.visibility),
                    ("masked", masked),
                    ("cpu", cpu_sample.utilization),
                ],
            );
            let masked_planning = masked.clamp(0.0, breakdown.planning);
            let stage_durations = [
                breakdown.point_cloud,
                breakdown.perception,
                breakdown.perception_to_planning,
                breakdown.planning - masked_planning,
                breakdown.control,
                breakdown.communication,
                breakdown.runtime_overhead,
            ];
            let mut cursor = t0;
            for (kind, duration) in roborun_trace::SpanKind::STAGES.iter().zip(stage_durations) {
                roborun_trace::collector::complete(*kind, cursor, duration, 0, &[]);
                cursor += duration;
            }
        }
        self.last_degradation = degradation;
        self.telemetry.push(DecisionRecord {
            time: self.clock.now(),
            position: self.drone.position,
            commanded_velocity,
            visibility: profile.visibility,
            deadline: policy.deadline,
            knobs,
            breakdown,
            cpu_utilization: cpu_sample.utilization,
            zone: Some(zone_label(self.env.zone_at(self.drone.position))),
            masked_latency: masked,
            degradation,
        });

        // Advance the world for the (critical-path) epoch. Moving actors
        // are collision-tested at their true pose of every substep.
        let epoch = latency.max(self.cfg.min_epoch);
        let follower = &mut self.follower;
        let dynamics = self.dynamics;
        let pose_cache = &mut self.pose_cache;
        let body_margin = self.cfg.drone.body_radius * 0.8;
        self.collided = advance_epoch(
            &mut self.drone,
            &mut self.clock,
            &mut self.energy_joules,
            self.env,
            &self.cfg.drone,
            &self.cfg.energy,
            epoch,
            commanded_velocity,
            |position, dt| {
                if hover {
                    // A hovering decision issues no motion command: the
                    // physics brake the MAV in place. The follower keeps
                    // its progress so a later decision can resume it.
                    return None;
                }
                match follower.as_mut() {
                    Some(f) if !f.finished() => {
                        let cmd = f.update(position, dt);
                        Some((cmd.target, cmd.speed))
                    }
                    _ => None,
                }
            },
            |position, time| {
                dynamics.is_some_and(|world| {
                    world.actor_hit_cached(position, time, body_margin, pose_cache)
                })
            },
        );
        self.flown_path.push(self.drone.position);
        self.flown_times.push(self.clock.now());
        if !self.collided
            && self.drone.position.distance(self.env.goal()) <= self.cfg.goal_tolerance
        {
            self.reached_goal = true;
        }

        // Plan-ahead launch: speculate the next decision's plan while the
        // epoch just charged "executes" (the worker overlaps with the next
        // decision's sensing/perception work on this thread).
        self.speculate(worker, &export, &knobs, commanded_velocity, epoch);
    }

    /// Final mission result.
    pub(crate) fn finish(self) -> MissionResult {
        if roborun_trace::armed() {
            // A speculation launched on the final decision never joins;
            // close its async span so exported traces stay balanced, and
            // spill this thread's buffered events at the mission boundary.
            if self.pending.is_some() {
                self.trace_speculation_end("unjoined", 0.0);
            }
            roborun_trace::collector::flush();
        }
        let mission_time = self.clock.now().max(1e-9);
        let metrics = finalize_metrics(
            self.cfg.mode,
            mission_time,
            self.energy_joules,
            &self.telemetry,
            &self.drone,
            self.decisions,
            self.reached_goal,
            self.collided,
            &self.stats,
            &self.dynamics_stats,
            &self.degradation_stats,
            &self.reuse.stats,
        );
        MissionResult {
            metrics,
            telemetry: self.telemetry,
            flown_path: self.flown_path,
            flown_times: self.flown_times,
        }
    }
}
