//! The mission pipeline run as a middleware node graph.
//!
//! The paper implements RoboRun "on top of the Robot Operating System
//! (ROS), which provides inter-process communication" (Section III-A); the
//! direct [`crate::MissionRunner`] collapses that transport into a modeled
//! `comm` term. This module is the faithful alternative: the same
//! perception → runtime → planning → control loop, but with every stage a
//! named node on a [`roborun_middleware::MessageBus`] and every
//! stage-to-stage hand-off an actual typed message on a topic. The
//! communication slice of each decision's latency breakdown is then
//! *measured* from the bytes that really crossed the bus rather than
//! modeled, and the node graph / per-topic traffic can be inspected the way
//! `rqt_graph` and `ros2 topic info` would show them.
//!
//! The physics-facing edge (reading the drone state, applying velocity
//! commands at the 4 Hz control substep) stays a direct call, exactly as the
//! flight-controller interface does on a real MAV.
//!
//! With [`MissionConfig::plan_ahead`] enabled the planner node overlaps
//! planning with execution exactly like the direct runner: a scoped
//! worker thread speculatively plans decision *k + 1* from a snapshot
//! while control executes decision *k*, the speculative trajectory
//! crosses the bus on `/planning/speculation` (measured bytes), and the
//! planning node validates the received copy against the fresh export on
//! its subscriber side before adopting it (the `mission::cycle`
//! snapshot/validate/adopt contract). Adopted speculations mask the
//! planning stage from the decision's critical path, so the
//! measured-comm driver reports `masked_planning_latency` /
//! `plan_ahead_attempts` too. With the flag off no worker exists and the
//! pipeline is bit-identical to the synchronous behaviour.

use crate::cycle::{
    self, direction_towards, planning_bounds, zone_label, DegradationStats, DynamicsStats,
    PlanAheadStats, PlanAheadWorker, SpeculationRequest, SpeculationVerdict,
};
use crate::runner::{MissionConfig, MissionResult};
use roborun_control::TrajectoryFollower;
use roborun_core::{
    DecisionRecord, Degradation, Governor, MissionTelemetry, Policy, Profilers, RuntimeMode,
    SpatialProfile,
};
use roborun_dynamics::DynamicWorld;
use roborun_env::{Environment, ObstacleField};
use roborun_faults::{FaultFrame, FaultPlan, FaultyBus};
use roborun_geom::{Aabb, Vec3};
use roborun_middleware::{
    CommLatencyModel, GraphInfo, Message, MessageBus, MiddlewareError, Node, Publisher, QosProfile,
    Stamped, Subscription,
};
use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
use roborun_planning::{
    swept_polyline_boxes, CollisionChecker, PlanError, PlanStats, PredictedHazards, Trajectory,
    WarmStart,
};
use roborun_sim::{CameraRig, DroneState, SimClock, StoppingModel};
use serde::{Deserialize, Serialize};
use std::sync::mpsc;

// ---------------------------------------------------------------------------
// Message types
// ---------------------------------------------------------------------------

/// A point cloud sample on `/sensors/points`.
#[derive(Debug, Clone)]
pub struct PointCloudMsg(pub PointCloud);

impl Message for PointCloudMsg {
    fn approx_size_bytes(&self) -> usize {
        // origin + 3 × f64 per point, the size a PointCloud2 payload would
        // have at this density.
        24 + self.0.len() * 24
    }
    fn type_name() -> &'static str {
        "roborun/PointCloud"
    }
}

/// Drone odometry on `/sensors/odometry`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OdometryMsg {
    /// Position (metres).
    pub position: Vec3,
    /// Velocity vector (m/s).
    pub velocity: Vec3,
    /// Ground speed (m/s).
    pub speed: f64,
}

impl Message for OdometryMsg {
    fn approx_size_bytes(&self) -> usize {
        56
    }
    fn type_name() -> &'static str {
        "roborun/Odometry"
    }
}

/// The profiled spatial state on `/runtime/profile`.
#[derive(Debug, Clone)]
pub struct ProfileMsg(pub SpatialProfile);

impl Message for ProfileMsg {
    fn approx_size_bytes(&self) -> usize {
        96 + self.0.upcoming_waypoints.len() * 40
    }
    fn type_name() -> &'static str {
        "roborun/SpatialProfile"
    }
}

/// The governor's policy on `/runtime/policy`.
#[derive(Debug, Clone, Copy)]
pub struct PolicyMsg(pub Policy);

impl Message for PolicyMsg {
    fn approx_size_bytes(&self) -> usize {
        80
    }
    fn type_name() -> &'static str {
        "roborun/Policy"
    }
}

/// The pruned planner map on `/perception/planner_map`.
#[derive(Debug, Clone)]
pub struct PlannerMapMsg(pub PlannerMap);

impl Message for PlannerMapMsg {
    fn approx_size_bytes(&self) -> usize {
        // Two corners per occupied box.
        32 + self.0.len() * 48
    }
    fn type_name() -> &'static str {
        "roborun/PlannerMap"
    }
}

/// A freshly planned trajectory on `/planning/trajectory`.
#[derive(Debug, Clone)]
pub struct TrajectoryMsg(pub Trajectory);

impl Message for TrajectoryMsg {
    fn approx_size_bytes(&self) -> usize {
        16 + self.0.len() * 56
    }
    fn type_name() -> &'static str {
        "roborun/Trajectory"
    }
}

/// A speculative (plan-ahead) trajectory on `/planning/speculation`.
///
/// With [`MissionConfig::plan_ahead`] enabled, the planner node's worker
/// thread plans decision *k + 1* while control executes decision *k*. The
/// worker's answer crosses the bus **before** validation: the planning
/// node publishes the raw speculative trajectory here and validates the
/// copy it receives back on its own subscription — subscriber-side
/// validation, against the fresh export that arrived on the node's map
/// subscription rather than the snapshot the worker planned from (the
/// `mission::cycle` snapshot/validate/adopt contract). The loopback hop
/// charges the transport bytes a planner subprocess would really ship,
/// so the measured-comm path accounts for speculation traffic too.
#[derive(Debug, Clone)]
pub struct SpeculationMsg(pub Trajectory);

impl Message for SpeculationMsg {
    fn approx_size_bytes(&self) -> usize {
        16 + self.0.len() * 56
    }
    fn type_name() -> &'static str {
        "roborun/SpeculativeTrajectory"
    }
}

/// Planner feedback on `/planning/feedback`.
///
/// The perception node listens to this to fall back to the worst-case
/// export precision when the planner reports that the drone's own position
/// is swallowed by a coarse occupied voxel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanningFeedbackMsg {
    /// `true` when the last planning attempt failed because the start
    /// position was inside an occupied region of the exported map.
    pub start_blocked: bool,
}

impl Message for PlanningFeedbackMsg {
    fn approx_size_bytes(&self) -> usize {
        8
    }
    fn type_name() -> &'static str {
        "roborun/PlanningFeedback"
    }
}

/// Controller progress feedback on `/control/status`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlStatusMsg {
    /// `true` when the active trajectory has been completed.
    pub finished: bool,
    /// Progress (seconds of trajectory time) along the active trajectory.
    pub progress_time: f64,
    /// Current cross-track error (metres).
    pub tracking_error: f64,
}

impl Message for ControlStatusMsg {
    fn approx_size_bytes(&self) -> usize {
        24
    }
    fn type_name() -> &'static str {
        "roborun/ControlStatus"
    }
}

// ---------------------------------------------------------------------------
// Pipeline nodes
// ---------------------------------------------------------------------------

/// Drains a subscription to its newest sample like
/// [`Subscription::latest`], but surfaces structural failures instead of
/// silently swallowing them: a corrupted payload
/// ([`MiddlewareError::PayloadTypeCorrupted`]) bumps the node's
/// corruption counter and the frame is *skipped* — the consumer keeps
/// its previous cached value and retries on the next sample — rather
/// than terminating the pipeline. The counters surface as degraded
/// decisions in the telemetry.
fn latest_checked<T: Message>(sub: &Subscription<T>, corrupted: &mut u64) -> Option<Stamped<T>> {
    let mut newest = None;
    loop {
        match sub.recv_checked() {
            Ok(Some(sample)) => newest = Some(sample),
            Ok(None) => return newest,
            Err(MiddlewareError::PayloadTypeCorrupted { .. }) => *corrupted += 1,
            // Any other structural failure (unknown topic/subscription —
            // a peer dropped mid-mission) leaves the cached value in
            // place; the caller's None-handling degrades gracefully.
            Err(_) => return newest,
        }
    }
}

struct SensorNode {
    rig: CameraRig,
    points_pub: Publisher<PointCloudMsg>,
    odom_pub: Publisher<OdometryMsg>,
}

impl SensorNode {
    fn new(node: &Node, rig: CameraRig) -> Self {
        SensorNode {
            rig,
            points_pub: node.publisher("/sensors/points").expect("points topic"),
            odom_pub: node.publisher("/sensors/odometry").expect("odometry topic"),
        }
    }

    fn spin(&self, field: &ObstacleField, drone: &DroneState, frame: &FaultFrame) {
        let pose = drone.pose();
        let cloud = if frame.sensor_blackout {
            // The whole sweep is lost: an empty cloud still crosses the
            // bus (the frame header a real driver would publish), so
            // downstream nodes observe the blackout rather than hanging.
            PointCloud::new(pose.position, Vec::new())
        } else {
            let scan = self.rig.capture(field, &pose);
            let points = match frame.sensor_burst {
                Some(burst) => {
                    cycle::burst_injector(burst).corrupt_sweep(pose.position, &scan.points)
                }
                None => scan.points,
            };
            PointCloud::new(pose.position, points)
        };
        let _ = self.points_pub.publish(PointCloudMsg(cloud));
        let _ = self.odom_pub.publish(OdometryMsg {
            position: drone.position,
            velocity: drone.velocity,
            speed: drone.speed(),
        });
    }
}

struct PerceptionNode {
    map: OccupancyMap,
    profilers: Profilers,
    map_retain_radius: f64,
    cloud_sub: Subscription<PointCloudMsg>,
    odom_sub: Subscription<OdometryMsg>,
    policy_sub: Subscription<PolicyMsg>,
    trajectory_sub: Subscription<TrajectoryMsg>,
    feedback_sub: Subscription<PlanningFeedbackMsg>,
    profile_pub: Publisher<ProfileMsg>,
    map_pub: Publisher<PlannerMapMsg>,
    latest_cloud: Option<PointCloud>,
    latest_odom: Option<OdometryMsg>,
    latest_policy: Option<Policy>,
    latest_trajectory: Option<Trajectory>,
    planner_start_blocked: bool,
    /// Decision counter stamped onto the map as the voxel-decay epoch.
    epochs: u64,
    /// A cloud sample arrived since the last integration — a lossy link
    /// dropping `/sensors/points` must not let a stale cached cloud
    /// masquerade as fresh sensing (the data-age law depends on it).
    cloud_fresh: bool,
    /// Corrupted samples skipped by the checked subscription drains.
    corrupted: u64,
}

impl PerceptionNode {
    fn new(node: &Node, config: &MissionConfig, map_resolution: f64) -> Self {
        let mut map = OccupancyMap::new(map_resolution);
        map.set_stale_decay(config.voxel_decay);
        PerceptionNode {
            map,
            profilers: config.profilers,
            map_retain_radius: config.map_retain_radius,
            cloud_sub: node
                .subscribe("/sensors/points", QosProfile::sensor_data())
                .expect("points subscription"),
            odom_sub: node
                .subscribe("/sensors/odometry", QosProfile::sensor_data())
                .expect("odometry subscription"),
            policy_sub: node
                .subscribe("/runtime/policy", QosProfile::latched(1))
                .expect("policy subscription"),
            trajectory_sub: node
                .subscribe("/planning/trajectory", QosProfile::latched(1))
                .expect("trajectory subscription"),
            feedback_sub: node
                .subscribe("/planning/feedback", QosProfile::latched(1))
                .expect("feedback subscription"),
            profile_pub: node.publisher("/runtime/profile").expect("profile topic"),
            map_pub: node
                .publisher("/perception/planner_map")
                .expect("planner map topic"),
            latest_cloud: None,
            latest_odom: None,
            latest_policy: None,
            latest_trajectory: None,
            planner_start_blocked: false,
            epochs: 0,
            cloud_fresh: false,
            corrupted: 0,
        }
    }

    /// First half of the perception stage: ingest the newest sensor data
    /// and publish the profiled spatial state the governor needs.
    fn profile_spin(&mut self, goal: Vec3) {
        if let Some(sample) = latest_checked(&self.cloud_sub, &mut self.corrupted) {
            self.latest_cloud = Some(sample.message.0);
            self.cloud_fresh = true;
        }
        if let Some(sample) = latest_checked(&self.odom_sub, &mut self.corrupted) {
            self.latest_odom = Some(sample.message);
        }
        if let Some(sample) = latest_checked(&self.trajectory_sub, &mut self.corrupted) {
            self.latest_trajectory = Some(sample.message.0);
        }
        let (Some(cloud), Some(odom)) = (self.latest_cloud.as_ref(), self.latest_odom) else {
            return;
        };
        let heading = direction_towards(odom.position, goal, odom.velocity);
        let profile = self.profilers.profile(
            cloud,
            &self.map,
            self.latest_trajectory.as_ref(),
            odom.position,
            odom.speed,
            heading,
        );
        let _ = self.profile_pub.publish(ProfileMsg(profile));
    }

    /// Second half of the perception stage: apply the governor's precision
    /// and volume operators, update the occupancy map and publish the
    /// pruned planner map. Integration is withheld on a stale decision
    /// (blackout / stale-map fault) or when no fresh cloud arrived (a
    /// lossy link dropped the sweep) — the planner keeps exporting from
    /// the aging map. Returns `true` when fresh sensing was integrated.
    fn map_spin(&mut self, stale: bool) -> bool {
        if let Some(sample) = latest_checked(&self.policy_sub, &mut self.corrupted) {
            self.latest_policy = Some(sample.message.0);
        }
        if let Some(sample) = latest_checked(&self.feedback_sub, &mut self.corrupted) {
            self.planner_start_blocked = sample.message.start_blocked;
        }
        let (Some(cloud), Some(odom), Some(policy)) = (
            self.latest_cloud.as_ref(),
            self.latest_odom,
            self.latest_policy,
        ) else {
            return false;
        };
        let knobs = policy.knobs;
        let integrate = self.cloud_fresh && !stale;
        if integrate {
            self.cloud_fresh = false;
            let downsampled = cloud.downsampled(knobs.point_cloud_precision);
            let limited = downsampled.volume_limited(odom.position, knobs.octomap_volume);
            let carve_step = knobs.point_cloud_precision.max(0.5);
            self.epochs += 1;
            self.map.set_epoch(self.epochs);
            self.map.integrate_cloud(&limited, carve_step);
            self.map
                .retain_within(odom.position, self.map_retain_radius);
        }
        // When the planner reported that the drone's own position is
        // swallowed by a coarse occupied voxel, export at the worst-case
        // (finest) precision until it recovers — the same fallback a
        // spatial-oblivious pipeline gets for free.
        let export_precision = if self.planner_start_blocked {
            self.map.resolution()
        } else {
            knobs.map_to_planner_precision
        };
        let export = PlannerMap::export(
            &self.map,
            &ExportConfig::new(export_precision, knobs.map_to_planner_volume, odom.position),
        );
        let _ = self.map_pub.publish(PlannerMapMsg(export));
        integrate
    }
}

struct RuntimeNode {
    governor: Governor,
    profile_sub: Subscription<ProfileMsg>,
    policy_pub: Publisher<PolicyMsg>,
    latest_profile: Option<SpatialProfile>,
    /// Corrupted samples skipped by the checked subscription drains.
    corrupted: u64,
}

impl RuntimeNode {
    fn new(node: &Node, governor: Governor) -> Self {
        RuntimeNode {
            governor,
            profile_sub: node
                .subscribe("/runtime/profile", QosProfile::reliable(2))
                .expect("profile subscription"),
            policy_pub: node.publisher("/runtime/policy").expect("policy topic"),
            latest_profile: None,
            corrupted: 0,
        }
    }

    fn spin(&mut self) -> Option<Policy> {
        if let Some(sample) = latest_checked(&self.profile_sub, &mut self.corrupted) {
            self.latest_profile = Some(sample.message.0);
        }
        let profile = self.latest_profile.as_ref()?;
        let policy = self.governor.decide(profile);
        let _ = self.policy_pub.publish(PolicyMsg(policy));
        Some(policy)
    }

    /// The velocity the runtime allows for the next epoch given the actual
    /// decision latency, the worst closing speed of any sensed moving
    /// obstacle (zero in a static world) and the age of the last map
    /// integration (zero with fresh perception or degradation disarmed).
    /// With both extra terms zero this reduces exactly to the plain
    /// budget law.
    fn commanded_velocity(
        &self,
        mode: RuntimeMode,
        latency: f64,
        closing_speed: f64,
        data_age: f64,
    ) -> f64 {
        match mode {
            RuntimeMode::SpatialOblivious => self.governor.baseline_velocity(),
            RuntimeMode::SpatialAware => {
                let visibility = self
                    .latest_profile
                    .as_ref()
                    .map(|p| p.visibility)
                    .unwrap_or(self.governor.config().oblivious_visibility);
                if data_age > 0.0 {
                    self.governor
                        .safe_velocity_stale(latency, visibility, closing_speed, data_age)
                } else {
                    self.governor
                        .safe_velocity_closing(latency, visibility, closing_speed)
                }
            }
        }
    }

    fn latest_visibility(&self) -> f64 {
        self.latest_profile
            .as_ref()
            .map(|p| p.visibility)
            .unwrap_or(self.governor.config().oblivious_visibility)
    }
}

/// The snapshot-side metadata of an in-flight node speculation (the
/// planner node's mirror of the direct driver's pending record).
struct PendingNodeSpeculation {
    /// Export snapshot the speculation planned against.
    snapshot: PlannerMap,
    /// Start position handed to the worker (the drone position at the end
    /// of the previous epoch).
    start: Vec3,
    /// Local goal computed from the snapshot export.
    goal: Vec3,
    /// Overlap window: the previous epoch's duration (seconds).
    window: f64,
}

struct PlanningNode {
    seed_base: u64,
    margin: f64,
    planning_horizon: f64,
    dynamic_lookahead: f64,
    replan_every: usize,
    /// Plan-ahead enabled: the node keeps a long-lived checker to
    /// snapshot for the worker and joins/validates speculations.
    plan_ahead: bool,
    /// Plan through the composed hazard context (predicted boxes as soft
    /// obstacles) instead of only vetoing finished plans.
    predicted_costmap: bool,
    /// Bias a share of RRT* proposals toward hazard gap regions (see
    /// [`crate::MissionConfig::hazard_biased_sampling`]).
    hazard_biased_sampling: bool,
    /// Cross-decision planner reuse (see
    /// [`crate::MissionConfig::planner_reuse`]): synchronous replans
    /// warm-start from the retained tree in `reuse` and keep the
    /// long-lived checker alive even without plan-ahead.
    planner_reuse: bool,
    stopping: StoppingModel,
    map_sub: Subscription<PlannerMapMsg>,
    policy_sub: Subscription<PolicyMsg>,
    odom_sub: Subscription<OdometryMsg>,
    status_sub: Subscription<ControlStatusMsg>,
    trajectory_pub: Publisher<TrajectoryMsg>,
    feedback_pub: Publisher<PlanningFeedbackMsg>,
    speculation_pub: Publisher<SpeculationMsg>,
    speculation_sub: Subscription<SpeculationMsg>,
    latest_map: Option<PlannerMap>,
    latest_policy: Option<Policy>,
    latest_odom: Option<OdometryMsg>,
    latest_status: Option<ControlStatusMsg>,
    active_trajectory: Option<Trajectory>,
    decisions_since_plan: usize,
    decisions: usize,
    emergency_stop: bool,
    /// Long-lived collision checker (plan-ahead / costmap paths only):
    /// patched from the export delta per replan and cloned into
    /// speculation requests with its broad-phase prebuilt.
    collision: Option<CollisionChecker>,
    /// The per-mission predicted hazard source, retargeted from the
    /// decision's predicted boxes (incremental patch) — the node's half
    /// of the composed hazard context, mirroring the direct driver's.
    hazards: PredictedHazards,
    /// Warm-start bookkeeping: the retained RRT* tree, its export
    /// snapshot, and the reusable delta-box buffer (mirrors the direct
    /// driver's per-mission [`cycle::PlanReuse`]).
    reuse: cycle::PlanReuse,
    /// The in-flight speculation's snapshot metadata.
    pending: Option<PendingNodeSpeculation>,
    /// The joined-and-validated verdict for this decision's planning spin.
    speculative: Option<SpeculationVerdict>,
    /// Plan-ahead accounting (attempts / hits / masked latency).
    stats: PlanAheadStats,
    /// Decisions where a predicted moving-obstacle conflict forced a
    /// replan (always zero in static worlds).
    dynamic_replans: usize,
    /// Arrived speculations discarded by the predicted-occupancy gate.
    predicted_invalidations: usize,
    /// Consecutive decisions whose planning attempt was start-blocked —
    /// after the fine-export fallback has had its chance, a dynamic
    /// mission retreats out of the margin shell instead of hovering.
    start_blocked_streak: usize,
    /// Corrupted samples skipped by the checked subscription drains.
    corrupted: u64,
}

/// What the planning spin decided — the coordinator's view of the stage,
/// mirroring the direct driver's `Planned` so the degradation ladder can
/// run outside the node.
#[derive(Clone, Copy)]
struct NodePlanned {
    /// Whether this decision needed a plan at all.
    needed: bool,
    /// Whether a replacement trajectory was installed/published.
    replanned: bool,
    /// A blockage (mapped or predicted) sits on the remaining trajectory.
    blocked: bool,
    /// The blockage is within stopping range.
    imminent: bool,
    /// The drone's own position sits inside predicted occupancy.
    in_danger: bool,
}

impl PlanningNode {
    fn new(node: &Node, config: &MissionConfig, env_seed: u64) -> Self {
        let margin = config.drone.body_radius * config.planning_margin_factor;
        PlanningNode {
            seed_base: config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(env_seed),
            margin,
            planning_horizon: config.planning_horizon,
            dynamic_lookahead: config.dynamic_lookahead,
            replan_every: config.replan_every,
            plan_ahead: config.plan_ahead,
            predicted_costmap: config.predicted_costmap,
            hazard_biased_sampling: config.hazard_biased_sampling,
            planner_reuse: config.planner_reuse,
            stopping: StoppingModel::paper_default(),
            map_sub: node
                .subscribe("/perception/planner_map", QosProfile::reliable(2))
                .expect("planner map subscription"),
            policy_sub: node
                .subscribe("/runtime/policy", QosProfile::latched(1))
                .expect("policy subscription"),
            odom_sub: node
                .subscribe("/sensors/odometry", QosProfile::sensor_data())
                .expect("odometry subscription"),
            status_sub: node
                .subscribe("/control/status", QosProfile::reliable(2))
                .expect("status subscription"),
            trajectory_pub: node
                .publisher("/planning/trajectory")
                .expect("trajectory topic"),
            feedback_pub: node
                .publisher("/planning/feedback")
                .expect("feedback topic"),
            speculation_pub: node
                .publisher("/planning/speculation")
                .expect("speculation topic"),
            speculation_sub: node
                .subscribe("/planning/speculation", QosProfile::latched(1))
                .expect("speculation subscription"),
            latest_map: None,
            latest_policy: None,
            latest_odom: None,
            latest_status: None,
            active_trajectory: None,
            decisions_since_plan: usize::MAX / 2,
            decisions: 0,
            emergency_stop: false,
            collision: None,
            hazards: PredictedHazards::new(Vec::new(), margin * 0.6, Vec3::ZERO, 0.0),
            reuse: cycle::PlanReuse::new(),
            pending: None,
            speculative: None,
            stats: PlanAheadStats::default(),
            dynamic_replans: 0,
            predicted_invalidations: 0,
            start_blocked_streak: 0,
            corrupted: 0,
        }
    }

    /// Ingests the newest samples from every subscription into the cached
    /// latest-value fields (shared by the planning spin and the
    /// speculation join, whichever runs first in a decision).
    fn refresh_inputs(&mut self) {
        if let Some(sample) = latest_checked(&self.map_sub, &mut self.corrupted) {
            self.latest_map = Some(sample.message.0);
        }
        if let Some(sample) = latest_checked(&self.policy_sub, &mut self.corrupted) {
            self.latest_policy = Some(sample.message.0);
        }
        if let Some(sample) = latest_checked(&self.odom_sub, &mut self.corrupted) {
            self.latest_odom = Some(sample.message);
        }
        if let Some(sample) = latest_checked(&self.status_sub, &mut self.corrupted) {
            self.latest_status = Some(sample.message);
        }
    }

    /// Joins the in-flight speculation (if any), ships its trajectory
    /// across the speculation topic, and validates the received copy
    /// against the fresh export and the predicted occupancy — the node
    /// mirror of the direct driver's `take_speculation`. Returns the
    /// planning latency masked by the overlap window (zero unless the
    /// speculation was adopted).
    fn join_speculation(
        &mut self,
        worker: Option<&mut PlanAheadWorker>,
        env: &Environment,
        predicted: &[Aabb],
        planning_latency: f64,
        forced_failure: bool,
    ) -> f64 {
        self.speculative = None;
        let (Some(worker), Some(pending)) = (worker, self.pending.take()) else {
            return 0.0;
        };
        self.refresh_inputs();
        // A hung-up worker (its thread panicked) degrades to a discarded
        // speculation — the node falls back to synchronous replanning
        // instead of tearing down the pipeline mid-flight.
        let Ok(answer) = worker.outcomes.recv() else {
            self.speculative = Some(SpeculationVerdict::Discarded);
            return 0.0;
        };
        // The speculative plan crosses the bus before validation: publish
        // it, take the copy the subscription delivers, and validate that.
        let outcome: Result<(Trajectory, PlanStats), PlanError> = match answer.outcome {
            Ok((trajectory, stats)) => {
                let _ = self.speculation_pub.publish(SpeculationMsg(trajectory));
                match latest_checked(&self.speculation_sub, &mut self.corrupted) {
                    Some(sample) => Ok((sample.message.0, stats)),
                    None => Err(PlanError::NoPathFound {
                        samples_drawn: 0,
                        volume_capped: false,
                    }),
                }
            }
            Err(e) => Err(e),
        };
        let (Some(map), Some(policy), Some(odom)) = (
            self.latest_map.as_ref(),
            self.latest_policy,
            self.latest_odom,
        ) else {
            return 0.0;
        };
        let fresh_goal = cycle::local_goal(
            env,
            map,
            odom.position,
            self.planning_horizon,
            self.margin * 0.9,
        );
        let mut verdict = cycle::validate_speculation(
            &outcome,
            &pending.snapshot,
            pending.start,
            pending.goal,
            map,
            fresh_goal,
            odom.position,
            self.margin * 0.6,
            cycle::planning_check_step(&policy.knobs),
        );
        // The dynamic gate the direct driver applies too: a speculation
        // crossing the predicted occupancy (or arriving on an in-danger
        // decision) is discarded before any masking is credited. The
        // per-mission hazard source is retargeted here (the join runs
        // first in a decision); the planning spin's retarget with the
        // same boxes is then a no-op diff.
        let relevance =
            cycle::predicted_relevance_range(odom.speed, self.dynamic_lookahead, self.margin);
        self.hazards.retarget(predicted, odom.position, relevance);
        if let SpeculationVerdict::Adopted(t) | SpeculationVerdict::Patched(t) = &verdict {
            if forced_failure {
                // The fault plan failed this decision's planner outright;
                // the speculation is the same planner's output, so it is
                // lost with it (before the hit/masked accounting).
                verdict = SpeculationVerdict::Discarded;
            } else {
                let in_danger = self.hazards.any_within(odom.position, self.margin);
                if in_danger
                    || !self
                        .hazards
                        .path_clear(t.points().iter().map(|p| p.position))
                {
                    self.predicted_invalidations += 1;
                    verdict = SpeculationVerdict::Discarded;
                }
            }
        }
        let masked = match &verdict {
            SpeculationVerdict::Adopted(_) | SpeculationVerdict::Patched(_) => {
                self.stats.hits += 1;
                let masked = planning_latency.min(pending.window);
                self.stats.masked_latency += masked;
                masked
            }
            SpeculationVerdict::Discarded => 0.0,
        };
        self.speculative = Some(verdict);
        masked
    }

    /// Launches a speculation for the next decision when a replan is
    /// predictably due — the node mirror of the direct driver's
    /// `speculate`, called by the coordinator after the epoch advance so
    /// `start` is exactly the position the next planning spin will see.
    #[allow(clippy::too_many_arguments)]
    fn speculate(
        &mut self,
        worker: Option<&mut PlanAheadWorker>,
        env: &Environment,
        start: Vec3,
        speed: f64,
        commanded_velocity: f64,
        window: f64,
        now: f64,
    ) {
        let Some(worker) = worker else { return };
        let (Some(map), Some(policy)) = (self.latest_map.as_ref(), self.latest_policy) else {
            return;
        };
        let finished = self
            .latest_status
            .map(|s| s.finished)
            .unwrap_or(self.active_trajectory.is_none());
        let predicted_need = self.active_trajectory.is_none()
            || finished
            || self.decisions_since_plan + 1 >= self.replan_every;
        if !predicted_need || self.collision.is_none() {
            return;
        }
        let knobs = policy.knobs;
        let goal = cycle::local_goal(env, map, start, self.planning_horizon, self.margin * 0.9);
        let planner = cycle::planner_for(
            self.seed_base,
            self.decisions + 1,
            &knobs,
            self.margin,
            cycle::sampling_mix_for(self.hazard_biased_sampling),
        );
        let bounds = planning_bounds(start, goal, env.bounds());
        // The shared re-anchor policy: this decision's boxes anchored at
        // the post-epoch position the speculation starts from.
        let hazards = cycle::speculation_hazards(
            &self.hazards,
            self.predicted_costmap,
            start,
            speed,
            self.dynamic_lookahead,
            self.margin,
        );
        let checker = self.collision.as_mut().expect("checked above");
        checker.update_map(map.clone());
        checker.set_check_step(cycle::planning_check_step(&knobs));
        checker.prebuild_broad_phase();
        let request = SpeculationRequest {
            planner,
            checker: checker.clone(),
            hazards,
            start,
            goal,
            bounds,
            cruise: commanded_velocity.max(0.5),
            launched_at: now,
        };
        if worker.requests.send(request).is_ok() {
            self.stats.attempts += 1;
            self.pending = Some(PendingNodeSpeculation {
                snapshot: map.clone(),
                start,
                goal,
                window,
            });
        }
    }

    /// `true` when the active trajectory was found to collide with the
    /// latest map and no replacement plan was produced this decision — the
    /// controller must brake until a valid plan exists.
    fn emergency_stop_needed(&self) -> bool {
        self.emergency_stop
    }

    fn local_goal(&self, env: &Environment, export: &PlannerMap, position: Vec3) -> Vec3 {
        cycle::local_goal(
            env,
            export,
            position,
            self.planning_horizon,
            self.margin * 0.9,
        )
    }

    /// Distance from the drone to the first remaining-trajectory point that
    /// collides with the latest map, or `None` when the trajectory is clear.
    fn first_blockage_distance(&self, position: Vec3) -> Option<f64> {
        let (Some(trajectory), Some(map)) =
            (self.active_trajectory.as_ref(), self.latest_map.as_ref())
        else {
            return None;
        };
        let progress = self.latest_status.map(|s| s.progress_time).unwrap_or(0.0);
        cycle::first_blockage_distance(trajectory, progress, map, self.margin, position)
    }

    /// `true` when the last valid trajectory can still be followed (the
    /// degradation ladder's reuse rung).
    fn can_reuse(&self) -> bool {
        self.active_trajectory.is_some() && !self.latest_status.map(|s| s.finished).unwrap_or(true)
    }

    /// Publishes a wedge-retreat trajectory — the bottom of the
    /// degradation ladder: back straight out of the nearest mapped
    /// surface's margin shell and park.
    fn publish_retreat(&mut self, position: Vec3) {
        let Some(map) = self.latest_map.as_ref() else {
            return;
        };
        let retreat = cycle::retreat_trajectory(map, position, self.margin);
        self.active_trajectory = Some(retreat.clone());
        self.decisions_since_plan = 0;
        let _ = self.trajectory_pub.publish(TrajectoryMsg(retreat));
    }

    /// Drops the active trajectory (the fault-oblivious baseline's
    /// imminent-blockage brake on a forced-failure decision).
    fn drop_trajectory(&mut self) {
        self.active_trajectory = None;
    }

    fn spin(
        &mut self,
        env: &Environment,
        commanded_velocity: f64,
        predicted: &[Aabb],
        forced_failure: bool,
    ) -> NodePlanned {
        self.decisions += 1;
        self.decisions_since_plan += 1;
        // Take this decision's joined speculation verdict (if any) so a
        // stale one can never leak into a later decision.
        let speculative = self.speculative.take();
        self.refresh_inputs();
        let idle = NodePlanned {
            needed: false,
            replanned: false,
            blocked: false,
            imminent: false,
            in_danger: false,
        };
        let (Some(map), Some(policy), Some(odom)) = (
            self.latest_map.as_ref(),
            self.latest_policy,
            self.latest_odom,
        ) else {
            return idle;
        };
        let finished = self
            .latest_status
            .map(|s| s.finished)
            .unwrap_or(self.active_trajectory.is_none());
        let static_blockage = self.first_blockage_distance(odom.position);
        // A moving obstacle predicted to cross the remaining trajectory
        // forces the same replan/brake machinery as a mapped blockage
        // (same policy as the direct driver's cycle). Every predicted
        // query below walks the per-mission hazard source, retargeted
        // here from this decision's boxes (an incremental patch — a
        // second retarget after the speculation join is a no-op diff);
        // conflicts beyond the relevance range are not actionable.
        let relevance_range =
            cycle::predicted_relevance_range(odom.speed, self.dynamic_lookahead, self.margin);
        self.hazards
            .retarget(predicted, odom.position, relevance_range);
        let predicted_blockage = self.active_trajectory.as_ref().and_then(|trajectory| {
            let progress = self.latest_status.map(|s| s.progress_time).unwrap_or(0.0);
            let remaining = trajectory.remaining_from(progress);
            self.hazards
                .first_conflict(remaining.points().iter().map(|p| p.position))
                .map(|p| p.distance(odom.position))
        });
        // A predicted box over the drone's own position forces an escape
        // replan and suppresses braking (the in-danger policy shared
        // with the direct driver).
        let in_danger = self.hazards.any_within(odom.position, self.margin);
        if predicted_blockage.is_some() || in_danger {
            self.dynamic_replans += 1;
        }
        let blockage = cycle::merge_blockages(static_blockage, predicted_blockage);
        // Brake only when the blockage sits inside the stopping range: the
        // budget law (Eq. 1) guarantees the MAV can react to anything it
        // sees that close, while blockages further out leave time to keep
        // flying and replan.
        let imminent_blockage = blockage.is_some_and(|distance| {
            // Stopping distance plus one second of reaction (≈ one decision
            // epoch of continued motion before the next chance to brake).
            cycle::blockage_is_imminent(
                distance,
                self.stopping.stopping_distance(odom.speed),
                odom.speed,
                2.0 * self.margin,
            )
        });
        let need_plan = self.active_trajectory.is_none()
            || finished
            || self.decisions_since_plan >= self.replan_every
            || blockage.is_some()
            || in_danger;
        self.emergency_stop = false;
        let planned = NodePlanned {
            needed: need_plan,
            replanned: false,
            blocked: blockage.is_some(),
            imminent: imminent_blockage,
            in_danger,
        };
        if !need_plan {
            return planned;
        }
        // A forced planner failure (fault plan, or an unrecovered
        // watchdog abort) means no planner output exists this decision:
        // the adopt and synchronous paths are skipped outright (the
        // joined speculation was already discarded) and the
        // coordinator's degradation ladder takes over.
        if forced_failure {
            return planned;
        }
        // An adopted (or goal-drift-patched) speculation replaces the
        // synchronous plan entirely — the same adopt policy as the direct
        // driver's cycle. The verdict was already validated against the
        // fresh export and the predicted occupancy at join time.
        if let Some(SpeculationVerdict::Adopted(trajectory))
        | Some(SpeculationVerdict::Patched(trajectory)) = speculative
        {
            self.active_trajectory = Some(trajectory.clone());
            self.decisions_since_plan = 0;
            let _ = self.trajectory_pub.publish(TrajectoryMsg(trajectory));
            return NodePlanned {
                replanned: true,
                ..planned
            };
        }
        let knobs = policy.knobs;
        let local_goal = self.local_goal(env, map, odom.position);
        let bounds = planning_bounds(odom.position, local_goal, env.bounds());
        let planner = cycle::planner_for_with_reuse(
            self.seed_base,
            self.decisions,
            &knobs,
            self.margin,
            cycle::sampling_mix_for(self.hazard_biased_sampling),
            self.planner_reuse,
        );
        let cruise = commanded_velocity.max(0.5);
        // Plan-ahead (and the predicted costmap) keep one checker across
        // the mission — patched from the export delta, snapshot-cloned
        // into speculation requests — and the costmap composes it with
        // the predicted boxes so the search routes around lanes in one
        // shot. Cross-decision reuse rides the same long-lived checker:
        // the retained tree is rebased against the export delta and the
        // scratch buffers persist across decisions. Without any of the
        // three features the node plans exactly as before (a fresh
        // checker per plan), keeping the default path untouched.
        let outcome = if self.plan_ahead || self.predicted_costmap || self.planner_reuse {
            let check_step = cycle::planning_check_step(&knobs);
            match self.collision.as_mut() {
                Some(checker) => {
                    checker.update_map(map.clone());
                    checker.set_check_step(check_step);
                }
                None => {
                    self.collision =
                        Some(CollisionChecker::new(map.clone(), self.margin, check_step));
                }
            }
            let one_shot = self.predicted_costmap && !self.hazards.is_empty() && !in_danger;
            // Escape plans (start inside predicted occupancy) never warm
            // start: the hazard-pruned retained tree does not apply.
            let warm_ready = !in_danger && self.reuse.prepare_warm(self.planner_reuse, map);
            let epoch_before = self.reuse.scratch.tree_epoch();
            let cycle::PlanReuse {
                scratch,
                added_boxes,
                ..
            } = &mut self.reuse;
            let warm = warm_ready.then(|| WarmStart {
                added_boxes,
                added_clearance: self.margin,
                hazard_boxes: self.hazards.boxes(),
                hazard_clearance: self.hazards.clearance(),
                sample_step: check_step,
            });
            let outcome = cycle::plan_through_hazards(
                &planner,
                self.collision.as_mut().expect("checker just initialised"),
                &self.hazards,
                one_shot,
                odom.position,
                local_goal,
                &bounds,
                cruise,
                scratch,
                warm.as_ref(),
            );
            self.reuse.after_plan(self.planner_reuse, epoch_before, map);
            if let Ok((_, stats)) = &outcome {
                self.reuse.stats.record(stats);
            }
            outcome
        } else {
            planner.plan(map, odom.position, local_goal, &bounds, cruise)
        };
        // Tell perception whether the exported map swallowed our own
        // position, so it can fall back to the worst-case export precision.
        let start_blocked = matches!(outcome, Err(PlanError::StartBlocked));
        let _ = self
            .feedback_pub
            .publish(PlanningFeedbackMsg { start_blocked });
        if start_blocked {
            self.start_blocked_streak += 1;
        } else {
            self.start_blocked_streak = 0;
        }
        // Wedged in a dynamic mission: the fine-export fallback has had
        // its decision and the start is still blocked — back out of the
        // margin shell so planning can recover (same manoeuvre as the
        // direct driver's cycle).
        if start_blocked && self.start_blocked_streak >= 2 && !predicted.is_empty() {
            let retreat = cycle::retreat_trajectory(map, odom.position, self.margin);
            self.active_trajectory = Some(retreat.clone());
            self.decisions_since_plan = 0;
            let _ = self.trajectory_pub.publish(TrajectoryMsg(retreat));
            return NodePlanned {
                replanned: true,
                ..planned
            };
        }
        match outcome {
            // A fresh plan that crosses the predicted moving-obstacle
            // occupancy is rejected like a failed plan — unless it is an
            // *escape* plan from inside a predicted box, where moving
            // out beats hovering in a crossing lane (same policy as the
            // direct driver's cycle).
            Ok((trajectory, _stats))
                if in_danger
                    || self
                        .hazards
                        .path_clear(trajectory.points().iter().map(|p| p.position)) =>
            {
                self.active_trajectory = Some(trajectory.clone());
                self.decisions_since_plan = 0;
                let _ = self.trajectory_pub.publish(TrajectoryMsg(trajectory));
                NodePlanned {
                    replanned: true,
                    ..planned
                }
            }
            Ok(_) | Err(_) if imminent_blockage && !in_danger => {
                // The old trajectory collides within stopping range and no
                // replacement was found: ask the controller to brake
                // (Eq. 1's stopping-distance reaction) and drop the stale
                // trajectory.
                self.active_trajectory = None;
                self.emergency_stop = true;
                planned
            }
            _ => planned,
        }
    }
}

struct ControlNode {
    follower: Option<TrajectoryFollower>,
    lookahead: f64,
    trajectory_sub: Subscription<TrajectoryMsg>,
    status_pub: Publisher<ControlStatusMsg>,
    last_tracking_error: f64,
    /// Corrupted samples skipped by the checked subscription drains.
    corrupted: u64,
}

impl ControlNode {
    fn new(node: &Node) -> Self {
        ControlNode {
            follower: None,
            lookahead: 0.5,
            trajectory_sub: node
                .subscribe("/planning/trajectory", QosProfile::latched(1))
                .expect("trajectory subscription"),
            status_pub: node.publisher("/control/status").expect("status topic"),
            last_tracking_error: 0.0,
            corrupted: 0,
        }
    }

    /// Adopts the newest trajectory (if one arrived) at the start of the
    /// epoch.
    fn begin_epoch(&mut self) {
        if let Some(sample) = latest_checked(&self.trajectory_sub, &mut self.corrupted) {
            let trajectory = sample.message.0;
            match self.follower.as_mut() {
                Some(f) => f.replace_trajectory(trajectory),
                None => self.follower = Some(TrajectoryFollower::new(trajectory, self.lookahead)),
            }
        }
    }

    /// Drops the active trajectory so the drone brakes and hovers until a
    /// new plan arrives.
    fn brake(&mut self) {
        self.follower = None;
    }

    /// One control substep: where to steer and how fast. Returns `None`
    /// when no trajectory is active (hover in place).
    fn update(&mut self, position: Vec3, dt: f64) -> Option<(Vec3, f64)> {
        let follower = self.follower.as_mut()?;
        if follower.finished() {
            return None;
        }
        let cmd = follower.update(position, dt);
        self.last_tracking_error = cmd.tracking_error;
        Some((cmd.target, cmd.speed))
    }

    /// Publishes progress feedback at the end of the epoch.
    fn end_epoch(&self) {
        let (finished, progress) = match self.follower.as_ref() {
            Some(f) => (f.finished(), f.progress_time()),
            None => (true, 0.0),
        };
        let _ = self.status_pub.publish(ControlStatusMsg {
            finished,
            progress_time: progress,
            tracking_error: self.last_tracking_error,
        });
    }
}

// ---------------------------------------------------------------------------
// The pipeline coordinator
// ---------------------------------------------------------------------------

/// Configuration of a node-graph mission run.
#[derive(Debug, Clone)]
pub struct NodePipelineConfig {
    /// The underlying mission configuration (mode, drone, models, caps).
    pub mission: MissionConfig,
    /// Transport-cost model for the bus.
    pub comm: CommLatencyModel,
}

impl NodePipelineConfig {
    /// A default node-pipeline configuration for the given runtime mode.
    pub fn new(mode: RuntimeMode) -> Self {
        NodePipelineConfig {
            mission: MissionConfig::new(mode),
            comm: CommLatencyModel::default(),
        }
    }
}

/// Outcome of a node-graph mission run.
#[derive(Debug, Clone)]
pub struct NodePipelineResult {
    /// The same metrics/telemetry a direct [`crate::MissionRunner`] run
    /// produces (the `communication` slice of each breakdown is measured
    /// from bus traffic).
    pub mission: MissionResult,
    /// Snapshot of the node graph and per-topic traffic at mission end.
    pub graph: GraphInfo,
    /// Measured transport latency charged per decision (seconds).
    pub comm_per_decision: Vec<f64>,
}

/// Runs missions through the middleware node graph.
#[derive(Debug, Clone)]
pub struct NodePipeline {
    config: NodePipelineConfig,
}

impl NodePipeline {
    /// Creates a pipeline runner.
    ///
    /// # Panics
    ///
    /// Panics if the drone configuration is invalid.
    pub fn new(config: NodePipelineConfig) -> Self {
        config
            .mission
            .drone
            .validate()
            .expect("invalid drone configuration");
        NodePipeline { config }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &NodePipelineConfig {
        &self.config
    }

    /// Runs one mission in the given environment, returning the mission
    /// result plus the node-graph view of it.
    pub fn run(&self, env: &Environment) -> NodePipelineResult {
        self.run_with(env, None)
    }

    /// Runs one mission against a dynamic world: the same node graph,
    /// sensing from the snapshot field of each instant, validating the
    /// planner node's trajectory against predicted moving-obstacle
    /// occupancy and budgeting velocity with the closing-speed term.
    /// With an actor-free world the run is bit-identical to
    /// [`NodePipeline::run`].
    pub fn run_dynamic(&self, env: &Environment, dynamics: &DynamicWorld) -> NodePipelineResult {
        self.run_with(env, Some(dynamics))
    }

    fn run_with(&self, env: &Environment, dynamics: Option<&DynamicWorld>) -> NodePipelineResult {
        if !self.config.mission.plan_ahead {
            return self.drive(env, dynamics, None);
        }
        // Same worker discipline as the direct runner: one scoped thread
        // serves speculation requests for the mission's duration, and the
        // run stays deterministic because each speculation is a pure
        // function of its snapshot and the loop joins the answer before
        // using it.
        let (req_tx, req_rx) = mpsc::channel();
        let (out_tx, out_rx) = mpsc::channel();
        std::thread::scope(|scope| {
            scope.spawn(move || cycle::speculation_worker(req_rx, out_tx));
            let mut worker = PlanAheadWorker::new(req_tx, out_rx);
            self.drive(env, dynamics, Some(&mut worker))
        })
    }

    fn drive(
        &self,
        env: &Environment,
        dynamics: Option<&DynamicWorld>,
        mut worker: Option<&mut PlanAheadWorker>,
    ) -> NodePipelineResult {
        let cfg = &self.config.mission;
        let live = dynamics.filter(|world| !world.is_static());
        let mut pose_cache = dynamics.map(DynamicWorld::pose_cache).unwrap_or_default();
        // An armed fault plan wraps the bus in its deterministic
        // link-fault model (message loss / duplication / delay on the
        // configured topics); a healthy plan leaves the bus untouched.
        let fault_plan =
            (!cfg.fault_plan.is_healthy()).then(|| FaultPlan::new(cfg.fault_plan.clone()));
        let bus = {
            let bus = MessageBus::new(self.config.comm);
            match fault_plan.as_ref().and_then(FaultPlan::link_faults) {
                Some(model) => FaultyBus::new(bus, model).bus(),
                None => bus,
            }
        };
        let governor = Governor::new(cfg.governor_config());
        let map_resolution = governor.config().ranges.precision_min;

        // Node handles. The coordinator (flight interface) owns the drone
        // state and the physics stepping, like the autopilot board would.
        let sensor_host = Node::new(&bus, "camera_rig").expect("sensor node");
        let perception_host = Node::new(&bus, "perception").expect("perception node");
        let runtime_host = Node::new(&bus, "runtime_governor").expect("runtime node");
        let planning_host = Node::new(&bus, "planner").expect("planning node");
        let control_host = Node::new(&bus, "controller").expect("control node");

        let sensor = SensorNode::new(
            &sensor_host,
            match live {
                Some(_) => cfg.dynamic_camera_rig(),
                None => cfg.camera_rig(),
            },
        );
        let mut perception = PerceptionNode::new(&perception_host, cfg, map_resolution);
        let mut runtime = RuntimeNode::new(&runtime_host, governor);
        let mut planning = PlanningNode::new(&planning_host, cfg, env.seed());
        let mut control = ControlNode::new(&control_host);

        let mut drone = DroneState::at(env.start());
        let mut clock = SimClock::new();
        let mut telemetry = MissionTelemetry::new(cfg.mode);
        let mut flown_path = vec![drone.position];
        let mut flown_times = vec![0.0];
        let mut comm_per_decision = Vec::new();
        let mut energy_joules = 0.0;
        let mut collided = false;
        let mut reached_goal = false;
        let mut decisions = 0usize;
        let mut comm_seen = 0.0;
        let mut degradation_stats = DegradationStats::default();
        let mut last_integration_time = 0.0;
        let mut hover_streak = 0u32;
        let mut corrupted_seen = 0u64;
        // Fleet: configured peer corridors, swept once up front — the
        // node pipeline drives one drone per process, so its peers are
        // static polylines (live re-publication is the direct driver's
        // fleet coordinator's job). Same inflation as the cycle's peer
        // source: a hard two-body allowance around either centre line.
        let peer_boxes: Vec<Aabb> = cfg
            .peer_trajectories
            .iter()
            .flat_map(|polyline| swept_polyline_boxes(polyline, cfg.drone.body_radius * 2.0))
            .collect();

        while decisions < cfg.max_decisions && clock.now() < cfg.max_mission_time {
            decisions += 1;
            bus.set_time(clock.now());

            // The fault plan's verdict for this decision: a pure function
            // of (plan seed, decision index), identical across drivers.
            let frame = fault_plan
                .as_ref()
                .map(|plan| plan.frame(decisions as u64))
                .unwrap_or_default();
            degradation_stats.faults_injected += frame.injected_count();

            // Sensor → perception profiling → governor → perception map →
            // planning, all over topics. With actors, sensing captures
            // the snapshot field of this instant.
            let snapshot;
            let sense_field = match live {
                Some(world) => {
                    snapshot = world.snapshot_field_cached(clock.now(), &mut pose_cache);
                    &snapshot
                }
                None => env.field(),
            };
            sensor.spin(sense_field, &drone, &frame);
            perception.profile_spin(env.goal());
            let Some(policy) = runtime.spin() else { break };
            let stale_map = frame.sensor_blackout || frame.map_stale;
            if perception.map_spin(stale_map) {
                last_integration_time = clock.now();
            }
            let data_age = clock.now() - last_integration_time;

            let knobs = policy.knobs;
            let mut breakdown = cfg.latency.decision_breakdown(
                knobs.point_cloud_precision,
                knobs.octomap_volume,
                knobs.map_to_planner_precision,
                knobs.map_to_planner_volume,
                knobs.map_to_planner_precision,
                knobs.planner_volume,
                cfg.mode.is_aware(),
            );
            // Planner fault channels: the watchdog/retry policy
            // (degradation armed) or the baseline's serialised spike —
            // the same shared arithmetic as the direct driver.
            let (mut degradation, forced_failure) = cycle::apply_planner_faults(
                &mut breakdown,
                &frame,
                &cfg.degradation,
                &mut degradation_stats,
            );
            let mut predicted = live.map_or_else(Vec::new, |world| {
                world.predicted_boxes_cached(clock.now(), cfg.dynamic_lookahead, &mut pose_cache)
            });
            if !peer_boxes.is_empty() {
                // Peer corridors ride the same soft-hazard path as
                // predicted occupancy (exactly like the direct driver).
                predicted.extend_from_slice(&peer_boxes);
            }
            // Plan-ahead join: the planner node collects the worker's
            // answer, ships it over the speculation topic and validates
            // the received copy against the fresh export. An adopted
            // speculation masks the planning stage up to the overlap
            // window, exactly like the direct driver.
            let masked = planning.join_speculation(
                worker.as_deref_mut(),
                env,
                &predicted,
                breakdown.planning,
                forced_failure,
            );
            // Planning needs the commanded velocity; compute it from the
            // model-predicted compute cost plus the comm charged so far this
            // decision (the planning hop is added below and reflected in the
            // recorded breakdown). Masked planning work never delayed the
            // MAV's reaction, so it leaves the provisional latency too.
            let comm_so_far = bus.total_transport_latency() - comm_seen;
            let provisional_latency = if masked > 0.0 {
                breakdown.compute_total() + comm_so_far - masked
            } else {
                breakdown.compute_total() + comm_so_far
            };
            // Actors that can reach the visible margin within the
            // lookahead eat into the reaction budget (same rule as the
            // direct driver's cycle).
            let closing_speed = live.map_or(0.0, |world| {
                world.max_closing_speed_cached(
                    clock.now(),
                    drone.position,
                    runtime.latest_visibility() + world.max_actor_speed() * cfg.dynamic_lookahead,
                    &mut pose_cache,
                )
            });
            // Stale-perception derating: with degradation armed and the
            // map older than this decision, the governor's data-age law
            // shaves the visible margin (the direct driver's rule;
            // `data_age` is exactly 0.0 on decisions that integrated, so
            // the healthy path never enters the stale arm).
            let derate = cfg.degradation.enabled && data_age > 0.0;
            let commanded_velocity = runtime.commanded_velocity(
                cfg.mode,
                provisional_latency,
                closing_speed,
                if derate { data_age } else { 0.0 },
            );
            if derate && degradation == Degradation::Healthy {
                degradation = Degradation::StalePerception;
            }

            let planned = planning.spin(env, commanded_velocity, &predicted, forced_failure);
            // Degradation ladder — the same policy as the direct driver:
            // reuse the last valid trajectory while it is clear, hover in
            // place otherwise, and bottom out in a wedge-retreat safe-stop
            // once hovering has not bought a plan for `hover_limit`
            // consecutive decisions. Stale hovers never escalate.
            let mut hover = false;
            let mut safe_stop = false;
            if cfg.degradation.enabled {
                if forced_failure && planned.needed && !planned.replanned {
                    if planning.can_reuse() && !planned.blocked && !planned.in_danger {
                        degradation = Degradation::ReusedTrajectory;
                        hover_streak = 0;
                    } else if hover_streak >= cfg.degradation.hover_limit {
                        planning.publish_retreat(drone.position);
                        safe_stop = true;
                        degradation_stats.safe_stops += 1;
                        degradation = Degradation::SafeStop;
                    } else {
                        hover = true;
                        hover_streak += 1;
                        degradation = Degradation::Hover;
                    }
                } else {
                    hover_streak = 0;
                    if data_age > cfg.degradation.stale_hover_age {
                        hover = true;
                        degradation = Degradation::Hover;
                    }
                }
            }
            control.begin_epoch();
            // The fault-oblivious baseline's forced-failure decision still
            // honours the imminent-blockage brake the direct driver's
            // emergency-stop policy applies (no replacement plan exists,
            // so the stale trajectory is dropped and the MAV brakes).
            let baseline_brake = !cfg.degradation.enabled
                && forced_failure
                && planned.needed
                && !planned.replanned
                && planned.imminent
                && !planned.in_danger;
            if baseline_brake {
                planning.drop_trajectory();
            }
            if !hover && !safe_stop && (planning.emergency_stop_needed() || baseline_brake) {
                control.brake();
            }
            // Corrupted payloads drained off any subscription this decision
            // are a degradation event even when nothing else is.
            let corrupted_total =
                perception.corrupted + runtime.corrupted + planning.corrupted + control.corrupted;
            if corrupted_total > corrupted_seen && degradation == Degradation::Healthy {
                degradation = Degradation::StalePerception;
            }
            corrupted_seen = corrupted_total;
            if degradation.is_degraded() {
                degradation_stats.degraded_decisions += 1;
            }

            // Replace the modeled comm term with what actually crossed the
            // bus during this decision.
            let comm_total = bus.total_transport_latency();
            let comm_this_decision = comm_total - comm_seen;
            comm_seen = comm_total;
            breakdown.communication = comm_this_decision;
            comm_per_decision.push(comm_this_decision);
            // The governor's budget law and the epoch advance see the
            // critical-path latency: planning work hidden behind the
            // previous execution window never delayed the reaction.
            let latency = if masked > 0.0 {
                breakdown.critical_path(masked)
            } else {
                breakdown.total()
            };

            let cpu_sample = cfg
                .cpu
                .sample(breakdown.compute_total(), latency.max(cfg.min_epoch));
            telemetry.push(DecisionRecord {
                time: clock.now(),
                position: drone.position,
                commanded_velocity,
                visibility: runtime.latest_visibility(),
                deadline: policy.deadline,
                knobs,
                breakdown,
                cpu_utilization: cpu_sample.utilization,
                zone: Some(zone_label(env.zone_at(drone.position))),
                masked_latency: masked,
                degradation,
            });

            // Advance the physical world for the epoch; moving actors are
            // collision-tested at their true pose of every substep.
            let epoch = latency.max(cfg.min_epoch);
            let body_margin = cfg.drone.body_radius * 0.8;
            collided = cycle::advance_epoch(
                &mut drone,
                &mut clock,
                &mut energy_joules,
                env,
                &cfg.drone,
                &cfg.energy,
                epoch,
                commanded_velocity,
                |position, dt| {
                    if hover {
                        // A hovering decision issues no motion command: the
                        // physics brake the MAV in place. The controller
                        // keeps its progress so a later decision resumes.
                        return None;
                    }
                    control.update(position, dt)
                },
                |position, time| {
                    live.is_some_and(|world| {
                        world.actor_hit_cached(position, time, body_margin, &mut pose_cache)
                    })
                },
            );
            control.end_epoch();
            flown_path.push(drone.position);
            flown_times.push(clock.now());

            if collided {
                break;
            }
            if drone.position.distance(env.goal()) <= cfg.goal_tolerance {
                reached_goal = true;
                break;
            }
            // A safe-stop flew its retreat epoch; the mission is over.
            if safe_stop {
                break;
            }
            // Plan-ahead launch: speculate the next decision's plan while
            // this epoch's trajectory "executes" — the drone position
            // after the advance is exactly what the next planning spin
            // will see on its odometry subscription.
            if decisions < cfg.max_decisions && clock.now() < cfg.max_mission_time {
                planning.speculate(
                    worker.as_deref_mut(),
                    env,
                    drone.position,
                    drone.speed(),
                    commanded_velocity,
                    epoch,
                    clock.now(),
                );
            }
        }

        let mission_time = clock.now().max(1e-9);
        // Bus-level fault events (lost/duplicated/delayed messages) are
        // injections too — the direct driver has no bus, so this term is
        // the node pipeline's own.
        degradation_stats.faults_injected += bus.link_fault_stats().total_events() as usize;
        let metrics = cycle::finalize_metrics(
            cfg.mode,
            mission_time,
            energy_joules,
            &telemetry,
            &drone,
            decisions,
            reached_goal,
            collided,
            &planning.stats,
            &DynamicsStats {
                dynamic_replans: planning.dynamic_replans,
                predicted_invalidations: planning.predicted_invalidations,
            },
            &degradation_stats,
            &planning.reuse.stats,
        );
        let graph = GraphInfo::snapshot(&bus);
        NodePipelineResult {
            mission: MissionResult {
                metrics,
                telemetry,
                flown_path,
                flown_times,
            },
            graph,
            comm_per_decision,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_env::{DifficultyConfig, EnvironmentGenerator};

    fn short_environment(seed: u64) -> Environment {
        let cfg = DifficultyConfig {
            obstacle_density: 0.35,
            obstacle_spread: 40.0,
            goal_distance: 120.0,
        };
        EnvironmentGenerator::new(cfg).generate(seed)
    }

    fn quick_config(mode: RuntimeMode) -> NodePipelineConfig {
        let mut config = NodePipelineConfig::new(mode);
        config.mission.max_decisions = 800;
        config.mission.max_mission_time = 2_500.0;
        config
    }

    #[test]
    fn node_graph_mission_reaches_the_goal() {
        let env = short_environment(21);
        let pipeline = NodePipeline::new(quick_config(RuntimeMode::SpatialAware));
        let result = pipeline.run(&env);
        assert!(
            result.mission.metrics.reached_goal,
            "mission did not reach the goal"
        );
        assert!(!result.mission.metrics.collided);
        assert_eq!(
            result.comm_per_decision.len(),
            result.mission.metrics.decisions
        );
    }

    #[test]
    fn graph_contains_the_expected_nodes_and_topics() {
        let env = short_environment(3);
        let pipeline = NodePipeline::new(quick_config(RuntimeMode::SpatialAware));
        let result = pipeline.run(&env);
        let graph = &result.graph;
        for node in [
            "camera_rig",
            "perception",
            "runtime_governor",
            "planner",
            "controller",
        ] {
            assert!(graph.nodes.iter().any(|n| n == node), "missing node {node}");
        }
        for topic in [
            "/sensors/points",
            "/sensors/odometry",
            "/runtime/profile",
            "/runtime/policy",
            "/perception/planner_map",
            "/planning/trajectory",
            "/control/status",
        ] {
            let info = graph
                .topic(topic)
                .unwrap_or_else(|| panic!("missing topic {topic}"));
            assert!(info.stats.messages_published > 0, "no traffic on {topic}");
        }
        assert!(graph.total_bytes() > 0);
        let dot = graph.to_dot();
        assert!(dot.contains("/runtime/policy"));
    }

    #[test]
    fn measured_comm_is_positive_and_heaviest_on_the_point_cloud() {
        let env = short_environment(7);
        let pipeline = NodePipeline::new(quick_config(RuntimeMode::SpatialAware));
        let result = pipeline.run(&env);
        assert!(result.comm_per_decision.iter().all(|&c| c >= 0.0));
        assert!(result.comm_per_decision.iter().any(|&c| c > 0.0));
        let graph = &result.graph;
        let points = graph
            .topic("/sensors/points")
            .unwrap()
            .stats
            .bytes_published;
        let policy = graph
            .topic("/runtime/policy")
            .unwrap()
            .stats
            .bytes_published;
        assert!(
            points > policy,
            "point cloud traffic {points} vs policy {policy}"
        );
    }

    #[test]
    fn node_graph_preserves_the_aware_vs_oblivious_ordering() {
        let env = short_environment(21);
        let aware = NodePipeline::new(quick_config(RuntimeMode::SpatialAware)).run(&env);
        let mut oblivious_cfg = quick_config(RuntimeMode::SpatialOblivious);
        oblivious_cfg.mission.max_decisions = 1_500;
        oblivious_cfg.mission.max_mission_time = 3_000.0;
        let oblivious = NodePipeline::new(oblivious_cfg).run(&env);
        assert!(oblivious.mission.metrics.reached_goal);
        assert!(
            aware.mission.metrics.mean_velocity > 1.5 * oblivious.mission.metrics.mean_velocity
        );
        assert!(aware.mission.metrics.mission_time < oblivious.mission.metrics.mission_time);
        assert!(aware.mission.metrics.energy_kj < oblivious.mission.metrics.energy_kj);
    }

    #[test]
    fn node_graph_matches_direct_runner_metrics_to_first_order() {
        // The node-graph run and the direct runner share every model; the
        // only difference is the measured (rather than modeled) comm term,
        // so mission-level metrics must land in the same ballpark.
        let env = short_environment(21);
        let direct = crate::MissionRunner::new(crate::MissionConfig {
            max_decisions: 800,
            max_mission_time: 2_500.0,
            ..crate::MissionConfig::new(RuntimeMode::SpatialAware)
        })
        .run(&env);
        let graph = NodePipeline::new(quick_config(RuntimeMode::SpatialAware)).run(&env);
        assert!(direct.metrics.reached_goal && graph.mission.metrics.reached_goal);
        let ratio = graph.mission.metrics.mission_time / direct.metrics.mission_time;
        assert!(
            (0.4..2.5).contains(&ratio),
            "node-graph mission time diverged: ratio {ratio}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let env = short_environment(5);
        let pipeline = NodePipeline::new(quick_config(RuntimeMode::SpatialAware));
        let a = pipeline.run(&env);
        let b = pipeline.run(&env);
        assert_eq!(a.mission.metrics.decisions, b.mission.metrics.decisions);
        assert!((a.mission.metrics.mission_time - b.mission.metrics.mission_time).abs() < 1e-9);
        assert_eq!(a.comm_per_decision, b.comm_per_decision);
    }
}
