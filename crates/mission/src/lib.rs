//! Closed-loop mission execution, metrics and the paper's evaluation
//! harness building blocks.
//!
//! This crate wires every substrate together into the end-to-end navigation
//! loop the paper evaluates:
//!
//! ```text
//! sensors (camera rig) ──► point cloud ──► occupancy map ──► planner map
//!        ▲                     │                 │                │
//!        │                 profilers ◄───────────┴──── trajectory ┘
//!        │                     │
//!   drone dynamics ◄── control ◄── governor (deadline + knobs)
//! ```
//!
//! * [`MissionConfig`] / [`MissionRunner`] — run one mission in either
//!   runtime mode ([`roborun_core::RuntimeMode`]) and produce a
//!   [`MissionResult`] (metrics + full per-decision telemetry), with
//!   optional per-knob ablation and sensor-fault injection.
//! * [`cycle`] — the shared decision-cycle core both drivers execute
//!   (stage policies, epoch advance) and the plan-ahead machinery that
//!   overlaps speculative planning with trajectory execution.
//! * [`node_pipeline`] — the same closed loop executed as a
//!   `roborun-middleware` node graph, with the communication term measured
//!   from real per-topic traffic instead of modeled.
//! * [`fleet`] — multi-drone missions in one shared world: K decision
//!   cycles in event-driven lockstep, exchanging committed trajectories
//!   as peer hazards, plus the shared static survey checker N missions
//!   amortise one broad-phase build over.
//! * [`service`] — the async mission service: sweep requests sharded
//!   across a worker pool, finished rows streamed over the middleware
//!   bus in deterministic (request, row) order.
//! * [`scenarios`] — the paper's two motivating missions (package delivery,
//!   search and rescue) plus the small environments used by Figures 3/4.
//! * [`sweep`] — the 27-environment evaluation of Section V with the
//!   Fig. 7 aggregate metrics and the Fig. 8 sensitivity groupings, plus
//!   the fault sweep of the robustness evaluation (deterministic fault
//!   campaigns against the fault-oblivious and degradation-aware
//!   configurations of the same design).
//! * [`breakdown`] — Fig. 11 latency-breakdown series and zone statistics.
//! * [`report`] — plain-text tables and CSV series for the experiment
//!   harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakdown;
pub mod cycle;
pub mod fleet;
pub mod metrics;
pub mod node_pipeline;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod service;
pub mod sweep;

pub use breakdown::{ZoneBreakdown, ZoneStats};
pub use cycle::DegradationStats;
pub use fleet::{run_fleet, FleetConfig, FleetResult, SharedStaticWorld};
pub use metrics::{AggregateMetrics, MissionMetrics};
pub use node_pipeline::{NodePipeline, NodePipelineConfig, NodePipelineResult};
pub use runner::{DegradationConfig, MissionConfig, MissionResult, MissionRunner};
pub use scenarios::{DynamicDifficulty, DynamicScenario, FaultScenario, Scenario};
pub use service::{MissionService, RequestId, ServiceConfig};
pub use sweep::{
    DynamicMatrixConfig, DynamicMatrixRow, DynamicSweepConfig, DynamicSweepRow, FaultSweepConfig,
    FaultSweepRow, SensitivityRow, SweepConfig, SweepError, SweepResults,
};
