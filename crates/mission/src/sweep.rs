//! The 27-environment evaluation sweep (paper Section V, Figures 7 and 8)
//! and the moving-obstacle (dynamic-world) sweep.

use crate::metrics::ImprovementFactors;
use crate::scenarios::{DynamicDifficulty, DynamicScenario, FaultScenario};
use crate::{
    AggregateMetrics, MissionConfig, MissionMetrics, MissionRunner, NodePipeline,
    NodePipelineConfig,
};
use roborun_core::RuntimeMode;
use roborun_env::{DifficultyConfig, EnvironmentGenerator};
use serde::{Deserialize, Serialize};

/// A typed validation error for sweep configurations and mission-service
/// requests: the up-front check that keeps a malformed knob from
/// panicking deep inside a worker thread.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// A difficulty knob is NaN or infinite — it would corrupt seeds,
    /// environment generation and the sensitivity grouping.
    NonFiniteKnob {
        /// Index of the offending difficulty configuration.
        index: usize,
        /// Name of the offending knob.
        knob: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The difficulty list is empty: the request describes no missions.
    NoEnvironments,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::NonFiniteKnob { index, knob, value } => {
                write!(f, "difficulty #{index} has a non-finite {knob} ({value})")
            }
            SweepError::NoEnvironments => write!(f, "no difficulty configurations to sweep"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Validates a difficulty list: every knob of every configuration must be
/// finite, and the list must be non-empty. Shared by
/// [`SweepConfig::validate`] and the mission service's request
/// validation.
pub(crate) fn validate_difficulties(difficulties: &[DifficultyConfig]) -> Result<(), SweepError> {
    if difficulties.is_empty() {
        return Err(SweepError::NoEnvironments);
    }
    for (index, d) in difficulties.iter().enumerate() {
        for (knob, value) in [
            ("obstacle_density", d.obstacle_density),
            ("obstacle_spread", d.obstacle_spread),
            ("goal_distance", d.goal_distance),
        ] {
            if !value.is_finite() {
                return Err(SweepError::NonFiniteKnob { index, knob, value });
            }
        }
    }
    Ok(())
}

/// Configuration of a sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The difficulty configurations to evaluate (defaults to the paper's
    /// 27-environment matrix).
    pub difficulties: Vec<DifficultyConfig>,
    /// Seed used for environment generation and planning.
    pub seed: u64,
    /// Mission configuration template for the spatial-aware runs.
    pub aware: MissionConfig,
    /// Mission configuration template for the spatial-oblivious runs.
    pub oblivious: MissionConfig,
    /// Worker threads for [`run_sweep`]; `None` picks the machine's
    /// available parallelism. `Some(1)` forces the serial path.
    pub threads: Option<usize>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            difficulties: DifficultyConfig::evaluation_matrix(),
            seed: 7,
            aware: MissionConfig::new(RuntimeMode::SpatialAware),
            oblivious: MissionConfig::new(RuntimeMode::SpatialOblivious),
            threads: None,
        }
    }
}

impl SweepConfig {
    /// A scaled-down sweep (shorter goal distances and fewer environments)
    /// for tests and quick demos: every combination of the density and
    /// spread knobs at a 150 m goal distance.
    pub fn quick(seed: u64) -> Self {
        let mut difficulties = Vec::new();
        for &density in &[0.3, 0.6] {
            for &spread in &[40.0, 80.0] {
                difficulties.push(DifficultyConfig {
                    obstacle_density: density,
                    obstacle_spread: spread,
                    goal_distance: 150.0,
                });
            }
        }
        SweepConfig {
            difficulties,
            seed,
            ..SweepConfig::default()
        }
    }

    /// The same sweep with plan-ahead (speculative planning overlap)
    /// forced on for both designs — the configuration of the overlapped
    /// golden fixture and the `decision_overlap` bench.
    pub fn with_plan_ahead(mut self) -> Self {
        self.aware.plan_ahead = true;
        self.oblivious.plan_ahead = true;
        self
    }

    /// Up-front validation: every difficulty knob finite, at least one
    /// environment. [`run_sweep`] asserts this before spawning workers
    /// (so a NaN knob fails fast with a typed message instead of
    /// panicking mid-sweep inside a worker thread), and the mission
    /// service validates requests with the same check at submission.
    pub fn validate(&self) -> Result<(), SweepError> {
        validate_difficulties(&self.difficulties)
    }
}

/// One mission pair (baseline + RoboRun) of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// The environment's difficulty configuration.
    pub difficulty: DifficultyConfig,
    /// Metrics of the spatial-oblivious run.
    pub oblivious: MissionMetrics,
    /// Metrics of the spatial-aware run.
    pub aware: MissionMetrics,
}

/// Mean flight time per level of one difficulty knob, for both designs
/// (one Fig. 8 panel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityRow {
    /// The knob value (density, spread in metres, or goal distance in
    /// metres).
    pub knob_value: f64,
    /// Mean flight time of the oblivious design at this knob value (s).
    pub oblivious_time: f64,
    /// Mean flight time of RoboRun at this knob value (s).
    pub aware_time: f64,
}

/// Full results of a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResults {
    rows: Vec<SweepRow>,
}

impl SweepResults {
    /// Builds results from precomputed rows, in environment order (the
    /// mission service's collect path — its shard workers compute the
    /// same [`run_sweep_row`] values a batch sweep would).
    pub(crate) fn from_rows(rows: Vec<SweepRow>) -> SweepResults {
        SweepResults { rows }
    }

    /// The per-environment rows.
    pub fn rows(&self) -> &[SweepRow] {
        &self.rows
    }

    /// Aggregate metrics of the oblivious design over all environments.
    pub fn oblivious_aggregate(&self) -> AggregateMetrics {
        let mut agg = AggregateMetrics::new(RuntimeMode::SpatialOblivious);
        for row in &self.rows {
            agg.push(&row.oblivious);
        }
        agg
    }

    /// Aggregate metrics of RoboRun over all environments.
    pub fn aware_aggregate(&self) -> AggregateMetrics {
        let mut agg = AggregateMetrics::new(RuntimeMode::SpatialAware);
        for row in &self.rows {
            agg.push(&row.aware);
        }
        agg
    }

    /// The Fig. 7 headline improvement factors.
    pub fn improvements(&self) -> ImprovementFactors {
        ImprovementFactors::from_aggregates(&self.oblivious_aggregate(), &self.aware_aggregate())
    }

    /// Sensitivity of flight time to one knob (Fig. 8b/c/d): rows grouped
    /// by the knob's distinct values, averaged over the other knobs.
    pub fn sensitivity<F>(&self, knob: F) -> Vec<SensitivityRow>
    where
        F: Fn(&DifficultyConfig) -> f64,
    {
        // `total_cmp` gives the same order as `partial_cmp` on the finite
        // values validation admits, and stays total (no panic) even if an
        // unvalidated caller sneaks a NaN in.
        let mut values: Vec<f64> = self.rows.iter().map(|r| knob(&r.difficulty)).collect();
        values.sort_by(f64::total_cmp);
        values.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        values
            .into_iter()
            .map(|value| {
                let matching: Vec<&SweepRow> = self
                    .rows
                    .iter()
                    .filter(|r| (knob(&r.difficulty) - value).abs() < 1e-9)
                    .collect();
                let mean = |f: &dyn Fn(&SweepRow) -> f64| {
                    matching.iter().map(|r| f(r)).sum::<f64>() / matching.len().max(1) as f64
                };
                SensitivityRow {
                    knob_value: value,
                    oblivious_time: mean(&|r| r.oblivious.mission_time),
                    aware_time: mean(&|r| r.aware.mission_time),
                }
            })
            .collect()
    }

    /// Worst-case flight-time ratio (highest ÷ lowest knob value) for each
    /// design — the numbers the paper quotes per knob (e.g. 1.5X vs 1.1X
    /// for density).
    pub fn sensitivity_ratio<F>(&self, knob: F) -> (f64, f64)
    where
        F: Fn(&DifficultyConfig) -> f64,
    {
        let rows = self.sensitivity(knob);
        if rows.len() < 2 {
            return (1.0, 1.0);
        }
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        (
            last.aware_time / first.aware_time.max(1e-9),
            last.oblivious_time / first.oblivious_time.max(1e-9),
        )
    }
}

/// Computes one row of the sweep: environment `i`, both designs.
///
/// Each row owns its seed (`config.seed + i`), so rows are independent of
/// each other and of the order they are computed in. `pub(crate)` because
/// the mission service's shard workers compute exactly these rows.
pub(crate) fn run_sweep_row(config: &SweepConfig, i: usize) -> SweepRow {
    let difficulty = config.difficulties[i];
    let env = EnvironmentGenerator::new(difficulty).generate(config.seed + i as u64);
    let mut aware_cfg = config.aware.clone();
    aware_cfg.seed = config.seed + i as u64;
    let mut oblivious_cfg = config.oblivious.clone();
    oblivious_cfg.seed = config.seed + i as u64;
    let aware = MissionRunner::new(aware_cfg).run(&env);
    let oblivious = MissionRunner::new(oblivious_cfg).run(&env);
    SweepRow {
        difficulty,
        oblivious: oblivious.metrics,
        aware: aware.metrics,
    }
}

/// Runs the sweep: every difficulty configuration, both designs.
///
/// Environments are evaluated in parallel on a scoped worker pool (rows
/// already own their seeds, so the result is bit-identical to the serial
/// reference — [`run_sweep_serial`] — and rows stay in configuration
/// order). `config.threads` overrides the worker count.
///
/// # Panics
///
/// Panics up front when [`SweepConfig::validate`] rejects the
/// configuration (e.g. a NaN difficulty knob) — before any worker is
/// spawned, with the typed error's message.
pub fn run_sweep(config: &SweepConfig) -> SweepResults {
    if let Err(err) = config.validate() {
        panic!("invalid sweep config: {err}");
    }
    SweepResults {
        rows: pooled_rows(config.difficulties.len(), config.threads, |i| {
            run_sweep_row(config, i)
        }),
    }
}

/// The scoped worker pool both sweeps run on: computes `row(i)` for
/// `i in 0..n` on up to `threads` workers (defaulting to the machine's
/// available parallelism), returning results in index order. Rows own
/// their seeds, so the output is identical to a serial loop whatever the
/// scheduling. With one worker (or one row) the pool degenerates to the
/// plain serial loop.
///
/// # Panics
///
/// A panicking row closure no longer tears the pool down through a
/// scoped-thread re-panic (which would replace the original payload with
/// a generic "a scoped thread panicked" and lose the row index): each
/// row runs under `catch_unwind`, the **first** captured panic stops
/// further dispatch, the surviving workers drain, and the panic is then
/// resumed on the calling thread with the failing row index attached to
/// the original message.
fn pooled_rows<R: Send>(
    n: usize,
    threads: Option<usize>,
    row: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    let threads = threads
        .unwrap_or_else(roborun_trace::host_cores)
        .clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(row).collect();
    }

    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // The first row panic, as (row index, payload). Workers that hit a
    // panic record it here (first writer wins) and stop dispatch by
    // exhausting the index counter; the slot mutexes are never poisoned
    // because the row closure runs outside any lock.
    let failure: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // `AssertUnwindSafe` is sound here: a row that panicked
                // never writes its slot, and the pool abandons every
                // other slot by panicking below, so no torn state is
                // ever observed.
                match catch_unwind(AssertUnwindSafe(|| row(i))) {
                    Ok(computed) => {
                        *slots[i].lock().expect("sweep row lock poisoned") = Some(computed);
                    }
                    Err(payload) => {
                        let mut failure = failure.lock().expect("sweep failure lock poisoned");
                        if failure.is_none() {
                            *failure = Some((i, payload));
                        }
                        // Exhaust the counter so idle workers stop
                        // picking up new rows (in-flight rows drain).
                        next.fetch_max(n, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });
    if let Some((index, payload)) = failure.into_inner().expect("sweep failure lock poisoned") {
        let detail = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        panic!("sweep row {index} panicked: {detail}");
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep row lock poisoned")
                .expect("every sweep row was computed")
        })
        .collect()
}

/// The retained serial reference for [`run_sweep`]: one environment at a
/// time, in configuration order.
///
/// # Panics
///
/// Panics up front on an invalid configuration, like [`run_sweep`].
pub fn run_sweep_serial(config: &SweepConfig) -> SweepResults {
    if let Err(err) = config.validate() {
        panic!("invalid sweep config: {err}");
    }
    SweepResults {
        rows: (0..config.difficulties.len())
            .map(|i| run_sweep_row(config, i))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// The dynamic (moving-obstacle) sweep
// ---------------------------------------------------------------------------

/// Configuration of a moving-obstacle sweep: scenario families × seeds,
/// both designs.
#[derive(Debug, Clone)]
pub struct DynamicSweepConfig {
    /// The `(family, seed)` cases to evaluate.
    pub cases: Vec<(DynamicScenario, u64)>,
    /// Mission configuration template for the spatial-aware runs.
    pub aware: MissionConfig,
    /// Mission configuration template for the spatial-oblivious runs.
    pub oblivious: MissionConfig,
    /// Worker threads (same contract as [`SweepConfig::threads`]).
    pub threads: Option<usize>,
}

impl DynamicSweepConfig {
    /// The standard quick dynamic sweep: every scenario family once at
    /// `seed`, short mission caps, voxel decay enabled on both designs
    /// (vacated cells must free up for a moving world to be navigable).
    pub fn quick(seed: u64) -> Self {
        let mut aware = MissionConfig::new(RuntimeMode::SpatialAware);
        aware.max_decisions = 600;
        aware.max_mission_time = 1_500.0;
        aware.voxel_decay = Some(2);
        let mut oblivious = MissionConfig::new(RuntimeMode::SpatialOblivious);
        oblivious.max_decisions = 1_500;
        oblivious.max_mission_time = 3_000.0;
        oblivious.voxel_decay = Some(2);
        DynamicSweepConfig {
            cases: DynamicScenario::ALL.iter().map(|&s| (s, seed)).collect(),
            aware,
            oblivious,
            threads: None,
        }
    }
}

/// One case of the dynamic sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicSweepRow {
    /// The scenario family.
    pub scenario: DynamicScenario,
    /// The seed that generated the environment and its actors.
    pub seed: u64,
    /// Metrics of the spatial-oblivious run.
    pub oblivious: MissionMetrics,
    /// Metrics of the spatial-aware run.
    pub aware: MissionMetrics,
}

fn run_dynamic_sweep_row(config: &DynamicSweepConfig, i: usize) -> DynamicSweepRow {
    let (scenario, seed) = config.cases[i];
    let (env, world) = scenario.world(seed);
    let mut aware_cfg = config.aware.clone();
    aware_cfg.seed = seed.wrapping_add(i as u64);
    let mut oblivious_cfg = config.oblivious.clone();
    oblivious_cfg.seed = seed.wrapping_add(i as u64);
    let aware = MissionRunner::new(aware_cfg).run_dynamic(&env, &world);
    let oblivious = MissionRunner::new(oblivious_cfg).run_dynamic(&env, &world);
    DynamicSweepRow {
        scenario,
        seed,
        oblivious: oblivious.metrics,
        aware: aware.metrics,
    }
}

/// Runs the moving-obstacle sweep: every `(family, seed)` case, both
/// designs, on the same scoped worker pool as [`run_sweep`] (rows own
/// their seeds, so results are bit-identical to
/// [`run_dynamic_sweep_serial`] and stay in case order).
pub fn run_dynamic_sweep(config: &DynamicSweepConfig) -> Vec<DynamicSweepRow> {
    pooled_rows(config.cases.len(), config.threads, |i| {
        run_dynamic_sweep_row(config, i)
    })
}

/// The retained serial reference for [`run_dynamic_sweep`].
pub fn run_dynamic_sweep_serial(config: &DynamicSweepConfig) -> Vec<DynamicSweepRow> {
    (0..config.cases.len())
        .map(|i| run_dynamic_sweep_row(config, i))
        .collect()
}

// ---------------------------------------------------------------------------
// The fault sweep (robustness evaluation)
// ---------------------------------------------------------------------------

/// Configuration of the fault sweep: fault scenario families × seeds,
/// each run twice with the **same** spatial-aware design — once
/// fault-oblivious (degradation disarmed) and once degradation-aware —
/// so the only variable is the graceful-degradation runtime itself.
#[derive(Debug, Clone)]
pub struct FaultSweepConfig {
    /// The `(family, seed)` cases to evaluate.
    pub cases: Vec<(FaultScenario, u64)>,
    /// Mission template for the fault-oblivious runs (degradation off).
    pub baseline: MissionConfig,
    /// Mission template for the degradation-aware runs (degradation on).
    pub aware: MissionConfig,
    /// Worker threads (same contract as [`SweepConfig::threads`]).
    pub threads: Option<usize>,
}

impl FaultSweepConfig {
    /// The standard quick fault sweep: every fault family once at `seed`,
    /// short mission caps, both runs spatial-aware, degradation armed on
    /// the aware template only. Voxel decay is on for both runs so the
    /// phantom voxels injected by noisy sensor bursts can be carved back
    /// out by later clean evidence instead of permanently poisoning the
    /// map for both designs alike.
    pub fn quick(seed: u64) -> Self {
        let mut baseline = MissionConfig::new(RuntimeMode::SpatialAware);
        baseline.max_decisions = 600;
        baseline.max_mission_time = 1_500.0;
        baseline.voxel_decay = Some(2);
        let mut aware = baseline.clone();
        aware.degradation.enabled = true;
        FaultSweepConfig {
            cases: FaultScenario::ALL.iter().map(|&s| (s, seed)).collect(),
            baseline,
            aware,
            threads: None,
        }
    }
}

/// One case of the fault sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepRow {
    /// The fault scenario family.
    pub scenario: FaultScenario,
    /// The seed that generated the environment and the fault plan.
    pub seed: u64,
    /// Metrics of the fault-oblivious run (degradation disarmed).
    pub baseline: MissionMetrics,
    /// Metrics of the degradation-aware run.
    pub degraded: MissionMetrics,
}

fn run_fault_sweep_row(config: &FaultSweepConfig, i: usize) -> FaultSweepRow {
    let (scenario, seed) = config.cases[i];
    let env = scenario.environment(seed);
    let plan = scenario.fault_plan(seed);
    let run = |template: &MissionConfig| {
        let mut cfg = template.clone();
        cfg.seed = seed.wrapping_add(i as u64);
        cfg.fault_plan = plan.clone();
        if scenario.uses_node_pipeline() {
            let pipeline = NodePipeline::new(NodePipelineConfig {
                mission: cfg,
                ..NodePipelineConfig::new(template.mode)
            });
            pipeline.run(&env).mission.metrics
        } else {
            MissionRunner::new(cfg).run(&env).metrics
        }
    };
    FaultSweepRow {
        scenario,
        seed,
        baseline: run(&config.baseline),
        degraded: run(&config.aware),
    }
}

/// Runs the fault sweep: every `(family, seed)` case, fault-oblivious
/// and degradation-aware, on the shared worker pool (rows own their
/// seeds, so results are bit-identical to [`run_fault_sweep_serial`] and
/// stay in case order).
pub fn run_fault_sweep(config: &FaultSweepConfig) -> Vec<FaultSweepRow> {
    pooled_rows(config.cases.len(), config.threads, |i| {
        run_fault_sweep_row(config, i)
    })
}

/// The retained serial reference for [`run_fault_sweep`].
pub fn run_fault_sweep_serial(config: &FaultSweepConfig) -> Vec<FaultSweepRow> {
    (0..config.cases.len())
        .map(|i| run_fault_sweep_row(config, i))
        .collect()
}

// ---------------------------------------------------------------------------
// The dynamic difficulty matrix (temporal Fig. 8 analogue)
// ---------------------------------------------------------------------------

/// Configuration of the moving-obstacle difficulty matrix: the cross
/// product of scenario families × density scales × speed scales × actor
/// waves, each run with the spatial-aware design (the oblivious baseline
/// already collides at the *base* difficulty of every family, so the
/// matrix quantifies how the aware runtime's mission time scales with
/// temporal difficulty — the paper's Fig. 8 question on the time axis).
#[derive(Debug, Clone)]
pub struct DynamicMatrixConfig {
    /// Scenario families to sweep.
    pub families: Vec<DynamicScenario>,
    /// Static obstacle-density multipliers.
    pub density_scales: Vec<f64>,
    /// Actor-speed multipliers.
    pub speed_scales: Vec<f64>,
    /// Actor-wave counts (1 = the family's base pattern).
    pub actor_waves: Vec<usize>,
    /// Seed for world generation and planning.
    pub seed: u64,
    /// Mission configuration template for the aware runs.
    pub aware: MissionConfig,
    /// Worker threads (same contract as [`SweepConfig::threads`]).
    pub threads: Option<usize>,
}

impl DynamicMatrixConfig {
    /// The standard quick matrix: every family at base density, two
    /// speed levels × two count levels, short mission caps, voxel decay
    /// on (the same aware template as [`DynamicSweepConfig::quick`]).
    pub fn quick(seed: u64) -> Self {
        let mut aware = MissionConfig::new(RuntimeMode::SpatialAware);
        aware.max_decisions = 600;
        aware.max_mission_time = 1_500.0;
        aware.voxel_decay = Some(2);
        DynamicMatrixConfig {
            families: DynamicScenario::ALL.to_vec(),
            density_scales: vec![1.0],
            speed_scales: vec![1.0, 1.75],
            actor_waves: vec![1, 2],
            seed,
            aware,
            threads: None,
        }
    }

    /// The matrix cells in row order (family-major, then density, speed,
    /// waves).
    fn cells(&self) -> Vec<(DynamicScenario, DynamicDifficulty)> {
        let mut cells = Vec::new();
        for &family in &self.families {
            for &density_scale in &self.density_scales {
                for &speed_scale in &self.speed_scales {
                    for &actor_waves in &self.actor_waves {
                        cells.push((
                            family,
                            DynamicDifficulty {
                                density_scale,
                                speed_scale,
                                actor_waves,
                            },
                        ));
                    }
                }
            }
        }
        cells
    }
}

/// One cell of the dynamic difficulty matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicMatrixRow {
    /// The scenario family.
    pub scenario: DynamicScenario,
    /// The cell's temporal-difficulty scaling.
    pub difficulty: DynamicDifficulty,
    /// Number of actors in the generated world.
    pub actors: usize,
    /// Metrics of the spatial-aware run.
    pub aware: MissionMetrics,
}

fn run_dynamic_matrix_cell(
    config: &DynamicMatrixConfig,
    cell: &(DynamicScenario, DynamicDifficulty),
    i: usize,
) -> DynamicMatrixRow {
    let (scenario, difficulty) = *cell;
    let (env, world) = scenario.world_with(config.seed, &difficulty);
    let mut aware_cfg = config.aware.clone();
    aware_cfg.seed = config.seed.wrapping_add(i as u64);
    let aware = MissionRunner::new(aware_cfg).run_dynamic(&env, &world);
    DynamicMatrixRow {
        scenario,
        difficulty,
        actors: world.actors().len(),
        aware: aware.metrics,
    }
}

/// Runs the dynamic difficulty matrix on the shared worker pool (cells
/// own their seeds, so results are bit-identical to
/// [`run_dynamic_matrix_serial`] and stay in cell order).
pub fn run_dynamic_matrix(config: &DynamicMatrixConfig) -> Vec<DynamicMatrixRow> {
    let cells = config.cells();
    pooled_rows(cells.len(), config.threads, |i| {
        run_dynamic_matrix_cell(config, &cells[i], i)
    })
}

/// The retained serial reference for [`run_dynamic_matrix`].
pub fn run_dynamic_matrix_serial(config: &DynamicMatrixConfig) -> Vec<DynamicMatrixRow> {
    let cells = config.cells();
    (0..cells.len())
        .map(|i| run_dynamic_matrix_cell(config, &cells[i], i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> SweepResults {
        // Two environments only (spanning both density and spread levels),
        // short missions, to keep the test quick.
        let mut config = SweepConfig::quick(11);
        config.difficulties = vec![config.difficulties[0], config.difficulties[3]];
        config.aware.max_decisions = 600;
        config.oblivious.max_decisions = 1_500;
        run_sweep(&config)
    }

    #[test]
    fn parallel_sweep_matches_serial_reference() {
        let mut config = SweepConfig::quick(23);
        config.difficulties.truncate(3);
        config.aware.max_decisions = 400;
        config.oblivious.max_decisions = 1_000;
        config.threads = Some(3);
        let parallel = run_sweep(&config);
        let serial = run_sweep_serial(&config);
        assert_eq!(parallel.rows().len(), serial.rows().len());
        for (p, s) in parallel.rows().iter().zip(serial.rows()) {
            assert_eq!(p, s);
        }
    }

    #[test]
    fn sweep_produces_one_row_per_environment() {
        let results = tiny_sweep();
        assert_eq!(results.rows().len(), 2);
        for row in results.rows() {
            assert_eq!(row.aware.mode, RuntimeMode::SpatialAware);
            assert_eq!(row.oblivious.mode, RuntimeMode::SpatialOblivious);
            assert!(row.aware.decisions > 0);
            assert!(row.oblivious.decisions > 0);
        }
    }

    #[test]
    fn aggregates_and_improvements_have_paper_direction() {
        let results = tiny_sweep();
        let aware = results.aware_aggregate();
        let oblivious = results.oblivious_aggregate();
        assert_eq!(aware.count(), 2);
        assert_eq!(oblivious.count(), 2);
        let improvements = results.improvements();
        assert!(
            improvements.velocity_gain > 1.5,
            "velocity gain {}",
            improvements.velocity_gain
        );
        assert!(
            improvements.mission_time_gain > 1.5,
            "mission time gain {}",
            improvements.mission_time_gain
        );
        assert!(improvements.energy_gain > 1.0);
        assert!(improvements.cpu_reduction > 0.0);
    }

    #[test]
    fn sensitivity_groups_by_knob_value() {
        let results = tiny_sweep();
        let density = results.sensitivity(|d| d.obstacle_density);
        assert_eq!(density.len(), 2);
        assert!(density[0].knob_value < density[1].knob_value);
        for row in &density {
            assert!(row.oblivious_time > 0.0);
            assert!(row.aware_time > 0.0);
        }
        let (aware_ratio, oblivious_ratio) = results.sensitivity_ratio(|d| d.obstacle_density);
        assert!(aware_ratio > 0.0);
        assert!(oblivious_ratio > 0.0);
        // Goal distance has a single level in the quick sweep → ratio 1.
        let (g_aware, g_obl) = results.sensitivity_ratio(|d| d.goal_distance);
        assert_eq!(g_aware, 1.0);
        assert_eq!(g_obl, 1.0);
    }

    #[test]
    fn quick_config_is_smaller_than_full_matrix() {
        assert_eq!(SweepConfig::default().difficulties.len(), 27);
        assert!(SweepConfig::quick(1).difficulties.len() < 27);
    }

    #[test]
    fn dynamic_matrix_covers_the_cell_cross_product() {
        // A tiny matrix so the test stays quick: one family, two speed
        // levels, one wave level.
        let mut config = DynamicMatrixConfig::quick(41);
        config.families = vec![DynamicScenario::CrossingCorridor];
        config.speed_scales = vec![1.0, 1.75];
        config.actor_waves = vec![1];
        let rows = run_dynamic_matrix(&config);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].difficulty.speed_scale < rows[1].difficulty.speed_scale);
        for row in &rows {
            assert_eq!(row.scenario, DynamicScenario::CrossingCorridor);
            assert_eq!(row.actors, 4);
            assert!(row.aware.decisions > 0);
            assert_eq!(row.aware.mode, RuntimeMode::SpatialAware);
        }
        // Rows own their seeds: the pooled run matches the serial
        // reference bit for bit.
        let serial = run_dynamic_matrix_serial(&config);
        for (p, s) in rows.iter().zip(&serial) {
            assert_eq!(p, s);
        }
        // And the CSV emitter renders one line per cell plus a header.
        let csv = crate::report::dynamic_matrix_csv(&rows);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().next().unwrap().contains("speed_scale"));
        assert!(csv.contains("CrossingCorridor"));
    }

    #[test]
    fn with_plan_ahead_enables_overlap_on_both_designs() {
        let config = SweepConfig::quick(1).with_plan_ahead();
        assert!(config.aware.plan_ahead);
        assert!(config.oblivious.plan_ahead);
        assert!(!SweepConfig::quick(1).aware.plan_ahead);
    }

    #[test]
    fn nan_knob_is_rejected_up_front() {
        let mut config = SweepConfig::quick(1);
        assert!(config.validate().is_ok());
        config.difficulties[1].obstacle_spread = f64::NAN;
        let err = config.validate().unwrap_err();
        match err {
            SweepError::NonFiniteKnob { index, knob, value } => {
                assert_eq!(index, 1);
                assert_eq!(knob, "obstacle_spread");
                assert!(value.is_nan());
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("obstacle_spread"));
        // An empty matrix is also an error rather than a silent no-op.
        config.difficulties.clear();
        assert!(matches!(config.validate(), Err(SweepError::NoEnvironments)));
    }

    #[test]
    #[should_panic(expected = "invalid sweep config")]
    fn run_sweep_rejects_nan_knobs_before_spawning_workers() {
        let mut config = SweepConfig::quick(1);
        config.difficulties[0].goal_distance = f64::INFINITY;
        run_sweep(&config);
    }

    #[test]
    fn pooled_row_panic_reports_the_failing_index() {
        // A deliberately panicking row must surface its own message and
        // row index, not the generic scoped-thread re-panic payload.
        let caught = std::panic::catch_unwind(|| {
            pooled_rows(8, Some(4), |i| {
                if i == 5 {
                    panic!("boom at row {i}");
                }
                i * 2
            })
        })
        .expect_err("the pool must propagate the row panic");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("pool panics carry a formatted message");
        assert!(message.contains("row 5"), "message: {message}");
        assert!(message.contains("boom"), "message: {message}");
        // And a panic-free pool still returns rows in index order.
        assert_eq!(pooled_rows(4, Some(2), |i| i + 10), vec![10, 11, 12, 13]);
    }
}
