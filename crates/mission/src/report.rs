//! Plain-text tables and CSV series for the experiment harness.
//!
//! The harness cannot draw the paper's plots, so every figure is
//! regenerated as either a small table (aggregate bars like Fig. 7) or a
//! CSV time/parameter series (curves like Fig. 2, 5, 10, 11a) that can be
//! plotted with any external tool.

use crate::metrics::ImprovementFactors;
use crate::sweep::{DynamicMatrixRow, FaultSweepRow};
use crate::{SensitivityRow, SweepResults};
use roborun_core::MissionTelemetry;

/// Formats a simple aligned table from a header and rows.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let format_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:width$}",
                    c,
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&format_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&format_row(row, &widths));
        out.push('\n');
    }
    out
}

/// CSV serialisation of a series of `(x, columns…)` rows.
pub fn format_csv(header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.6}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// The Fig. 7 mission-level metric table for a sweep.
pub fn fig7_table(results: &SweepResults) -> String {
    let oblivious = results.oblivious_aggregate();
    let aware = results.aware_aggregate();
    let improvements: ImprovementFactors = results.improvements();
    let rows = vec![
        vec![
            "flight velocity (m/s)".to_string(),
            format!("{:.2}", oblivious.mean_velocity()),
            format!("{:.2}", aware.mean_velocity()),
            format!("{:.2}x", improvements.velocity_gain),
        ],
        vec![
            "mission time (s)".to_string(),
            format!("{:.0}", oblivious.mean_mission_time()),
            format!("{:.0}", aware.mean_mission_time()),
            format!("{:.2}x", improvements.mission_time_gain),
        ],
        vec![
            "mission energy (kJ)".to_string(),
            format!("{:.0}", oblivious.mean_energy_kj()),
            format!("{:.0}", aware.mean_energy_kj()),
            format!("{:.2}x", improvements.energy_gain),
        ],
        vec![
            "CPU utilization".to_string(),
            format!("{:.2}", oblivious.mean_cpu_utilization()),
            format!("{:.2}", aware.mean_cpu_utilization()),
            format!("-{:.0}%", improvements.cpu_reduction * 100.0),
        ],
        vec![
            "median decision latency (s)".to_string(),
            format!("{:.2}", oblivious.mean_median_latency()),
            format!("{:.2}", aware.mean_median_latency()),
            format!(
                "{:.1}x",
                oblivious.mean_median_latency() / aware.mean_median_latency().max(1e-9)
            ),
        ],
        vec![
            "p95 decision latency (s)".to_string(),
            format!("{:.2}", oblivious.mean_p95_latency()),
            format!("{:.2}", aware.mean_p95_latency()),
            format!(
                "{:.1}x",
                oblivious.mean_p95_latency() / aware.mean_p95_latency().max(1e-9)
            ),
        ],
        vec![
            "p99 decision latency (s)".to_string(),
            format!("{:.2}", oblivious.mean_p99_latency()),
            format!("{:.2}", aware.mean_p99_latency()),
            format!(
                "{:.1}x",
                oblivious.mean_p99_latency() / aware.mean_p99_latency().max(1e-9)
            ),
        ],
        vec![
            "max decision latency (s)".to_string(),
            format!("{:.2}", oblivious.mean_max_latency()),
            format!("{:.2}", aware.mean_max_latency()),
            format!(
                "{:.1}x",
                oblivious.mean_max_latency() / aware.mean_max_latency().max(1e-9)
            ),
        ],
        vec![
            "success rate".to_string(),
            format!("{:.2}", oblivious.success_rate()),
            format!("{:.2}", aware.success_rate()),
            String::new(),
        ],
    ];
    format_table(
        &["metric", "spatial-oblivious", "RoboRun", "improvement"],
        &rows,
    )
}

/// One Fig. 8 sensitivity panel as a table.
pub fn fig8_table(knob_name: &str, rows: &[SensitivityRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.knob_value),
                format!("{:.0}", r.oblivious_time),
                format!("{:.0}", r.aware_time),
            ]
        })
        .collect();
    format_table(
        &[
            knob_name,
            "baseline flight time (s)",
            "RoboRun flight time (s)",
        ],
        &body,
    )
}

/// The dynamic difficulty matrix (temporal Fig. 8 analogue) as CSV:
/// one row per cell with the cell's scaling knobs, the actor count, and
/// the aware run's mission time / velocity / safety outcome plus the
/// dynamic-replan and predicted-invalidation counters — the series that
/// quantifies how mission time scales with *temporal* difficulty.
pub fn dynamic_matrix_csv(rows: &[DynamicMatrixRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "scenario,density_scale,speed_scale,actor_waves,actors,mission_time_s,\
         mean_velocity_mps,reached_goal,collided,dynamic_replans,predicted_invalidations\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:?},{:.3},{:.3},{},{},{:.3},{:.3},{},{},{},{}\n",
            row.scenario,
            row.difficulty.density_scale,
            row.difficulty.speed_scale,
            row.difficulty.actor_waves,
            row.actors,
            row.aware.mission_time,
            row.aware.mean_velocity,
            row.aware.reached_goal,
            row.aware.collided,
            row.aware.dynamic_replans,
            row.aware.predicted_invalidations,
        ));
    }
    out
}

/// The fault sweep as CSV: one row per `(scenario, seed)` case with the
/// safety outcome and the degradation counters of both runs — the series
/// behind the robustness headline (the fault-oblivious baseline collides
/// or deadlocks where the degradation-aware runtime completes or
/// safe-stops).
pub fn fault_csv(rows: &[FaultSweepRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "scenario,seed,baseline_mission_time_s,baseline_reached_goal,baseline_collided,\
         baseline_faults_injected,aware_mission_time_s,aware_reached_goal,aware_collided,\
         aware_faults_injected,aware_watchdog_fires,aware_retries,aware_degraded_decisions,\
         aware_safe_stops,aware_p99_latency_s,aware_max_latency_s\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:?},{},{:.3},{},{},{},{:.3},{},{},{},{},{},{},{},{:.3},{:.3}\n",
            row.scenario,
            row.seed,
            row.baseline.mission_time,
            row.baseline.reached_goal,
            row.baseline.collided,
            row.baseline.faults_injected,
            row.degraded.mission_time,
            row.degraded.reached_goal,
            row.degraded.collided,
            row.degraded.faults_injected,
            row.degraded.watchdog_fires,
            row.degraded.retries,
            row.degraded.degraded_decisions,
            row.degraded.safe_stops,
            row.degraded.p99_latency,
            row.degraded.max_latency,
        ));
    }
    out
}

/// The Fig. 10c / Fig. 5-style time series of a mission's telemetry:
/// `time, latency, deadline, precision, velocity, visibility` per decision.
pub fn telemetry_csv(telemetry: &MissionTelemetry) -> String {
    let rows: Vec<Vec<f64>> = telemetry
        .records()
        .iter()
        .map(|r| {
            vec![
                r.time,
                r.latency(),
                r.deadline,
                r.knobs.point_cloud_precision,
                r.commanded_velocity,
                r.visibility,
            ]
        })
        .collect();
    format_csv(
        &[
            "time_s",
            "latency_s",
            "deadline_s",
            "precision_m",
            "velocity_mps",
            "visibility_m",
        ],
        &rows,
    )
}

/// Latency-tail summary of one mission: the exact median, the
/// histogram-derived p95/p99 (the shared [`roborun_geom::LogHistogram`]
/// lattice) and the exact max, for both the end-to-end latency and the
/// plan-ahead critical path — the overlap story told in tail form (with
/// plan-ahead disabled the two columns coincide).
pub fn latency_tail_table(telemetry: &MissionTelemetry) -> String {
    use roborun_geom::{percentile, LogHistogram};
    let end_to_end = telemetry.latency_histogram();
    let critical: LogHistogram = telemetry.critical_path_latencies().into_iter().collect();
    let critical_median = percentile(&telemetry.critical_path_latencies(), 0.5);
    let cell = |v: Option<f64>| format!("{:.3}", v.unwrap_or(0.0));
    let rows = vec![
        vec![
            "median (exact)".to_string(),
            cell(telemetry.median_latency()),
            cell(critical_median),
        ],
        vec![
            "p95 (histogram)".to_string(),
            cell(end_to_end.quantile(0.95)),
            cell(critical.quantile(0.95)),
        ],
        vec![
            "p99 (histogram)".to_string(),
            cell(end_to_end.quantile(0.99)),
            cell(critical.quantile(0.99)),
        ],
        vec![
            "max (exact)".to_string(),
            cell(end_to_end.max()),
            cell(critical.max()),
        ],
    ];
    format_table(&["latency (s)", "end-to-end", "critical path"], &rows)
}

/// Per-decision overlap series: end-to-end latency, critical-path latency
/// and the planning latency plan-ahead masked. With plan-ahead disabled
/// the first two columns coincide and the third is zero.
pub fn overlap_csv(telemetry: &MissionTelemetry) -> String {
    let rows: Vec<Vec<f64>> = telemetry
        .records()
        .iter()
        .map(|r| {
            vec![
                r.time,
                r.latency(),
                r.critical_path_latency(),
                r.masked_latency,
            ]
        })
        .collect();
    format_csv(
        &["time_s", "latency_s", "critical_path_s", "masked_s"],
        &rows,
    )
}

/// The Fig. 11a-style per-decision latency breakdown CSV.
pub fn breakdown_csv(telemetry: &MissionTelemetry) -> String {
    let rows: Vec<Vec<f64>> = telemetry
        .records()
        .iter()
        .map(|r| {
            let b = &r.breakdown;
            vec![
                r.time,
                b.point_cloud,
                b.perception,
                b.perception_to_planning,
                b.planning,
                b.control,
                b.communication,
                b.runtime_overhead,
            ]
        })
        .collect();
    format_csv(
        &[
            "time_s",
            "point_cloud_s",
            "octomap_s",
            "octomap_to_planner_s",
            "planning_s",
            "control_s",
            "comm_s",
            "runtime_s",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_core::{DecisionRecord, Degradation, KnobSettings, RuntimeMode};
    use roborun_geom::Vec3;
    use roborun_sim::LatencyBreakdown;

    #[test]
    fn table_alignment_and_content() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "23456".into()],
            ],
        );
        assert!(t.contains("name"));
        assert!(t.contains("alpha"));
        assert!(t.contains("23456"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = format_csv(&["x", "y"], &[vec![1.0, 2.0], vec![3.0, 4.5]]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "x,y");
        assert!(lines[2].starts_with("3.0"));
    }

    #[test]
    fn telemetry_csvs_cover_every_decision() {
        let mut telemetry = MissionTelemetry::new(RuntimeMode::SpatialAware);
        for i in 0..4 {
            telemetry.push(DecisionRecord {
                time: i as f64,
                position: Vec3::ZERO,
                commanded_velocity: 1.0,
                visibility: 10.0,
                deadline: 2.0,
                knobs: KnobSettings::static_baseline(),
                breakdown: LatencyBreakdown {
                    point_cloud: 0.2,
                    perception: 1.0,
                    ..LatencyBreakdown::default()
                },
                cpu_utilization: 0.4,
                zone: Some('A'),
                masked_latency: 0.0,
                degradation: Degradation::Healthy,
            });
        }
        let series = telemetry_csv(&telemetry);
        assert_eq!(series.lines().count(), 5);
        let breakdown = breakdown_csv(&telemetry);
        assert_eq!(breakdown.lines().count(), 5);
        assert!(breakdown.lines().next().unwrap().contains("octomap_s"));
        let overlap = overlap_csv(&telemetry);
        assert_eq!(overlap.lines().count(), 5);
        assert!(overlap.lines().next().unwrap().contains("critical_path_s"));
        // No masking in these records: the two latency columns agree.
        for line in overlap.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            assert_eq!(cells[1], cells[2]);
            assert_eq!(cells[3], "0.000000");
        }
    }

    #[test]
    fn fig8_table_formats_rows() {
        let rows = vec![
            SensitivityRow {
                knob_value: 0.3,
                oblivious_time: 2000.0,
                aware_time: 450.0,
            },
            SensitivityRow {
                knob_value: 0.6,
                oblivious_time: 2200.0,
                aware_time: 650.0,
            },
        ];
        let t = fig8_table("obstacle density", &rows);
        assert!(t.contains("obstacle density"));
        assert!(t.contains("2200"));
        assert!(t.contains("650"));
    }
}
