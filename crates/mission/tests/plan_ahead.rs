//! Plan-ahead conformance: determinism, masked-latency accounting, and the
//! safety of the incremental re-check.
//!
//! The *off ≡ seed* direction — a mission with plan-ahead disabled being
//! bit-for-bit the pre-overlap behaviour — is locked by the unchanged
//! `golden_sweep` fixture; the tests here pin the remaining contract:
//! disabled runs report nothing, enabled runs stay deterministic and
//! account masked latency honestly, and a speculative plan invalidated by
//! an injected obstacle delta is never executed.

use roborun_core::RuntimeMode;
use roborun_env::{DifficultyConfig, Environment, EnvironmentGenerator};
use roborun_geom::{Aabb, SplitMix64, Vec3};
use roborun_mission::cycle::{validate_speculation, SpeculationVerdict};
use roborun_mission::{MissionConfig, MissionRunner};
use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
use roborun_planning::{
    CollisionChecker, PlanError, PlanStats, Planner, PlannerConfig, Trajectory,
};

fn short_environment(seed: u64) -> Environment {
    let cfg = DifficultyConfig {
        obstacle_density: 0.35,
        obstacle_spread: 40.0,
        goal_distance: 120.0,
    };
    EnvironmentGenerator::new(cfg).generate(seed)
}

fn quick_config(plan_ahead: bool) -> MissionConfig {
    MissionConfig {
        max_decisions: 600,
        max_mission_time: 1_500.0,
        plan_ahead,
        ..MissionConfig::new(RuntimeMode::SpatialAware)
    }
}

#[test]
fn disabled_plan_ahead_reports_nothing() {
    let env = short_environment(21);
    let result = MissionRunner::new(quick_config(false)).run(&env);
    assert!(result.metrics.reached_goal);
    assert_eq!(result.metrics.plan_ahead_attempts, 0);
    assert_eq!(result.metrics.plan_ahead_hits, 0);
    assert_eq!(result.metrics.plan_ahead_hit_rate(), None);
    assert_eq!(result.metrics.masked_planning_latency, 0.0);
    assert_eq!(result.telemetry.total_masked_latency(), 0.0);
    for r in result.telemetry.records() {
        assert_eq!(r.masked_latency, 0.0);
        assert_eq!(
            r.critical_path_latency().to_bits(),
            r.latency().to_bits(),
            "critical path must equal the total when nothing is masked"
        );
    }
}

#[test]
fn plan_ahead_masks_latency_and_reports_the_hit_rate() {
    let env = short_environment(21);
    let result = MissionRunner::new(quick_config(true)).run(&env);
    assert!(
        result.metrics.reached_goal && !result.metrics.collided,
        "plan-ahead mission failed: {:?}",
        result.metrics
    );
    assert!(result.metrics.plan_ahead_attempts > 0, "never speculated");
    assert!(
        result.metrics.plan_ahead_hits > 0,
        "no speculation survived validation over {} attempts",
        result.metrics.plan_ahead_attempts
    );
    let hit_rate = result.metrics.plan_ahead_hit_rate().unwrap();
    assert!((0.0..=1.0).contains(&hit_rate));
    assert!(
        result.metrics.masked_planning_latency > 0.0,
        "no planning latency was masked"
    );
    assert!(
        (result.telemetry.total_masked_latency() - result.metrics.masked_planning_latency).abs()
            < 1e-12
    );
    let mut masked_decisions = 0usize;
    for r in result.telemetry.records() {
        assert!(r.masked_latency >= 0.0);
        assert!(
            r.masked_latency <= r.breakdown.planning + 1e-12,
            "masked {} exceeds the planning stage {}",
            r.masked_latency,
            r.breakdown.planning
        );
        if r.masked_latency > 0.0 {
            masked_decisions += 1;
            assert!(r.critical_path_latency() < r.latency());
        }
    }
    assert_eq!(masked_decisions, result.metrics.plan_ahead_hits);
    // Overlap can only help the median reaction time.
    assert!(
        result.telemetry.median_critical_path_latency().unwrap()
            <= result.telemetry.median_latency().unwrap() + 1e-12
    );
}

#[test]
fn plan_ahead_runs_are_deterministic() {
    let env = short_environment(5);
    let runner = MissionRunner::new(quick_config(true));
    let a = runner.run(&env);
    let b = runner.run(&env);
    assert_eq!(a.metrics.decisions, b.metrics.decisions);
    assert_eq!(
        a.metrics.mission_time.to_bits(),
        b.metrics.mission_time.to_bits()
    );
    assert_eq!(
        a.metrics.masked_planning_latency.to_bits(),
        b.metrics.masked_planning_latency.to_bits()
    );
    assert_eq!(a.metrics.plan_ahead_attempts, b.metrics.plan_ahead_attempts);
    assert_eq!(a.metrics.plan_ahead_hits, b.metrics.plan_ahead_hits);
    assert_eq!(a.telemetry.records(), b.telemetry.records());
    assert_eq!(a.flown_path, b.flown_path);
}

// ---------------------------------------------------------------------------
// Validation-contract unit cases
// ---------------------------------------------------------------------------

const CLEARANCE: f64 = 0.45 * 0.6;

fn export_of(map: &OccupancyMap, origin: Vec3) -> PlannerMap {
    PlannerMap::export(map, &ExportConfig::new(0.3, 1e9, origin))
}

/// A speculative plan across open space, exactly as the worker would
/// produce it from a snapshot.
fn open_space_speculation(
    snapshot: &PlannerMap,
    start: Vec3,
    goal: Vec3,
) -> Result<(Trajectory, PlanStats), PlanError> {
    let planner = Planner::new(PlannerConfig::default());
    let mut checker = CollisionChecker::new(snapshot.clone(), 0.45, 0.3);
    let bounds = Aabb::new(start, goal).inflate(25.0);
    planner.plan_with_checker(&mut checker, start, goal, &bounds, 3.0)
}

#[test]
fn injected_obstacle_delta_discards_the_speculation() {
    let origin = Vec3::new(0.0, 0.0, 5.0);
    let start = Vec3::new(0.0, 0.0, 5.0);
    let goal = Vec3::new(30.0, 0.0, 5.0);
    let map = OccupancyMap::new(0.3);
    let snapshot = export_of(&map, origin);
    let outcome = open_space_speculation(&snapshot, start, goal);
    assert!(outcome.is_ok());

    // Inject an obstacle squarely on the speculative trajectory.
    let mut evolved = map.clone();
    evolved.integrate_cloud(
        &PointCloud::new(origin, vec![Vec3::new(15.0, 0.0, 5.0)]),
        0.3,
    );
    let fresh = export_of(&evolved, origin);
    assert!(!fresh.delta_from(&snapshot).unwrap().added().is_empty());
    let verdict = validate_speculation(
        &outcome, &snapshot, start, goal, &fresh, goal, start, CLEARANCE, 0.3,
    );
    assert_eq!(
        verdict,
        SpeculationVerdict::Discarded,
        "an invalidated speculation must never be executed"
    );

    // The identical delta-free world adopts the plan.
    let verdict = validate_speculation(
        &outcome, &snapshot, start, goal, &snapshot, goal, start, CLEARANCE, 0.3,
    );
    assert!(matches!(verdict, SpeculationVerdict::Adopted(_)));

    // A drifted local goal is patched (adopted with the stale goal) but a
    // moved start is discarded.
    let drifted_goal = Vec3::new(30.0, 4.0, 5.0);
    let verdict = validate_speculation(
        &outcome,
        &snapshot,
        start,
        goal,
        &snapshot,
        drifted_goal,
        start,
        CLEARANCE,
        0.3,
    );
    assert!(matches!(verdict, SpeculationVerdict::Patched(_)));
    let moved_start = start + Vec3::new(0.5, 0.0, 0.0);
    let verdict = validate_speculation(
        &outcome,
        &snapshot,
        start,
        goal,
        &snapshot,
        goal,
        moved_start,
        CLEARANCE,
        0.3,
    );
    assert_eq!(verdict, SpeculationVerdict::Discarded);

    // A voxel-size change (export precision knob) has no key-level delta
    // and must discard.
    let coarse = PlannerMap::export(&evolved, &ExportConfig::new(0.6, 1e9, origin));
    let verdict = validate_speculation(
        &outcome, &snapshot, start, goal, &coarse, goal, start, CLEARANCE, 0.3,
    );
    assert_eq!(verdict, SpeculationVerdict::Discarded);

    // A failed speculation is always discarded.
    let failed: Result<(Trajectory, PlanStats), PlanError> = Err(PlanError::StartBlocked);
    let verdict = validate_speculation(
        &failed, &snapshot, start, goal, &snapshot, goal, start, CLEARANCE, 0.3,
    );
    assert_eq!(verdict, SpeculationVerdict::Discarded);
}

/// Property-style sweep: whatever the injected delta looks like, a verdict
/// of adopted/patched implies the whole trajectory polyline (sampled at
/// the synchronous check step) clears every added voxel — and a discard
/// (with matching start/goal/voxel-size and a successful plan) implies
/// some sample really was blocked.
#[test]
fn adopted_speculations_never_violate_the_incremental_recheck() {
    let origin = Vec3::new(0.0, 0.0, 5.0);
    let start = Vec3::new(0.0, 0.0, 5.0);
    let goal = Vec3::new(30.0, 0.0, 5.0);
    let base = OccupancyMap::new(0.3);
    let snapshot = export_of(&base, origin);
    let outcome = open_space_speculation(&snapshot, start, goal);
    let (trajectory, _) = outcome.as_ref().expect("open-space plan succeeds");

    let mut rng = SplitMix64::new(0x9A7);
    let mut adopted = 0usize;
    let mut discarded = 0usize;
    for case in 0..120 {
        // An injected blob: even cases land right on a trajectory sample
        // (guaranteed invalidations), odd cases anywhere in the corridor
        // (mostly clear, occasionally grazing).
        let blob = if case % 2 == 0 {
            let pick = rng.uniform(0.0, trajectory.len() as f64 - 1e-9) as usize;
            trajectory.points()[pick].position
                + Vec3::new(
                    rng.uniform(-0.2, 0.2),
                    rng.uniform(-0.2, 0.2),
                    rng.uniform(-0.2, 0.2),
                )
        } else {
            Vec3::new(
                rng.uniform(-2.0, 32.0),
                rng.uniform(-6.0, 6.0),
                rng.uniform(3.0, 7.0),
            )
        };
        let mut evolved = base.clone();
        evolved.integrate_cloud(&PointCloud::new(origin, vec![blob]), 0.3);
        let fresh = export_of(&evolved, origin);
        let delta = fresh.delta_from(&snapshot).unwrap();
        let verdict = validate_speculation(
            &outcome, &snapshot, start, goal, &fresh, goal, start, CLEARANCE, 0.3,
        );
        let clear = CollisionChecker::path_clear_of_added(
            &delta,
            trajectory.points().iter().map(|p| p.position),
            CLEARANCE,
            0.3,
        );
        match verdict {
            SpeculationVerdict::Adopted(_) | SpeculationVerdict::Patched(_) => {
                adopted += 1;
                assert!(
                    clear,
                    "adopted speculation violates the re-check for blob {blob}"
                );
                // Independent ground truth: no trajectory point may sit
                // within clearance of a voxel the delta added.
                for p in trajectory.points() {
                    for &key in delta.added() {
                        let d = roborun_geom::Aabb::from_center_half_extents(
                            key.center(delta.voxel_size()),
                            Vec3::splat(delta.voxel_size() * 0.5),
                        )
                        .distance_to_point(p.position);
                        assert!(
                            d > CLEARANCE,
                            "adopted plan passes {d:.3} m from an added voxel (blob {blob})"
                        );
                    }
                }
            }
            SpeculationVerdict::Discarded => {
                discarded += 1;
                assert!(!clear, "valid speculation was discarded for blob {blob}");
            }
        }
    }
    assert!(adopted > 0, "sweep never adopted a speculation");
    assert!(discarded > 0, "sweep never discarded a speculation");
}
