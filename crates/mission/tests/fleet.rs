//! Fleet-mission integration locks.
//!
//! * A K=3 fleet in one shared world completes with zero peer
//!   collisions and is **bit-identical** across reruns.
//! * A randomized safety sweep over several worlds: no two drones'
//!   flown poses ever come within collision distance.
//! * Static peer trajectories are honoured deterministically by *both*
//!   drivers (the direct runner and the node pipeline), and actually
//!   steer the mission.
//!
//! The fleet-features-**off** side is locked elsewhere: the four golden
//! fixtures (`golden_sweep.rs`) regenerate byte-identical because an
//! empty peer set never touches the decision path, and the
//! single-drone-fleet ≡ `MissionRunner` bit-identity is a `fleet`
//! module unit test.

use roborun_core::RuntimeMode;
use roborun_env::{DifficultyConfig, Environment, EnvironmentGenerator};
use roborun_geom::Vec3;
use roborun_mission::{
    run_fleet, FleetConfig, MissionConfig, MissionRunner, NodePipeline, NodePipelineConfig,
};

fn environment(seed: u64) -> Environment {
    EnvironmentGenerator::new(DifficultyConfig {
        obstacle_density: 0.18,
        obstacle_spread: 40.0,
        goal_distance: 120.0,
    })
    .generate(seed)
}

fn base_config() -> MissionConfig {
    MissionConfig {
        max_decisions: 800,
        max_mission_time: 2_000.0,
        ..MissionConfig::new(RuntimeMode::SpatialAware)
    }
}

#[test]
fn three_drone_fleet_is_safe_and_bit_identical_across_reruns() {
    let env = environment(2);
    let config = FleetConfig::new(base_config(), 3);
    let a = run_fleet(&config, &env);
    let b = run_fleet(&config, &env);

    assert_eq!(a.missions.len(), 3);
    assert!(
        a.all_reached_goal(),
        "a fleet drone failed: {:?}",
        a.missions
            .iter()
            .map(|m| (m.metrics.reached_goal, m.metrics.collided))
            .collect::<Vec<_>>()
    );
    // Zero peer collisions: the closest any two drones ever came stays
    // above the two-body collision distance.
    let collision_distance = 2.0 * config.base.drone.body_radius;
    assert!(
        a.min_separation > collision_distance,
        "drones came within {} m (collision distance {} m)",
        a.min_separation,
        collision_distance
    );

    // Bit-identity across reruns: every flown position, every metric.
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.peer_updates, b.peer_updates);
    assert_eq!(a.min_separation.to_bits(), b.min_separation.to_bits());
    for (ma, mb) in a.missions.iter().zip(&b.missions) {
        assert_eq!(ma.flown_path, mb.flown_path);
        assert_eq!(ma.flown_times, mb.flown_times);
        assert_eq!(ma.metrics.decisions, mb.metrics.decisions);
        assert_eq!(
            ma.metrics.mission_time.to_bits(),
            mb.metrics.mission_time.to_bits()
        );
        assert_eq!(
            ma.metrics.energy_kj.to_bits(),
            mb.metrics.energy_kj.to_bits()
        );
    }
}

#[test]
fn randomized_fleet_safety_sweep_never_violates_separation() {
    // Several worlds, K=3 each: whatever routes the planners pick, no
    // two drones' flown poses ever come within collision distance.
    let mut completed_fleets = 0usize;
    for seed in [4, 13, 19] {
        let env = environment(seed);
        let config = FleetConfig::new(base_config(), 3);
        let result = run_fleet(&config, &env);
        let collision_distance = 2.0 * config.base.drone.body_radius;
        assert!(
            result.min_separation > collision_distance,
            "seed {seed}: separation {} m below collision distance {} m",
            result.min_separation,
            collision_distance
        );
        for m in &result.missions {
            assert!(!m.metrics.collided, "seed {seed}: a drone hit the world");
        }
        if result.all_reached_goal() {
            completed_fleets += 1;
        }
    }
    // The planner is stochastic (the paper accepts ≥80% success); most
    // fleets must still fully complete.
    assert!(
        completed_fleets >= 2,
        "only {completed_fleets}/3 fleets fully reached their goals"
    );
}

/// A serpentine peer "survey pattern" at station `x`: horizontal runs
/// every 1.5 m from z = 4 to z = 13 over y ∈ [-15, 15]. With the
/// 2·body-radius inflation the swept runs overlap into a solid wall the
/// planner cannot fly straight through at any cruise altitude.
fn survey_wall(x: f64) -> Vec<Vec3> {
    let mut points = Vec::new();
    let mut sign = 1.0;
    let mut z = 4.0;
    while z <= 13.0 {
        points.push(Vec3::new(x, -15.0 * sign, z));
        points.push(Vec3::new(x, 15.0 * sign, z));
        sign = -sign;
        z += 1.5;
    }
    points
}

#[test]
fn static_peers_are_deterministic_on_both_drivers_and_steer_the_mission() {
    let env = environment(9);
    // Peer survey walls crossing the direct route at two stations: the
    // mission must detour around (or over) them.
    let peers = vec![survey_wall(40.0), survey_wall(80.0)];
    let mut with_peers = base_config();
    with_peers.peer_trajectories = peers.clone();

    // Direct driver: bit-identical across reruns, different from the
    // peer-free mission (the corridors really steered it).
    let runner = MissionRunner::new(with_peers.clone());
    let a = runner.run(&env);
    let b = runner.run(&env);
    assert_eq!(a.flown_path, b.flown_path);
    assert_eq!(a.flown_times, b.flown_times);
    assert_eq!(a.metrics.decisions, b.metrics.decisions);
    assert_eq!(
        a.metrics.mission_time.to_bits(),
        b.metrics.mission_time.to_bits()
    );
    let solo = MissionRunner::new(base_config()).run(&env);
    assert_ne!(
        a.flown_path, solo.flown_path,
        "peer corridors did not steer the mission at all"
    );

    // Node pipeline: the same static peers, bit-identical across reruns.
    let mut node_config = NodePipelineConfig::new(RuntimeMode::SpatialAware);
    node_config.mission = with_peers;
    let pipeline = NodePipeline::new(node_config);
    let na = pipeline.run(&env);
    let nb = pipeline.run(&env);
    assert_eq!(na.mission.flown_path, nb.mission.flown_path);
    assert_eq!(na.mission.flown_times, nb.mission.flown_times);
    assert_eq!(na.mission.metrics.decisions, nb.mission.metrics.decisions);
    assert_eq!(
        na.mission.metrics.mission_time.to_bits(),
        nb.mission.metrics.mission_time.to_bits()
    );
}
