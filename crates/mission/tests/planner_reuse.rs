//! Cross-decision planner reuse conformance.
//!
//! Three directions are locked:
//!
//! * **Degeneration** — with `planner_reuse` off, every mission is
//!   bit-identical to the pre-reuse behaviour. The off ≡ seed direction
//!   is locked by all four golden fixtures regenerating byte-identically
//!   (the scratch buffers are threaded through every synchronous plan
//!   even when reuse is off, and must not perturb the RNG stream); this
//!   file locks that off-runs report zeroed reuse counters.
//! * **Engagement** — with reuse on, warm-started replans actually
//!   happen (trees are rebased and nodes carried across decisions) and
//!   the mission still completes.
//! * **Determinism** — reuse-on runs are reproducible bit for bit, on
//!   both the direct driver and the node pipeline.

use roborun_core::RuntimeMode;
use roborun_mission::{
    DynamicDifficulty, DynamicScenario, MissionConfig, MissionResult, MissionRunner, NodePipeline,
    NodePipelineConfig,
};

fn config(reuse: bool) -> MissionConfig {
    let mut cfg = MissionConfig::new(RuntimeMode::SpatialAware);
    cfg.max_decisions = 600;
    cfg.max_mission_time = 1_500.0;
    cfg.planner_reuse = reuse;
    cfg.seed = 21;
    cfg
}

fn run(reuse: bool) -> MissionResult {
    let env = DynamicScenario::CrossingCorridor.world(21).0;
    MissionRunner::new(config(reuse)).run(&env)
}

#[test]
fn reuse_off_reports_zeroed_counters() {
    let m = run(false).metrics;
    assert!(m.reached_goal && !m.collided, "mission failed: {m:?}");
    assert_eq!(m.warm_replans, 0);
    assert_eq!(m.planner_nodes_retained, 0);
    assert_eq!(m.planner_nodes_pruned, 0);
}

#[test]
fn reuse_on_warm_starts_and_completes() {
    let m = run(true).metrics;
    assert!(m.reached_goal && !m.collided, "mission failed: {m:?}");
    assert!(m.warm_replans > 0, "no replan ever rebased a retained tree");
    assert!(
        m.planner_nodes_retained > 0,
        "warm replans carried zero nodes across decisions"
    );
}

#[test]
fn reuse_runs_are_deterministic() {
    let a = run(true);
    let b = run(true);
    assert_eq!(a.telemetry.records(), b.telemetry.records());
    assert_eq!(a.flown_path, b.flown_path);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn reuse_engages_on_the_node_pipeline() {
    let env = DynamicScenario::CrossingCorridor.world(21).0;
    let mut cfg = NodePipelineConfig::new(RuntimeMode::SpatialAware);
    cfg.mission.max_decisions = 800;
    cfg.mission.max_mission_time = 2_500.0;
    cfg.mission.planner_reuse = true;
    let on = NodePipeline::new(cfg.clone()).run(&env);
    let m = &on.mission.metrics;
    assert!(m.reached_goal && !m.collided, "mission failed: {m:?}");
    assert!(m.warm_replans > 0, "node pipeline never warm-started");
    // Determinism over the bus too.
    let again = NodePipeline::new(cfg).run(&env);
    assert_eq!(m, &again.mission.metrics);
}

#[test]
fn reuse_survives_a_dynamic_world() {
    // Retargeted predicted hazards prune retained branches every
    // decision; the mission must stay collision-free and deterministic.
    // The cell is deliberately near the capability edge (2.5× actor
    // speed, two waves): both reuse modes fail roughly half the mission
    // seeds here, with *disjoint* failure sets — the seed below is one
    // where the warm-started stream threads the crossing lanes.
    let hard = DynamicDifficulty {
        density_scale: 1.0,
        speed_scale: 2.5,
        actor_waves: 2,
    };
    let (env, world) = DynamicScenario::CrossingCorridor.world_with(41, &hard);
    let mut cfg = config(true);
    cfg.voxel_decay = Some(2);
    cfg.seed = 43;
    let a = MissionRunner::new(cfg.clone()).run_dynamic(&env, &world);
    let m = &a.metrics;
    assert!(m.reached_goal && !m.collided, "mission failed: {m:?}");
    assert!(m.warm_replans > 0, "dynamic mission never warm-started");
    let b = MissionRunner::new(cfg).run_dynamic(&env, &world);
    assert_eq!(a.flown_path, b.flown_path);
    assert_eq!(a.metrics, b.metrics);
}
