//! The disabled-tracing contract, locked against golden fixture #1.
//!
//! `roborun-trace`'s promise is that a disarmed tracer leaves the
//! mission on the exact pre-trace code path: same RNG streams, same
//! float operations, same metrics to the last bit. These tests pin that
//! from both directions —
//!
//! * **disarmed** missions must reproduce the checked-in golden-sweep
//!   fixture byte for byte (any drift means instrumentation leaked into
//!   the disabled path), and
//! * **armed** missions must produce bit-identical metrics to disarmed
//!   ones while actually retaining events (tracing observes, never
//!   perturbs — in particular it must not touch any RNG stream).

use roborun_core::RuntimeMode;
use roborun_env::{DifficultyConfig, EnvironmentGenerator};
use roborun_mission::sweep::run_sweep;
use roborun_mission::{MissionConfig, MissionMetrics, MissionRunner, SweepConfig};
use roborun_trace::collector;
use std::sync::Mutex;

/// The tracer gate is process-global; both tests toggle it.
static TEST_LOCK: Mutex<()> = Mutex::new(());

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_sweep.txt"
);

/// Row 0 of the golden sweep (see `golden_sweep.rs::golden_config`):
/// rows own their seeds (`seed + index`), so running just the first
/// difficulty reproduces the fixture's row 0 bit for bit.
fn row0_config() -> SweepConfig {
    let mut aware = MissionConfig::new(RuntimeMode::SpatialAware);
    aware.max_decisions = 600;
    aware.max_mission_time = 1_500.0;
    let mut oblivious = MissionConfig::new(RuntimeMode::SpatialOblivious);
    oblivious.max_decisions = 1_500;
    oblivious.max_mission_time = 3_000.0;
    SweepConfig {
        difficulties: vec![DifficultyConfig {
            obstacle_density: 0.3,
            obstacle_spread: 40.0,
            goal_distance: 120.0,
        }],
        seed: 41,
        aware,
        oblivious,
        threads: None,
    }
}

/// Same raw-bit rendering as `golden_sweep.rs` (kept in sync by the
/// fixture comparison itself: a format drift fails both tests).
fn render_metrics(label: &str, m: &MissionMetrics) -> String {
    let mut out = format!("{label} mode={:?}", m.mode);
    let mut f = |name: &str, v: f64| out.push_str(&format!(" {name}={:016x}", v.to_bits()));
    f("mission_time", m.mission_time);
    f("energy_kj", m.energy_kj);
    f("mean_velocity", m.mean_velocity);
    f("mean_cpu", m.mean_cpu_utilization);
    f("median_latency", m.median_latency);
    out.push_str(&format!(" decisions={}", m.decisions));
    let mut f = |name: &str, v: f64| out.push_str(&format!(" {name}={:016x}", v.to_bits()));
    f("distance", m.distance_travelled);
    out.push_str(&format!(
        " reached_goal={} collided={}",
        m.reached_goal, m.collided
    ));
    out
}

#[test]
fn disarmed_sweep_row_is_bit_identical_to_golden_fixture() {
    let _guard = TEST_LOCK.lock().unwrap();
    collector::disarm();
    let results = run_sweep(&row0_config());
    let row = &results.rows()[0];

    let fixture = std::fs::read_to_string(FIXTURE).expect("golden fixture #1 present");
    let lines: Vec<&str> = fixture.lines().collect();
    // Lines 0–1 are comments; 2 is the row-0 header; 3–4 its metrics.
    assert_eq!(
        lines[3],
        render_metrics("  oblivious", &row.oblivious),
        "disarmed oblivious mission drifted from golden fixture #1"
    );
    assert_eq!(
        lines[4],
        render_metrics("  aware", &row.aware),
        "disarmed aware mission drifted from golden fixture #1"
    );
    assert!(
        collector::drain().is_empty(),
        "disarmed mission retained trace events"
    );
}

#[test]
fn armed_tracing_never_perturbs_mission_metrics() {
    let _guard = TEST_LOCK.lock().unwrap();
    let difficulty = DifficultyConfig {
        obstacle_density: 0.45,
        obstacle_spread: 40.0,
        goal_distance: 80.0,
    };
    let env = EnvironmentGenerator::new(difficulty).generate(23);
    let config = || {
        let mut c = MissionConfig::new(RuntimeMode::SpatialAware);
        c.seed = 23;
        c.max_decisions = 400;
        c.max_mission_time = 1_000.0;
        c
    };

    collector::disarm();
    let _ = collector::drain();
    let disarmed = MissionRunner::new(config()).run(&env);
    assert!(collector::drain().is_empty());

    collector::arm();
    let armed = MissionRunner::new(config()).run(&env);
    collector::disarm();
    let events = collector::drain();

    assert!(!events.is_empty(), "armed mission retained no trace events");
    assert_eq!(
        disarmed.metrics, armed.metrics,
        "armed tracing perturbed mission outcomes"
    );
}
