//! Planner-level predicted costmap conformance.
//!
//! Two directions are locked:
//!
//! * **Degeneration** — with the costmap off, or in a static world, a
//!   mission is bit-identical to the reject-loop behaviour (the off ≡
//!   seed direction is additionally locked by all three golden
//!   fixtures regenerating byte-identically).
//! * **One-shot routing** — on a temporally hard dynamic world (the
//!   difficulty matrix's fast/dense cell, where the reject-loop
//!   measurably discards speculations and replans against predicted
//!   conflicts), planning through the composed hazard context completes
//!   the same scenarios collision-free with *fewer* predicted
//!   invalidations and no more dynamic replans.

use roborun_core::RuntimeMode;
use roborun_mission::{
    DynamicDifficulty, DynamicScenario, MissionConfig, MissionMetrics, MissionRunner,
};

fn dynamic_config(costmap: bool) -> MissionConfig {
    let mut cfg = MissionConfig::new(RuntimeMode::SpatialAware);
    cfg.max_decisions = 600;
    cfg.max_mission_time = 1_500.0;
    cfg.voxel_decay = Some(2);
    cfg.plan_ahead = true;
    cfg.predicted_costmap = costmap;
    cfg.seed = 41;
    cfg
}

/// The matrix cell the comparison runs at: fast actors, two waves — the
/// regime where predicted conflicts actually cross the aware runtime's
/// corridor (at base difficulty the governor's closing-speed throttle
/// keeps the MAV clear and both paths are conflict-free).
fn hard_cell() -> DynamicDifficulty {
    DynamicDifficulty {
        density_scale: 1.0,
        speed_scale: 2.5,
        actor_waves: 2,
    }
}

fn run(scenario: DynamicScenario, costmap: bool) -> MissionMetrics {
    let (env, world) = scenario.world_with(41, &hard_cell());
    MissionRunner::new(dynamic_config(costmap))
        .run_dynamic(&env, &world)
        .metrics
}

#[test]
fn static_missions_are_bit_identical_with_the_costmap_on() {
    // No dynamics: the predicted set is empty every decision, so the
    // composed context must never change a single bit.
    let env = DynamicScenario::CrossingCorridor.world(21).0;
    let mut on_cfg = MissionConfig::new(RuntimeMode::SpatialAware);
    on_cfg.max_decisions = 600;
    on_cfg.max_mission_time = 1_500.0;
    on_cfg.predicted_costmap = true;
    let mut off_cfg = on_cfg.clone();
    off_cfg.predicted_costmap = false;
    let on = MissionRunner::new(on_cfg).run(&env);
    let off = MissionRunner::new(off_cfg).run(&env);
    assert_eq!(on.telemetry.records(), off.telemetry.records());
    assert_eq!(on.flown_path, off.flown_path);
    assert_eq!(
        on.metrics.mission_time.to_bits(),
        off.metrics.mission_time.to_bits()
    );
}

#[test]
fn one_shot_routing_beats_the_reject_loop_on_the_golden_scenarios() {
    let mut baseline_invalidations = 0usize;
    let mut one_shot_invalidations = 0usize;
    let mut baseline_fired = 0usize;
    for scenario in DynamicScenario::ALL {
        let reject_loop = run(scenario, false);
        let one_shot = run(scenario, true);
        // Both paths must complete the hard cell collision-free.
        for (label, m) in [("reject-loop", &reject_loop), ("one-shot", &one_shot)] {
            assert!(
                m.reached_goal && !m.collided,
                "{scenario:?} {label}: reached={} collided={}",
                m.reached_goal,
                m.collided
            );
        }
        // One-shot planning never discards more speculations, nor forces
        // more predicted replans, than converging by rejection.
        assert!(
            one_shot.predicted_invalidations <= reject_loop.predicted_invalidations,
            "{scenario:?}: one-shot invalidations {} vs reject-loop {}",
            one_shot.predicted_invalidations,
            reject_loop.predicted_invalidations
        );
        assert!(
            one_shot.dynamic_replans <= reject_loop.dynamic_replans,
            "{scenario:?}: one-shot dynamic replans {} vs reject-loop {}",
            one_shot.dynamic_replans,
            reject_loop.dynamic_replans
        );
        baseline_invalidations += reject_loop.predicted_invalidations;
        one_shot_invalidations += one_shot.predicted_invalidations;
        if reject_loop.predicted_invalidations > 0 {
            baseline_fired += 1;
        }
    }
    // The comparison must not be vacuous: the reject-loop really
    // discarded speculations on this cell, and one-shot routing cut the
    // total strictly.
    assert!(
        baseline_fired > 0,
        "the reject-loop never invalidated a speculation — raise the cell difficulty"
    );
    assert!(
        one_shot_invalidations < baseline_invalidations,
        "one-shot total {one_shot_invalidations} vs reject-loop {baseline_invalidations}"
    );
}

#[test]
fn costmap_runs_are_deterministic() {
    let (env, world) = DynamicScenario::CrossingCorridor.world_with(41, &hard_cell());
    let runner = MissionRunner::new(dynamic_config(true));
    let a = runner.run_dynamic(&env, &world);
    let b = runner.run_dynamic(&env, &world);
    assert_eq!(a.telemetry.records(), b.telemetry.records());
    assert_eq!(a.flown_path, b.flown_path);
    assert_eq!(
        a.metrics.predicted_invalidations,
        b.metrics.predicted_invalidations
    );
}
