//! Fault-injection determinism: the whole point of a *deterministic*
//! fault layer is that a fault campaign is as reproducible as a healthy
//! mission. Two properties are pinned here:
//!
//! 1. **Same seed + same [`roborun_faults`] plan ⇒ bitwise-identical
//!    mission**, for both drivers (the direct [`MissionRunner`] and the
//!    middleware [`NodePipeline`]): full per-decision telemetry compares
//!    equal and every flown-path coordinate matches bit for bit.
//! 2. **Faults off ≡ no fault layer at all**: a config carrying an
//!    explicit [`FaultPlanConfig::healthy`] plan produces bitwise the
//!    same mission as the plain default config. The three pre-existing
//!    golden fixtures (see `tests/golden_sweep.rs`) are generated from
//!    default configs, so this equality extends their byte-identity pin
//!    to the faults-off code path.
//!
//! Missions here are deliberately short (60 m, capped decisions) so the
//! property runs stay fast; the fault sweep's golden fixture covers the
//! full-length campaigns.

use proptest::prelude::*;
use roborun_core::RuntimeMode;
use roborun_env::{DifficultyConfig, Environment, EnvironmentGenerator};
use roborun_faults::FaultPlanConfig;
use roborun_geom::Vec3;
use roborun_mission::{
    FaultScenario, MissionConfig, MissionResult, MissionRunner, NodePipeline, NodePipelineConfig,
};

/// A short environment so each property case stays cheap.
fn short_environment(seed: u64) -> Environment {
    EnvironmentGenerator::new(DifficultyConfig {
        obstacle_density: 0.4,
        obstacle_spread: 40.0,
        goal_distance: 60.0,
    })
    .generate(seed)
}

/// A short mission config carrying `plan`, degradation armed.
fn short_config(seed: u64, plan: FaultPlanConfig) -> MissionConfig {
    let mut cfg = MissionConfig::new(RuntimeMode::SpatialAware);
    cfg.seed = seed;
    cfg.max_decisions = 200;
    cfg.max_mission_time = 600.0;
    cfg.fault_plan = plan;
    cfg.degradation.enabled = true;
    cfg
}

fn run_direct(cfg: &MissionConfig, env: &Environment) -> MissionResult {
    MissionRunner::new(cfg.clone()).run(env)
}

fn run_pipeline(cfg: &MissionConfig, env: &Environment) -> MissionResult {
    NodePipeline::new(NodePipelineConfig {
        mission: cfg.clone(),
        ..NodePipelineConfig::new(cfg.mode)
    })
    .run(env)
    .mission
}

/// Renders every coordinate of the flown path (and its timestamps) via
/// the raw `f64` bit pattern, so even a 1-ulp divergence is caught.
fn path_bits(result: &MissionResult) -> Vec<[u64; 4]> {
    result
        .flown_path
        .iter()
        .zip(&result.flown_times)
        .map(|(p, t): (&Vec3, &f64)| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits(), t.to_bits()])
        .collect()
}

/// Asserts two runs of the same mission are bitwise identical.
fn assert_bit_identical(a: &MissionResult, b: &MissionResult, what: &str) {
    assert_eq!(
        path_bits(a),
        path_bits(b),
        "{what}: flown path diverged between identical runs"
    );
    assert_eq!(
        a.telemetry.records(),
        b.telemetry.records(),
        "{what}: telemetry diverged between identical runs"
    );
    assert_eq!(a.metrics, b.metrics, "{what}: metrics diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same seed + same fault plan ⇒ bitwise-identical telemetry and
    /// flown path, on both drivers, for every fault scenario family.
    #[test]
    fn same_seed_same_plan_is_bit_identical(seed in 0u64..1_000) {
        for scenario in FaultScenario::ALL {
            let env = short_environment(seed);
            let cfg = short_config(seed, scenario.fault_plan(seed));
            let name = scenario.name();
            assert_bit_identical(
                &run_direct(&cfg, &env),
                &run_direct(&cfg, &env),
                &format!("{name} / MissionRunner"),
            );
            assert_bit_identical(
                &run_pipeline(&cfg, &env),
                &run_pipeline(&cfg, &env),
                &format!("{name} / NodePipeline"),
            );
        }
    }

    /// An explicitly healthy fault plan takes the exact pre-fault code
    /// path: bitwise equal to the plain default config, on both drivers.
    /// The golden fixtures run default configs, so their byte-identity
    /// pin covers the faults-off path through this equality.
    #[test]
    fn healthy_plan_is_bit_identical_to_default(seed in 0u64..1_000) {
        let env = short_environment(seed);
        let mut plain = MissionConfig::new(RuntimeMode::SpatialAware);
        plain.seed = seed;
        plain.max_decisions = 200;
        plain.max_mission_time = 600.0;
        let mut healthy = plain.clone();
        healthy.fault_plan = FaultPlanConfig::healthy();
        prop_assert!(healthy.fault_plan.is_healthy());
        assert_bit_identical(
            &run_direct(&plain, &env),
            &run_direct(&healthy, &env),
            "healthy-plan / MissionRunner",
        );
        assert_bit_identical(
            &run_pipeline(&plain, &env),
            &run_pipeline(&healthy, &env),
            "healthy-plan / NodePipeline",
        );
    }
}
