//! Dynamic-world (moving-obstacle) mission guarantees:
//!
//! 1. **Determinism** — the same seed produces bit-identical actor poses
//!    and bit-identical mission telemetry across runs, for both drivers
//!    (`MissionRunner` and `NodePipeline`).
//! 2. **Static degeneration** — a dynamic run with an actor-free world is
//!    bit-identical to the plain static run (every dynamic hook
//!    degenerates; the golden fixtures already lock the static baseline).
//! 3. **Safety** — across a ≥100-case randomized sweep, no flown
//!    trajectory point ever intersects an actor's *true* (non-predicted)
//!    pose at its flight time.

use roborun_core::RuntimeMode;
use roborun_dynamics::{Actor, DynamicWorld, MotionModel};
use roborun_env::{DifficultyConfig, Environment, EnvironmentGenerator};
use roborun_geom::{Aabb, SplitMix64, Vec3};
use roborun_mission::{
    DynamicScenario, MissionConfig, MissionResult, MissionRunner, NodePipeline, NodePipelineConfig,
};

fn dynamic_config(seed: u64) -> MissionConfig {
    let mut cfg = MissionConfig::new(RuntimeMode::SpatialAware);
    cfg.max_decisions = 600;
    cfg.max_mission_time = 1_500.0;
    cfg.voxel_decay = Some(2);
    cfg.seed = seed;
    cfg
}

fn assert_bitwise_equal_missions(a: &MissionResult, b: &MissionResult) {
    assert_eq!(a.metrics.decisions, b.metrics.decisions);
    assert_eq!(
        a.metrics.mission_time.to_bits(),
        b.metrics.mission_time.to_bits()
    );
    assert_eq!(a.metrics.energy_kj.to_bits(), b.metrics.energy_kj.to_bits());
    assert_eq!(a.metrics.dynamic_replans, b.metrics.dynamic_replans);
    assert_eq!(
        a.metrics.predicted_invalidations,
        b.metrics.predicted_invalidations
    );
    assert_eq!(a.flown_path.len(), b.flown_path.len());
    for (p, q) in a.flown_path.iter().zip(&b.flown_path) {
        assert_eq!(p.x.to_bits(), q.x.to_bits());
        assert_eq!(p.y.to_bits(), q.y.to_bits());
        assert_eq!(p.z.to_bits(), q.z.to_bits());
    }
    for (s, t) in a.flown_times.iter().zip(&b.flown_times) {
        assert_eq!(s.to_bits(), t.to_bits());
    }
    assert_eq!(a.telemetry.len(), b.telemetry.len());
    for (r, s) in a.telemetry.records().iter().zip(b.telemetry.records()) {
        assert_eq!(r.time.to_bits(), s.time.to_bits());
        assert_eq!(
            r.commanded_velocity.to_bits(),
            s.commanded_velocity.to_bits()
        );
        assert_eq!(r.visibility.to_bits(), s.visibility.to_bits());
    }
}

#[test]
fn actor_poses_are_bit_identical_across_runs_and_query_orders() {
    let (_, world) = DynamicScenario::CongestedIntersection.world(9);
    let (_, world2) = DynamicScenario::CongestedIntersection.world(9);
    // Forward sweep vs scrambled queries on an independently built world:
    // poses are pure functions of time, so everything matches bitwise.
    let times: Vec<f64> = (0..200).map(|i| i as f64 * 1.37).collect();
    let forward: Vec<Vec<Vec3>> = times.iter().map(|&t| world.poses_at(t)).collect();
    for (i, &t) in times.iter().enumerate().rev() {
        let scrambled = world2.poses_at(t);
        for (p, q) in forward[i].iter().zip(&scrambled) {
            assert_eq!(p.x.to_bits(), q.x.to_bits());
            assert_eq!(p.y.to_bits(), q.y.to_bits());
            assert_eq!(p.z.to_bits(), q.z.to_bits());
        }
    }
}

#[test]
fn dynamic_missions_are_deterministic_across_runs() {
    let (env, world) = DynamicScenario::CrossingCorridor.world(5);
    let runner = MissionRunner::new(dynamic_config(5));
    let a = runner.run_dynamic(&env, &world);
    let b = runner.run_dynamic(&env, &world);
    assert_bitwise_equal_missions(&a, &b);
}

#[test]
fn dynamic_missions_are_deterministic_with_plan_ahead() {
    let (env, world) = DynamicScenario::CrossingCorridor.world(3);
    let mut cfg = dynamic_config(3);
    cfg.plan_ahead = true;
    let runner = MissionRunner::new(cfg);
    let a = runner.run_dynamic(&env, &world);
    let b = runner.run_dynamic(&env, &world);
    assert_bitwise_equal_missions(&a, &b);
}

#[test]
fn node_pipeline_dynamic_missions_are_deterministic() {
    let (env, world) = DynamicScenario::PatrolledWarehouse.world(5);
    let mut config = NodePipelineConfig::new(RuntimeMode::SpatialAware);
    config.mission = dynamic_config(5);
    config.mission.max_decisions = 400;
    let pipeline = NodePipeline::new(config);
    let a = pipeline.run_dynamic(&env, &world);
    let b = pipeline.run_dynamic(&env, &world);
    assert_bitwise_equal_missions(&a.mission, &b.mission);
    assert_eq!(a.comm_per_decision, b.comm_per_decision);
}

#[test]
fn actor_free_dynamic_run_is_bit_identical_to_the_static_run() {
    let env = EnvironmentGenerator::new(DifficultyConfig {
        obstacle_density: 0.35,
        obstacle_spread: 40.0,
        goal_distance: 120.0,
    })
    .generate(21);
    let empty = DynamicWorld::static_only(env.field().clone());
    // Note: the plain static config (no decay) — the degeneration
    // guarantee is about the dynamics hooks, which must all no-op.
    let mut cfg = MissionConfig::new(RuntimeMode::SpatialAware);
    cfg.max_decisions = 600;
    cfg.max_mission_time = 1_500.0;
    let runner = MissionRunner::new(cfg);
    let static_run = runner.run(&env);
    let dynamic_run = runner.run_dynamic(&env, &empty);
    assert_bitwise_equal_missions(&static_run, &dynamic_run);

    // Same degeneration for the node-graph driver.
    let mut config = NodePipelineConfig::new(RuntimeMode::SpatialAware);
    config.mission.max_decisions = 400;
    config.mission.max_mission_time = 1_500.0;
    let pipeline = NodePipeline::new(config);
    let a = pipeline.run(&env);
    let b = pipeline.run_dynamic(&env, &empty);
    assert_bitwise_equal_missions(&a.mission, &b.mission);
    assert_eq!(a.comm_per_decision, b.comm_per_decision);
}

#[test]
fn both_drivers_complete_a_dynamic_mission() {
    let (env, world) = DynamicScenario::CrossingCorridor.world(1);
    let direct = MissionRunner::new(dynamic_config(1)).run_dynamic(&env, &world);
    assert!(direct.metrics.reached_goal, "direct driver failed");
    assert!(!direct.metrics.collided);
    let mut config = NodePipelineConfig::new(RuntimeMode::SpatialAware);
    config.mission = dynamic_config(1);
    let graph = NodePipeline::new(config).run_dynamic(&env, &world);
    assert!(!graph.mission.metrics.collided, "node pipeline collided");
}

/// One randomized safety case: a short, sparse mission with 2–3 actors
/// whose family rotates with the seed.
fn safety_case(seed: u64) -> (Environment, DynamicWorld) {
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1F);
    let env = EnvironmentGenerator::new(DifficultyConfig {
        obstacle_density: rng.uniform(0.15, 0.35),
        obstacle_spread: 40.0,
        goal_distance: 60.0,
    })
    .generate(seed);
    let cruise = env.start().z;
    let spawn_z = cruise + 2.0;
    let pillar = Vec3::new(1.0, 1.0, spawn_z);
    let mut actors = Vec::new();
    let n = 2 + (seed % 2) as u32;
    for i in 0..n {
        let x = rng.uniform(15.0, 45.0);
        match (seed + u64::from(i)) % 3 {
            0 => actors.push(Actor::new(
                i,
                Vec3::new(x, rng.uniform(-8.0, 8.0), spawn_z),
                pillar,
                MotionModel::Crosser {
                    velocity: Vec3::new(0.0, rng.uniform(0.6, 1.4), 0.0),
                    bounds: Aabb::new(Vec3::new(x, -12.0, spawn_z), Vec3::new(x, 12.0, spawn_z)),
                },
            )),
            1 => actors.push(Actor::new(
                i,
                Vec3::new(x, rng.uniform(-6.0, 6.0), spawn_z),
                pillar,
                MotionModel::WaypointPatrol {
                    waypoints: vec![
                        Vec3::new(x, rng.uniform(-8.0, 0.0), spawn_z),
                        Vec3::new(x + rng.uniform(5.0, 15.0), rng.uniform(0.0, 8.0), spawn_z),
                    ],
                    speed: rng.uniform(0.5, 1.1),
                },
            )),
            _ => actors.push(Actor::new(
                i,
                Vec3::new(x, rng.uniform(-6.0, 6.0), spawn_z),
                pillar,
                MotionModel::RandomWalk {
                    seed: rng.next_u64(),
                    speed: rng.uniform(0.4, 0.9),
                    dwell: 2.0,
                    bounds: Aabb::new(
                        Vec3::new(x - 8.0, -10.0, spawn_z),
                        Vec3::new(x + 8.0, 10.0, spawn_z),
                    ),
                },
            )),
        }
    }
    let world = DynamicWorld::new(env.field().clone(), actors);
    (env, world)
}

#[test]
fn no_flown_point_ever_intersects_an_actor_across_100_randomized_cases() {
    let mut completed = 0usize;
    for seed in 0..100u64 {
        let (env, world) = safety_case(seed);
        let mut cfg = dynamic_config(seed);
        cfg.max_decisions = 250;
        cfg.max_mission_time = 400.0;
        let result = MissionRunner::new(cfg).run_dynamic(&env, &world);
        assert_eq!(result.flown_path.len(), result.flown_times.len());
        for (p, t) in result.flown_path.iter().zip(&result.flown_times) {
            for actor in world.actors() {
                assert!(
                    !actor.bounds_at(*t).contains(*p),
                    "seed {seed}: flown point {p} inside actor {} at t={t:.2} \
                     (actor pose {:?})",
                    actor.id,
                    actor.pose_at(*t)
                );
            }
        }
        if result.metrics.reached_goal && !result.metrics.collided {
            completed += 1;
        }
    }
    // The safety property is the assertion above; completion is tracked
    // so a silent regression into mass hover-stalls still fails loudly.
    assert!(
        completed >= 70,
        "only {completed}/100 randomized dynamic missions completed"
    );
}
