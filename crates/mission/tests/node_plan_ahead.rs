//! Plan-ahead on the node pipeline (the measured-comm driver): off-runs
//! report nothing and stay bit-identical to the pre-port behaviour,
//! on-runs speculate over the bus (real bytes on the speculation topic),
//! mask latency, and stay deterministic — including against a dynamic
//! world, where the masked-latency accounting and the predicted gate
//! must both hold.

use roborun_core::RuntimeMode;
use roborun_mission::{DynamicScenario, NodePipeline, NodePipelineConfig};

fn quick_config(plan_ahead: bool) -> NodePipelineConfig {
    let mut config = NodePipelineConfig::new(RuntimeMode::SpatialAware);
    config.mission.max_decisions = 800;
    config.mission.max_mission_time = 2_500.0;
    config.mission.plan_ahead = plan_ahead;
    config
}

#[test]
fn disabled_plan_ahead_reports_nothing_on_the_bus_driver() {
    let env = DynamicScenario::CrossingCorridor.world(21).0;
    let result = NodePipeline::new(quick_config(false)).run(&env);
    assert!(result.mission.metrics.reached_goal);
    assert_eq!(result.mission.metrics.plan_ahead_attempts, 0);
    assert_eq!(result.mission.metrics.plan_ahead_hits, 0);
    assert_eq!(result.mission.metrics.masked_planning_latency, 0.0);
    for r in result.mission.telemetry.records() {
        assert_eq!(r.masked_latency, 0.0);
    }
    // The speculation topic exists in the graph but carried nothing.
    if let Some(info) = result.graph.topic("/planning/speculation") {
        assert_eq!(info.stats.messages_published, 0);
    }
}

#[test]
fn node_plan_ahead_masks_latency_and_ships_speculations_over_the_bus() {
    let env = DynamicScenario::CrossingCorridor.world(21).0;
    let result = NodePipeline::new(quick_config(true)).run(&env);
    let m = &result.mission.metrics;
    assert!(m.reached_goal && !m.collided, "mission failed: {m:?}");
    assert!(m.plan_ahead_attempts > 0, "never speculated");
    assert!(m.plan_ahead_hits > 0, "no speculation survived validation");
    assert!(m.plan_ahead_hits <= m.plan_ahead_attempts);
    assert!(
        m.masked_planning_latency > 0.0,
        "no planning latency was masked"
    );
    // Speculative trajectories really crossed the bus.
    let spec = result
        .graph
        .topic("/planning/speculation")
        .expect("speculation topic in graph");
    assert!(spec.stats.messages_published as usize >= m.plan_ahead_hits);
    assert!(spec.stats.bytes_published > 0);
    // Per-decision accounting: masked never exceeds the planning stage,
    // and the critical path is shorter exactly where something masked.
    let mut masked_decisions = 0usize;
    for r in result.mission.telemetry.records() {
        assert!(r.masked_latency >= 0.0);
        assert!(r.masked_latency <= r.breakdown.planning + 1e-12);
        if r.masked_latency > 0.0 {
            masked_decisions += 1;
            assert!(r.critical_path_latency() < r.latency());
        }
    }
    assert_eq!(masked_decisions, m.plan_ahead_hits);
}

#[test]
fn node_plan_ahead_runs_are_deterministic() {
    let env = DynamicScenario::PatrolledWarehouse.world(5).0;
    let pipeline = NodePipeline::new(quick_config(true));
    let a = pipeline.run(&env);
    let b = pipeline.run(&env);
    assert_eq!(a.mission.telemetry.records(), b.mission.telemetry.records());
    assert_eq!(a.mission.flown_path, b.mission.flown_path);
    assert_eq!(a.comm_per_decision, b.comm_per_decision);
    assert_eq!(
        a.mission.metrics.plan_ahead_attempts,
        b.mission.metrics.plan_ahead_attempts
    );
}

#[test]
fn dynamic_node_runs_report_nonzero_overlap() {
    // The acceptance direction: the measured-comm driver masks latency
    // on dynamic missions too.
    let (env, world) = DynamicScenario::CrossingCorridor.world(41);
    let mut config = quick_config(true);
    config.mission.max_decisions = 600;
    config.mission.max_mission_time = 1_500.0;
    config.mission.voxel_decay = Some(2);
    let result = NodePipeline::new(config).run_dynamic(&env, &world);
    let m = &result.mission.metrics;
    assert!(
        m.reached_goal && !m.collided,
        "dynamic mission failed: {m:?}"
    );
    assert!(m.plan_ahead_attempts > 0, "dynamic run never speculated");
    assert!(
        m.masked_planning_latency > 0.0,
        "dynamic run masked no planning latency"
    );
}
