//! Golden-scenario regression lock: a small deterministic sweep whose
//! metrics rows must stay **bit-identical** to a checked-in fixture.
//!
//! The equivalence proptests guarantee each accelerated kernel matches its
//! retained reference; this test guards the other direction — an
//! *intentional-looking* change (a new index, a reordered reduction, a
//! "harmless" float refactor) that silently shifts mission outcomes. Every
//! `f64` is serialized via its raw bit pattern, so even a 1-ulp drift
//! fails the comparison.
//!
//! To regenerate after a *deliberate* behaviour change, run
//!
//! ```text
//! ROBORUN_UPDATE_GOLDEN=1 cargo test -p roborun-mission --test golden_sweep
//! ```
//!
//! and commit the updated fixture together with an explanation of why the
//! mission outcomes were expected to move.

use roborun_core::RuntimeMode;
use roborun_env::DifficultyConfig;
use roborun_mission::sweep::{run_dynamic_sweep, run_fault_sweep, run_sweep};
use roborun_mission::{
    DynamicSweepConfig, FaultSweepConfig, MissionConfig, MissionMetrics, SweepConfig,
};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_sweep.txt"
);

/// Second fixture: the same sweep with plan-ahead (speculative planning
/// overlap) forced on for both designs. Guards the overlapped decision
/// path — speculation launch, validation, masked-latency accounting —
/// against silent drift, and additionally locks the masked/hit counters.
const PLAN_AHEAD_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_sweep_plan_ahead.txt"
);

/// Third fixture: the moving-obstacle sweep (all three dynamic scenario
/// families at seed 41, both designs, voxel decay on). Locks the whole
/// dynamic-world pipeline — snapshot sensing, predicted-occupancy
/// validation, closing-speed budgeting, stale-voxel decay — and the
/// `dynamic_replans` / `predicted_invalidations` counters against silent
/// drift.
const DYNAMIC_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_sweep_dynamic.txt"
);

/// Fourth fixture: the fault sweep (all three fault scenario families at
/// seed 41, fault-oblivious vs degradation-aware). Locks the whole
/// fault-injection and graceful-degradation machinery — deterministic
/// fault frames, bus link faults, the planning watchdog, the fallback
/// ladder, stale-perception derating — and its counters against silent
/// drift.
const FAULT_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_fault_sweep.txt"
);

/// Three short environments spanning the density/spread grid, fixed seed.
fn golden_config() -> SweepConfig {
    let difficulties = vec![
        DifficultyConfig {
            obstacle_density: 0.3,
            obstacle_spread: 40.0,
            goal_distance: 120.0,
        },
        DifficultyConfig {
            obstacle_density: 0.6,
            obstacle_spread: 40.0,
            goal_distance: 120.0,
        },
        DifficultyConfig {
            obstacle_density: 0.45,
            obstacle_spread: 80.0,
            goal_distance: 120.0,
        },
    ];
    let mut aware = MissionConfig::new(RuntimeMode::SpatialAware);
    aware.max_decisions = 600;
    aware.max_mission_time = 1_500.0;
    let mut oblivious = MissionConfig::new(RuntimeMode::SpatialOblivious);
    oblivious.max_decisions = 1_500;
    oblivious.max_mission_time = 3_000.0;
    SweepConfig {
        difficulties,
        seed: 41,
        aware,
        oblivious,
        threads: None,
    }
}

fn push_f64(out: &mut String, label: &str, v: f64) {
    out.push_str(&format!(" {label}={:016x}", v.to_bits()));
}

fn render_dynamic_metrics(out: &mut String, label: &str, m: &MissionMetrics) {
    render_metrics(out, label, m, false);
    // Re-open the line to append the dynamic counters.
    out.pop();
    out.push_str(&format!(
        " dynamic_replans={} predicted_invalidations={}\n",
        m.dynamic_replans, m.predicted_invalidations
    ));
}

fn render_fault_metrics(out: &mut String, label: &str, m: &MissionMetrics) {
    render_metrics(out, label, m, false);
    // Re-open the line to append the fault/degradation counters.
    out.pop();
    out.push_str(&format!(
        " faults={} watchdog={} retries={} degraded={} safe_stops={}\n",
        m.faults_injected, m.watchdog_fires, m.retries, m.degraded_decisions, m.safe_stops
    ));
}

fn render_metrics(out: &mut String, label: &str, m: &MissionMetrics, with_overlap: bool) {
    out.push_str(&format!("{label} mode={:?}", m.mode));
    push_f64(out, "mission_time", m.mission_time);
    push_f64(out, "energy_kj", m.energy_kj);
    push_f64(out, "mean_velocity", m.mean_velocity);
    push_f64(out, "mean_cpu", m.mean_cpu_utilization);
    push_f64(out, "median_latency", m.median_latency);
    out.push_str(&format!(" decisions={}", m.decisions));
    push_f64(out, "distance", m.distance_travelled);
    out.push_str(&format!(
        " reached_goal={} collided={}",
        m.reached_goal, m.collided
    ));
    if with_overlap {
        push_f64(out, "masked", m.masked_planning_latency);
        out.push_str(&format!(
            " attempts={} hits={}",
            m.plan_ahead_attempts, m.plan_ahead_hits
        ));
    }
    out.push('\n');
}

fn render_rows(config: &SweepConfig, header: &str, with_overlap: bool) -> String {
    let results = run_sweep(config);
    let mut out = String::new();
    out.push_str(header);
    out.push_str("# Regenerate with ROBORUN_UPDATE_GOLDEN=1 (see tests/golden_sweep.rs).\n");
    for (i, row) in results.rows().iter().enumerate() {
        out.push_str(&format!(
            "row {i} density={:016x} spread={:016x} goal={:016x}\n",
            row.difficulty.obstacle_density.to_bits(),
            row.difficulty.obstacle_spread.to_bits(),
            row.difficulty.goal_distance.to_bits(),
        ));
        render_metrics(&mut out, "  oblivious", &row.oblivious, with_overlap);
        render_metrics(&mut out, "  aware", &row.aware, with_overlap);
    }
    out
}

fn assert_matches_fixture(rendered: &str, fixture: &str) {
    if std::env::var_os("ROBORUN_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(fixture).parent().unwrap()).unwrap();
        std::fs::write(fixture, rendered).unwrap();
        eprintln!("golden fixture rewritten: {fixture}");
        return;
    }
    let expected = std::fs::read_to_string(fixture).unwrap_or_else(|e| {
        panic!("missing golden fixture {fixture} ({e}); regenerate with ROBORUN_UPDATE_GOLDEN=1")
    });
    if rendered != expected {
        // A line-level diff reads far better than two multi-kB strings.
        for (i, (got, want)) in rendered.lines().zip(expected.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "golden sweep diverged at fixture line {} — if this change \
                 was intentional, regenerate with ROBORUN_UPDATE_GOLDEN=1",
                i + 1
            );
        }
        panic!(
            "golden sweep line count changed: got {}, fixture {}",
            rendered.lines().count(),
            expected.lines().count()
        );
    }
}

#[test]
fn golden_sweep_rows_are_bit_identical_to_fixture() {
    let rendered = render_rows(
        &golden_config(),
        "# Golden sweep fixture: 3 environments, seed 41, 120 m missions.\n",
        false,
    );
    assert_matches_fixture(&rendered, FIXTURE);
}

#[test]
fn plan_ahead_golden_sweep_rows_are_bit_identical_to_fixture() {
    let rendered = render_rows(
        &golden_config().with_plan_ahead(),
        "# Golden sweep fixture with plan-ahead forced on: 3 environments, seed 41, 120 m missions.\n",
        true,
    );
    assert_matches_fixture(&rendered, PLAN_AHEAD_FIXTURE);
}

#[test]
fn fault_sweep_rows_are_bit_identical_to_fixture() {
    let rows = run_fault_sweep(&FaultSweepConfig::quick(41));
    let mut out = String::new();
    out.push_str("# Golden fault sweep fixture: 3 fault scenario families, seed 41.\n");
    out.push_str("# Regenerate with ROBORUN_UPDATE_GOLDEN=1 (see tests/golden_sweep.rs).\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "case {i} scenario={:?} seed={}\n",
            row.scenario, row.seed
        ));
        render_fault_metrics(&mut out, "  baseline", &row.baseline);
        render_fault_metrics(&mut out, "  degraded", &row.degraded);
    }
    assert_matches_fixture(&out, FAULT_FIXTURE);
}

#[test]
fn dynamic_golden_sweep_rows_are_bit_identical_to_fixture() {
    let rows = run_dynamic_sweep(&DynamicSweepConfig::quick(41));
    let mut out = String::new();
    out.push_str("# Golden dynamic sweep fixture: 3 moving-obstacle scenario families, seed 41.\n");
    out.push_str("# Regenerate with ROBORUN_UPDATE_GOLDEN=1 (see tests/golden_sweep.rs).\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "case {i} scenario={:?} seed={}\n",
            row.scenario, row.seed
        ));
        render_dynamic_metrics(&mut out, "  oblivious", &row.oblivious);
        render_dynamic_metrics(&mut out, "  aware", &row.aware);
    }
    assert_matches_fixture(&out, DYNAMIC_FIXTURE);
}
