//! The static span-kind registry: every event the instrumentation can
//! emit is one of these kinds, so exporters and summary tables never
//! meet an unknown name, and the registry itself documents the span
//! taxonomy (see `docs/OBSERVABILITY.md`).

use serde::{Deserialize, Serialize};

/// One kind of trace event. The registry is deliberately closed: adding
/// an instrumentation point means adding a variant here, which keeps the
/// per-kind summary table and the Chrome-trace categories exhaustive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// One whole navigation decision: `[t, t + critical-path latency]`.
    Decision,
    /// Point-cloud kernel stage of a decision.
    StagePointCloud,
    /// Occupancy-map (OctoMap) update stage.
    StagePerception,
    /// Map pruning/export to the planner.
    StagePerceptionToPlanning,
    /// Piece-wise planning + smoothing stage (critical-path share: the
    /// masked plan-ahead portion is subtracted; see
    /// [`crate::SpanKind::Speculation`]).
    StagePlanning,
    /// Control-loop stage.
    StageControl,
    /// Inter-stage communication stage.
    StageCommunication,
    /// RoboRun runtime overhead stage (profilers + governor + solver).
    StageRuntime,
    /// One planner invocation, with per-plan counters as args (samples
    /// drawn, tree size, rewires, batch rounds, collision queries).
    Plan,
    /// Plan-ahead speculation lifetime, launch → adopt/patch/discard
    /// (an async span; the id is deterministic per track + decision).
    Speculation,
    /// One middleware bus publish (span length = mean transport latency).
    BusPublish,
    /// One middleware bus delivery (span from publish to ready time).
    BusDeliver,
    /// Per-topic queue depth after a publish/take (a counter event).
    QueueDepth,
    /// One mission-service shard computing one sweep row.
    ShardRow,
    /// One fleet lockstep turn (one drone's decision in the round).
    FleetTurn,
    /// The planning watchdog fired (instant).
    WatchdogFire,
    /// The degradation ladder changed state (instant; the detail field
    /// names the `Degradation` variant).
    DegradationTransition,
    /// A fault frame perturbed this decision (instant).
    FaultInjected,
    /// A speculation resolved (instant; detail = adopted/patched/discarded).
    SpeculationOutcome,
}

impl SpanKind {
    /// Every kind, for summary tables and registry iteration.
    pub const ALL: [SpanKind; 19] = [
        SpanKind::Decision,
        SpanKind::StagePointCloud,
        SpanKind::StagePerception,
        SpanKind::StagePerceptionToPlanning,
        SpanKind::StagePlanning,
        SpanKind::StageControl,
        SpanKind::StageCommunication,
        SpanKind::StageRuntime,
        SpanKind::Plan,
        SpanKind::Speculation,
        SpanKind::BusPublish,
        SpanKind::BusDeliver,
        SpanKind::QueueDepth,
        SpanKind::ShardRow,
        SpanKind::FleetTurn,
        SpanKind::WatchdogFire,
        SpanKind::DegradationTransition,
        SpanKind::FaultInjected,
        SpanKind::SpeculationOutcome,
    ];

    /// The seven decision-stage kinds, in pipeline order. Their spans
    /// partition each decision's critical-path window, which is what
    /// makes the ≥95% coverage check hold by construction.
    pub const STAGES: [SpanKind; 7] = [
        SpanKind::StagePointCloud,
        SpanKind::StagePerception,
        SpanKind::StagePerceptionToPlanning,
        SpanKind::StagePlanning,
        SpanKind::StageControl,
        SpanKind::StageCommunication,
        SpanKind::StageRuntime,
    ];

    /// Stable event name, used as the Chrome-trace `name` field.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Decision => "decision",
            SpanKind::StagePointCloud => "stage:point_cloud",
            SpanKind::StagePerception => "stage:perception",
            SpanKind::StagePerceptionToPlanning => "stage:perception_to_planning",
            SpanKind::StagePlanning => "stage:planning",
            SpanKind::StageControl => "stage:control",
            SpanKind::StageCommunication => "stage:communication",
            SpanKind::StageRuntime => "stage:runtime",
            SpanKind::Plan => "plan",
            SpanKind::Speculation => "speculation",
            SpanKind::BusPublish => "bus:publish",
            SpanKind::BusDeliver => "bus:deliver",
            SpanKind::QueueDepth => "queue_depth",
            SpanKind::ShardRow => "shard_row",
            SpanKind::FleetTurn => "fleet_turn",
            SpanKind::WatchdogFire => "watchdog_fire",
            SpanKind::DegradationTransition => "degradation",
            SpanKind::FaultInjected => "fault_injected",
            SpanKind::SpeculationOutcome => "speculation_outcome",
        }
    }

    /// Chrome-trace `cat` (category) field: groups kinds by subsystem so
    /// Perfetto can filter whole layers at once.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Decision
            | SpanKind::StagePointCloud
            | SpanKind::StagePerception
            | SpanKind::StagePerceptionToPlanning
            | SpanKind::StagePlanning
            | SpanKind::StageControl
            | SpanKind::StageCommunication
            | SpanKind::StageRuntime => "decision",
            SpanKind::Plan | SpanKind::Speculation | SpanKind::SpeculationOutcome => "planner",
            SpanKind::BusPublish | SpanKind::BusDeliver | SpanKind::QueueDepth => "middleware",
            SpanKind::ShardRow | SpanKind::FleetTurn => "orchestration",
            SpanKind::WatchdogFire | SpanKind::DegradationTransition | SpanKind::FaultInjected => {
                "faults"
            }
        }
    }
}

/// The Chrome-trace phase of one event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TracePhase {
    /// A complete span (`ph: "X"`) with a simulated duration in seconds.
    Complete {
        /// Span length on the simulation clock (seconds).
        sim_dur: f64,
    },
    /// An instant event (`ph: "i"`).
    Instant,
    /// An async-span begin (`ph: "b"`); paired by `id` with the matching
    /// [`TracePhase::AsyncEnd`].
    AsyncBegin {
        /// Deterministic pairing id (`track << 32 | sequence-at-launch`).
        id: u64,
    },
    /// An async-span end (`ph: "e"`).
    AsyncEnd {
        /// Deterministic pairing id matching the begin event.
        id: u64,
    },
    /// A counter sample (`ph: "C"`).
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One recorded trace event.
///
/// Timestamps are **dual**: `sim_time` (and `Complete::sim_dur`) live on
/// the deterministic simulation clock and define the exported timeline;
/// `wall_ns` / `wall_dur_ns` are monotonic wall-clock measurements taken
/// only while tracing is armed and are segregated into the exported
/// `args` object so sim-time diffs stay clean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// What kind of event this is (the registry entry).
    pub kind: SpanKind,
    /// Span / instant / async / counter classification plus payload.
    pub phase: TracePhase,
    /// Explicitly assigned track (exported as `tid`); never an OS thread
    /// id — see the module docs of [`crate::collector`].
    pub track: u32,
    /// Per-track emission sequence number; `(track, seq)` is the
    /// deterministic event id.
    pub seq: u64,
    /// Simulation-clock timestamp (seconds).
    pub sim_time: f64,
    /// Monotonic wall-clock nanoseconds since the tracer was armed.
    pub wall_ns: u64,
    /// Measured wall-clock duration of the span (nanoseconds; 0 when not
    /// measured).
    pub wall_dur_ns: u64,
    /// Free-form label (bus topic, degradation variant, scenario tag).
    pub detail: Option<String>,
    /// Small numeric argument list, exported into the `args` object.
    pub args: Vec<(&'static str, f64)>,
}

impl TraceEvent {
    /// End of the span on the simulation clock (start for non-spans).
    pub fn sim_end(&self) -> f64 {
        match self.phase {
            TracePhase::Complete { sim_dur } => self.sim_time + sim_dur,
            _ => self.sim_time,
        }
    }
}
