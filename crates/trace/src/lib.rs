//! `roborun-trace` — zero-cost-when-disabled structured tracing for the
//! RoboRun stack: RAII spans, instant events, per-topic counters, a
//! Chrome trace-event / Perfetto exporter, and per-span-kind latency
//! summaries backed by the shared [`roborun_geom::LogHistogram`].
//!
//! # Contract (mirrors `roborun-faults`)
//!
//! * **Disabled tracing is the pre-trace code path.** Every
//!   instrumentation point is gated on a single relaxed atomic load
//!   ([`armed`]); when it returns `false` nothing else runs — no
//!   allocation, no clock read, no formatting. The disarmed gate costs
//!   at most a few nanoseconds per decision (measured by the
//!   `trace_gate` group in the `kernel_scaling` bench), and the four
//!   golden sweep fixtures regenerate byte-identical with tracing off.
//! * **Enabled tracing never perturbs the simulation.** No
//!   instrumentation point draws from, reseeds, or reorders any RNG
//!   stream; arming tracing changes what is *recorded*, never what is
//!   *computed*. Missions produce bit-identical metrics armed or
//!   disarmed.
//! * **Trace output is deterministic in sim-time.** Event identity is
//!   `(track, seq)` where tracks are explicitly assigned (never OS
//!   thread ids) and sequences count per-track emissions. Exported
//!   timelines sort by `(sim_time, track, seq)`; wall-clock
//!   measurements are segregated into each event's `args` object and
//!   can be omitted entirely for byte-stable artifacts.
//!
//! # Hot path
//!
//! Emission appends to a per-thread ring buffer (no locks); buffers
//! spill to a bounded global sink at capacity or at explicit
//! [`flush`] boundaries, and [`Trace::collect`] drains the sink.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod export;
pub mod json;
pub mod kind;

pub use collector::{
    arm, armed, current_track, disarm, drain, dropped, flush, scoped, set_track, timer, timer_ns,
    wall_now_ns, ScopedSpan, WallTimer, SHARD_TRACK_BASE, SPECULATION_TRACK,
};
pub use export::{validate_chrome_trace, KindSummary, Trace};
pub use json::{JsonValue, JsonWriter};
pub use kind::{SpanKind, TraceEvent, TracePhase};

/// Number of usable cores on this host (the single home for the
/// `available_parallelism` fallback duplicated across the sweep pool,
/// the mission service, and the bench harness).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}
