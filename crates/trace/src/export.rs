//! Collected traces: Chrome trace-event export, per-kind summary
//! tables, and the schema / coverage checks the CI smoke runs.

use crate::collector;
use crate::json::{JsonValue, JsonWriter};
use crate::kind::{SpanKind, TraceEvent, TracePhase};
use roborun_geom::LogHistogram;

/// A drained, sim-time-ordered trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Drains every spilled event from the global collector (flushing
    /// the calling thread first) and orders it deterministically by
    /// `(sim_time, track, seq)`.
    pub fn collect() -> Trace {
        Trace::from_events(collector::drain())
    }

    /// Builds a trace from raw events (sorting them the same way).
    pub fn from_events(mut events: Vec<TraceEvent>) -> Trace {
        events.sort_by(|a, b| {
            a.sim_time
                .total_cmp(&b.sim_time)
                .then(a.track.cmp(&b.track))
                .then(a.seq.cmp(&b.seq))
        });
        Trace { events }
    }

    /// The ordered events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no event was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the trace as Chrome trace-event JSON (the object form,
    /// loadable in Perfetto / `chrome://tracing`). Sim-clock seconds map
    /// to microsecond `ts`/`dur`; tracks map to `tid`; wall-clock
    /// measurements are segregated into each event's `args` (and can be
    /// omitted entirely with `include_wall = false` for byte-stable
    /// artifacts).
    pub fn to_chrome_json(&self, scenario: &str, include_wall: bool) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("displayTimeUnit");
        w.string("ms");
        w.key("otherData");
        w.begin_inline_object();
        w.key("generator");
        w.string("roborun-trace");
        w.key("scenario");
        w.string(scenario);
        w.key("dropped_events");
        w.uint(collector::dropped());
        w.end();
        w.key("traceEvents");
        w.begin_array();
        for event in &self.events {
            w.begin_inline_object();
            w.key("name");
            w.string(&display_name(event));
            w.key("cat");
            w.string(event.kind.category());
            w.key("ph");
            w.string(match event.phase {
                TracePhase::Complete { .. } => "X",
                TracePhase::Instant => "i",
                TracePhase::AsyncBegin { .. } => "b",
                TracePhase::AsyncEnd { .. } => "e",
                TracePhase::Counter { .. } => "C",
            });
            w.key("ts");
            w.float_full(event.sim_time * 1e6);
            match event.phase {
                TracePhase::Complete { sim_dur } => {
                    w.key("dur");
                    w.float_full(sim_dur * 1e6);
                }
                TracePhase::Instant => {
                    w.key("s");
                    w.string("t");
                }
                TracePhase::AsyncBegin { id } | TracePhase::AsyncEnd { id } => {
                    w.key("id");
                    w.uint(id);
                }
                TracePhase::Counter { .. } => {}
            }
            w.key("pid");
            w.uint(0);
            w.key("tid");
            w.uint(u64::from(event.track));
            w.key("args");
            w.begin_inline_object();
            w.key("seq");
            w.uint(event.seq);
            if let TracePhase::Counter { value } = event.phase {
                w.key("value");
                w.float_full(value);
            }
            if let Some(detail) = &event.detail {
                w.key("detail");
                w.string(detail);
            }
            for (key, value) in &event.args {
                w.key(key);
                w.float_full(*value);
            }
            if include_wall {
                w.key("wall_ns");
                w.uint(event.wall_ns);
                if event.wall_dur_ns > 0 {
                    w.key("wall_dur_ns");
                    w.uint(event.wall_dur_ns);
                }
            }
            w.end();
            w.end();
        }
        w.end();
        w.end();
        w.finish()
    }

    /// Per-span-kind summaries over the simulated span durations.
    pub fn summaries(&self) -> Vec<KindSummary> {
        let mut out = Vec::new();
        for kind in SpanKind::ALL {
            let mut histogram = LogHistogram::new();
            let mut count = 0u64;
            for event in &self.events {
                if event.kind != kind {
                    continue;
                }
                count += 1;
                if let TracePhase::Complete { sim_dur } = event.phase {
                    histogram.push(sim_dur);
                }
            }
            if count > 0 {
                out.push(KindSummary {
                    kind,
                    count,
                    total_sim: histogram.sum(),
                    p50: histogram.quantile(0.50).unwrap_or(0.0),
                    p95: histogram.quantile(0.95).unwrap_or(0.0),
                    p99: histogram.quantile(0.99).unwrap_or(0.0),
                    histogram,
                });
            }
        }
        out
    }

    /// The summary as an aligned human-readable table.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>8} {:>12} {:>10} {:>10} {:>10}\n",
            "span kind", "count", "total (s)", "p50 (s)", "p95 (s)", "p99 (s)"
        ));
        for summary in self.summaries() {
            out.push_str(&format!(
                "{:<28} {:>8} {:>12.4} {:>10.4} {:>10.4} {:>10.4}\n",
                summary.kind.name(),
                summary.count,
                summary.total_sim,
                summary.p50,
                summary.p95,
                summary.p99
            ));
        }
        out
    }

    /// Per-decision stage coverage: for every [`SpanKind::Decision`]
    /// span, the fraction of its sim-time window covered by stage spans
    /// on the same track. The instrumentation lays stages out as a
    /// partition of the critical path, so this sits at ~1.0; the
    /// `experiments -- trace` smoke asserts ≥ 0.95 for every decision.
    pub fn decision_stage_coverage(&self) -> Vec<f64> {
        let mut coverage = Vec::new();
        for decision in &self.events {
            if decision.kind != SpanKind::Decision {
                continue;
            }
            let TracePhase::Complete { sim_dur } = decision.phase else {
                continue;
            };
            if sim_dur <= 0.0 {
                continue;
            }
            let (start, end) = (decision.sim_time, decision.sim_time + sim_dur);
            let covered: f64 = self
                .events
                .iter()
                .filter(|e| {
                    e.track == decision.track
                        && SpanKind::STAGES.contains(&e.kind)
                        && e.sim_time >= start - 1e-9
                        && e.sim_end() <= end + 1e-9
                })
                .map(|e| match e.phase {
                    TracePhase::Complete { sim_dur } => sim_dur,
                    _ => 0.0,
                })
                .sum();
            coverage.push((covered / sim_dur).min(1.0));
        }
        coverage
    }
}

/// Summary row of one span kind.
#[derive(Debug, Clone)]
pub struct KindSummary {
    /// The kind being summarised.
    pub kind: SpanKind,
    /// Events of this kind (all phases).
    pub count: u64,
    /// Total simulated span time (seconds; complete spans only).
    pub total_sim: f64,
    /// Median simulated span duration.
    pub p50: f64,
    /// 95th-percentile simulated span duration.
    pub p95: f64,
    /// 99th-percentile simulated span duration.
    pub p99: f64,
    /// The underlying fixed-bucket histogram (mergeable across traces).
    pub histogram: LogHistogram,
}

/// The exported Chrome-trace name: counters get their series label
/// appended so each `(kind, detail)` pair becomes its own counter track.
fn display_name(event: &TraceEvent) -> String {
    match (&event.phase, &event.detail) {
        (TracePhase::Counter { .. }, Some(detail)) => {
            format!("{}:{detail}", event.kind.name())
        }
        _ => event.kind.name().to_string(),
    }
}

/// Validates a Chrome trace-event JSON document against the minimal
/// schema the exporter promises: a top-level object with a
/// `traceEvents` array whose members carry `name`/`cat`/`ph`/`ts`/
/// `pid`/`tid`, `dur` on complete spans, `id` on async events, and
/// balanced async begin/end pairs.
///
/// Returns `(events, async_pairs)` on success.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_chrome_trace(json: &str) -> Result<(usize, usize), String> {
    let doc = JsonValue::parse(json)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;
    let mut open_async: Vec<(String, f64)> = Vec::new();
    let mut pairs = 0usize;
    for (index, event) in events.iter().enumerate() {
        let context = |field: &str| format!("event {index}: missing or invalid {field}");
        let name = event
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| context("name"))?;
        event
            .get("cat")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| context("cat"))?;
        let ph = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| context("ph"))?;
        let ts = event
            .get("ts")
            .and_then(JsonValue::as_number)
            .ok_or_else(|| context("ts"))?;
        event
            .get("pid")
            .and_then(JsonValue::as_number)
            .ok_or_else(|| context("pid"))?;
        event
            .get("tid")
            .and_then(JsonValue::as_number)
            .ok_or_else(|| context("tid"))?;
        match ph {
            "X" => {
                let dur = event
                    .get("dur")
                    .and_then(JsonValue::as_number)
                    .ok_or_else(|| context("dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {index} ({name}): negative dur {dur}"));
                }
            }
            "b" => {
                let id = event
                    .get("id")
                    .and_then(JsonValue::as_number)
                    .ok_or_else(|| context("id"))?;
                open_async.push((name.to_string(), id));
            }
            "e" => {
                let id = event
                    .get("id")
                    .and_then(JsonValue::as_number)
                    .ok_or_else(|| context("id"))?;
                let position = open_async
                    .iter()
                    .position(|(n, i)| n == name && *i == id)
                    .ok_or(format!(
                        "event {index} ({name}): async end id {id} without begin"
                    ))?;
                open_async.remove(position);
                pairs += 1;
            }
            "i" | "C" => {}
            other => return Err(format!("event {index} ({name}): unknown ph {other:?}")),
        }
        if !ts.is_finite() {
            return Err(format!("event {index} ({name}): non-finite ts"));
        }
    }
    if let Some((name, id)) = open_async.first() {
        return Err(format!("unbalanced async span {name} id {id}"));
    }
    Ok((events.len(), pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: SpanKind, phase: TracePhase, track: u32, seq: u64, t: f64) -> TraceEvent {
        TraceEvent {
            kind,
            phase,
            track,
            seq,
            sim_time: t,
            wall_ns: 17,
            wall_dur_ns: 5,
            detail: None,
            args: vec![("x", 1.5)],
        }
    }

    #[test]
    fn export_round_trips_and_validates() {
        let events = vec![
            event(
                SpanKind::Decision,
                TracePhase::Complete { sim_dur: 0.5 },
                0,
                0,
                1.0,
            ),
            event(
                SpanKind::Speculation,
                TracePhase::AsyncBegin { id: 9 },
                0,
                1,
                1.1,
            ),
            event(
                SpanKind::Speculation,
                TracePhase::AsyncEnd { id: 9 },
                0,
                2,
                1.4,
            ),
            event(SpanKind::WatchdogFire, TracePhase::Instant, 0, 3, 1.2),
            event(
                SpanKind::QueueDepth,
                TracePhase::Counter { value: 3.0 },
                1,
                0,
                1.3,
            ),
        ];
        let trace = Trace::from_events(events);
        let json = trace.to_chrome_json("unit", true);
        let (count, pairs) = validate_chrome_trace(&json).expect("schema-valid export");
        assert_eq!(count, 5);
        assert_eq!(pairs, 1);
        // Deterministic form: wall fields absent, rest identical in shape.
        let stable = trace.to_chrome_json("unit", false);
        assert!(!stable.contains("wall_ns"));
        validate_chrome_trace(&stable).expect("stable export is schema-valid too");
    }

    #[test]
    fn validator_rejects_unbalanced_async() {
        let events = vec![event(
            SpanKind::Speculation,
            TracePhase::AsyncBegin { id: 1 },
            0,
            0,
            0.0,
        )];
        let json = Trace::from_events(events).to_chrome_json("unit", false);
        assert!(validate_chrome_trace(&json).is_err());
    }

    #[test]
    fn coverage_measures_the_stage_partition() {
        let mut events = vec![event(
            SpanKind::Decision,
            TracePhase::Complete { sim_dur: 1.0 },
            0,
            0,
            0.0,
        )];
        // Two stages covering 0.6 + 0.38 of the window.
        events.push(event(
            SpanKind::StagePointCloud,
            TracePhase::Complete { sim_dur: 0.6 },
            0,
            1,
            0.0,
        ));
        events.push(event(
            SpanKind::StagePlanning,
            TracePhase::Complete { sim_dur: 0.38 },
            0,
            2,
            0.6,
        ));
        // A stage on another track must not count.
        events.push(event(
            SpanKind::StageControl,
            TracePhase::Complete { sim_dur: 1.0 },
            3,
            0,
            0.0,
        ));
        let coverage = Trace::from_events(events).decision_stage_coverage();
        assert_eq!(coverage.len(), 1);
        assert!((coverage[0] - 0.98).abs() < 1e-9);
    }

    #[test]
    fn summaries_aggregate_per_kind() {
        let events = vec![
            event(
                SpanKind::Decision,
                TracePhase::Complete { sim_dur: 0.5 },
                0,
                0,
                0.0,
            ),
            event(
                SpanKind::Decision,
                TracePhase::Complete { sim_dur: 0.7 },
                0,
                1,
                1.0,
            ),
            event(SpanKind::WatchdogFire, TracePhase::Instant, 0, 2, 1.2),
        ];
        let summaries = Trace::from_events(events).summaries();
        let decision = summaries
            .iter()
            .find(|s| s.kind == SpanKind::Decision)
            .unwrap();
        assert_eq!(decision.count, 2);
        assert!((decision.total_sim - 1.2).abs() < 1e-12);
        let watchdog = summaries
            .iter()
            .find(|s| s.kind == SpanKind::WatchdogFire)
            .unwrap();
        assert_eq!(watchdog.count, 1);
        assert_eq!(watchdog.total_sim, 0.0);
    }
}
