//! A hand-rolled JSON writer and minimal parser.
//!
//! The offline `serde` shim is derive-decoration only — nothing in the
//! workspace can serialize through it — so every machine-readable
//! artifact (`BENCH_<pr>.json`, the Chrome-trace exports) is written by
//! hand. This module centralises the emission that used to be
//! duplicated `push_str` blocks in the bench binary, and adds the small
//! parser the schema checks and the BENCH trajectory diff need.
//!
//! The writer mirrors the established `BENCH_*.json` house style: block
//! containers indent their children by two spaces per level, while leaf
//! rows use *inline* containers (`{"shards": 1, "seconds": 12.448}`) so
//! the files stay diffable line-per-measurement.

use std::fmt::Write as _;

/// Incremental JSON writer with block (indented) and inline containers.
///
/// # Example
///
/// ```
/// use roborun_trace::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("bench");
/// w.string("example");
/// w.key("rows");
/// w.begin_array();
/// w.begin_inline_object();
/// w.key("k");
/// w.int(1);
/// w.end();
/// w.end();
/// w.end();
/// assert_eq!(w.finish(), "{\n  \"bench\": \"example\",\n  \"rows\": [\n    {\"k\": 1}\n  ]\n}\n");
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    stack: Vec<Frame>,
    /// A key was just written; the next value belongs to it.
    pending_key: bool,
}

/// One open container.
#[derive(Debug)]
struct Frame {
    inline: bool,
    has_entries: bool,
    object: bool,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn depth(&self) -> usize {
        self.stack.len()
    }

    /// `true` while any container inside the current nesting is inline
    /// (inline-ness is inherited: everything inside an inline container
    /// stays on its line).
    fn inline(&self) -> bool {
        self.stack.iter().any(|frame| frame.inline)
    }

    /// Prepares the buffer for the next entry of the current container:
    /// separator, newline and indentation as the container style needs.
    fn next_entry(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        let inline = self.inline();
        let depth = self.depth();
        if let Some(frame) = self.stack.last_mut() {
            if frame.has_entries {
                self.buf.push(',');
                self.buf.push_str(if inline { " " } else { "\n" });
            } else if !inline {
                self.buf.push('\n');
            }
            frame.has_entries = true;
            if !inline {
                for _ in 0..depth {
                    self.buf.push_str("  ");
                }
            }
        }
    }

    /// Closes the current container (object or array).
    ///
    /// # Panics
    ///
    /// Panics when no container is open or a key is dangling.
    pub fn end(&mut self) {
        assert!(!self.pending_key, "dangling key before end()");
        let frame = self.stack.pop().expect("end() without an open container");
        if frame.has_entries && !frame.inline && !self.inline() {
            self.buf.push('\n');
            for _ in 0..self.depth() {
                self.buf.push_str("  ");
            }
        }
        self.buf.push(if frame.object { '}' } else { ']' });
    }

    fn begin(&mut self, inline: bool, object: bool) {
        self.next_entry();
        self.stack.push(Frame {
            inline,
            has_entries: false,
            object,
        });
        self.buf.push(if object { '{' } else { '[' });
    }

    /// Opens a block-style object (children indented, one per line).
    pub fn begin_object(&mut self) {
        self.begin(false, true);
    }

    /// Opens an inline object (children `", "`-separated on one line).
    pub fn begin_inline_object(&mut self) {
        self.begin(true, true);
    }

    /// Opens a block-style array.
    pub fn begin_array(&mut self) {
        self.begin(false, false);
    }

    /// Opens an inline array.
    pub fn begin_inline_array(&mut self) {
        self.begin(true, false);
    }

    /// Writes an object key; the next value call provides its value.
    pub fn key(&mut self, key: &str) {
        self.next_entry();
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\": ");
        self.pending_key = true;
    }

    /// Writes an integer value.
    pub fn int(&mut self, value: i64) {
        self.next_entry();
        let _ = write!(self.buf, "{value}");
    }

    /// Writes an unsigned integer value.
    pub fn uint(&mut self, value: u64) {
        self.next_entry();
        let _ = write!(self.buf, "{value}");
    }

    /// Writes a float rounded to `decimals` fractional digits (the
    /// BENCH-file convention).
    pub fn float(&mut self, value: f64, decimals: usize) {
        self.next_entry();
        let _ = write!(self.buf, "{value:.decimals$}");
    }

    /// Writes a float with the shortest round-trip representation (used
    /// by the trace exporter, where timestamps must not lose bits).
    pub fn float_full(&mut self, value: f64) {
        self.next_entry();
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
            // `{}` renders integral floats without a fractional part;
            // keep them as JSON numbers either way (both parse fine).
        } else {
            // JSON has no infinities; clamp to null.
            self.buf.push_str("null");
        }
    }

    /// Writes a string value (escaped).
    pub fn string(&mut self, value: &str) {
        self.next_entry();
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, value: bool) {
        self.next_entry();
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Writes a `null`.
    pub fn null(&mut self) {
        self.next_entry();
        self.buf.push_str("null");
    }

    /// Finishes writing: closes nothing (the caller balances containers)
    /// and returns the buffer with a trailing newline.
    ///
    /// # Panics
    ///
    /// Panics when containers are still open.
    pub fn finish(mut self) -> String {
        assert!(
            self.stack.is_empty(),
            "finish() with {} unclosed container(s)",
            self.stack.len()
        );
        self.buf.push('\n');
        self.buf
    }
}

fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

/// A parsed JSON value (the minimal tree the schema checks and the
/// BENCH trajectory diff need).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with the byte offset on
    /// malformed input or trailing garbage.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_whitespace();
        let value = p.value()?;
        p.skip_whitespace();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object member list, if it is one.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reproduces_the_bench_house_style() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("bench");
        w.string("fleet_missions");
        w.key("host_cores");
        w.uint(1);
        w.key("service_throughput");
        w.begin_array();
        for (shards, seconds) in [(1u64, 12.448f64), (2, 12.561)] {
            w.begin_inline_object();
            w.key("shards");
            w.uint(shards);
            w.key("seconds");
            w.float(seconds, 3);
            w.end();
        }
        w.end();
        w.key("shared_broad_phase");
        w.begin_inline_object();
        w.key("clones");
        w.uint(16);
        w.key("speedup");
        w.float(10.25, 2);
        w.end();
        w.end();
        let rendered = w.finish();
        let expected = "{\n  \"bench\": \"fleet_missions\",\n  \"host_cores\": 1,\n  \
                        \"service_throughput\": [\n    {\"shards\": 1, \"seconds\": 12.448},\n    \
                        {\"shards\": 2, \"seconds\": 12.561}\n  ],\n  \
                        \"shared_broad_phase\": {\"clones\": 16, \"speedup\": 10.25}\n}\n";
        assert_eq!(rendered, expected);
    }

    #[test]
    fn writer_output_round_trips_through_the_parser() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("label");
        w.string("quote \" backslash \\ newline \n done");
        w.key("values");
        w.begin_inline_array();
        w.float_full(0.125);
        w.int(-3);
        w.null();
        w.bool(true);
        w.end();
        w.key("nested");
        w.begin_object();
        w.key("empty_array");
        w.begin_array();
        w.end();
        w.key("empty_object");
        w.begin_inline_object();
        w.end();
        w.end();
        w.end();
        let text = w.finish();
        let value = JsonValue::parse(&text).expect("writer output parses");
        assert_eq!(
            value.get("label").and_then(JsonValue::as_str),
            Some("quote \" backslash \\ newline \n done")
        );
        let values = value.get("values").and_then(JsonValue::as_array).unwrap();
        assert_eq!(values[0].as_number(), Some(0.125));
        assert_eq!(values[1].as_number(), Some(-3.0));
        assert_eq!(values[2], JsonValue::Null);
        assert_eq!(values[3], JsonValue::Bool(true));
        assert_eq!(
            value.get("nested").and_then(|n| n.get("empty_array")),
            Some(&JsonValue::Array(Vec::new()))
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_reads_numbers_and_nesting() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": null}}"#;
        let v = JsonValue::parse(doc).unwrap();
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a[2].as_number(), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&JsonValue::Null));
    }
}
