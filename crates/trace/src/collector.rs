//! Per-thread ring-buffer collectors behind one global armed gate.
//!
//! # Hot-path contract
//!
//! * **Disarmed** (the default), every emission function is a single
//!   relaxed atomic load plus a branch — the `trace_gate` group of the
//!   `kernel_scaling` bench holds it at single-digit nanoseconds — and
//!   no event storage is touched.
//! * **Armed**, events are pushed into a `thread_local` buffer (no lock)
//!   and spilled into the global sink only when the buffer fills or at
//!   an explicit [`flush`] placed at a coarse boundary (mission end,
//!   shard-row end), so the decision loop never contends on a mutex.
//!
//! # Deterministic ids
//!
//! An event's identity is `(track, seq)`. Tracks are **assigned by the
//! instrumentation sites** via [`set_track`] (main mission loop 0, the
//! plan-ahead worker [`SPECULATION_TRACK`], shard `s` at
//! `SHARD_TRACK_BASE + s`, fleet drone `i` at track `i`) — never derived
//! from OS thread ids — and `seq` counts per track in emission order.
//! As long as each track is driven by one thread at a time (true for
//! every site above), ids depend only on the simulation's own event
//! order, not on OS scheduling.

use crate::kind::{SpanKind, TraceEvent, TracePhase};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Track of the plan-ahead speculation worker.
pub const SPECULATION_TRACK: u32 = 64;
/// First track of the mission-service shard workers (shard `s` emits on
/// `SHARD_TRACK_BASE + s`).
pub const SHARD_TRACK_BASE: u32 = 128;

/// The global armed gate. Relaxed ordering is sufficient: arming is a
/// coarse mode switch done outside any mission, and a decision that
/// races the flip merely traces (or skips) one extra decision.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Wall-clock epoch, fixed the first time the tracer is armed.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Spilled events from all threads, drained by [`drain`].
static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

/// Events dropped because the sink hit [`SINK_CAPACITY`].
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Local buffer size before spilling to the sink.
const RING_CAPACITY: usize = 8_192;

/// Global bound on retained events: beyond this the collector counts
/// drops instead of growing without bound (a safety net for benches
/// that emit in a tight loop; real missions stay far below it).
const SINK_CAPACITY: usize = 1 << 20;

struct Local {
    track: u32,
    /// Per-track sequence counters, indexed by track id.
    seqs: Vec<u64>,
    events: Vec<TraceEvent>,
}

impl Local {
    const fn new() -> Self {
        Local {
            track: 0,
            seqs: Vec::new(),
            events: Vec::new(),
        }
    }

    fn next_seq(&mut self) -> u64 {
        let track = self.track as usize;
        if self.seqs.len() <= track {
            self.seqs.resize(track + 1, 0);
        }
        let seq = self.seqs[track];
        self.seqs[track] += 1;
        seq
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = const { RefCell::new(Local::new()) };
}

/// `true` when tracing is armed. This is the whole disarmed hot path:
/// one relaxed load, one branch.
#[inline(always)]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms the tracer. The wall-clock epoch is fixed on the first call.
pub fn arm() {
    EPOCH.get_or_init(Instant::now);
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms the tracer. Buffered events stay buffered (drain them with
/// [`drain`] or [`crate::Trace::collect`]).
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
}

/// Nanoseconds since the tracer was first armed (0 if never armed).
pub fn wall_now_ns() -> u64 {
    EPOCH
        .get()
        .map_or(0, |epoch| epoch.elapsed().as_nanos() as u64)
}

/// Assigns the calling thread's track id (see the module docs for the
/// assignment scheme). Sequence counters are per track and keep
/// counting across reassignments, so a thread interleaving two tracks
/// (the fleet coordinator) still produces deterministic per-track ids.
pub fn set_track(track: u32) {
    LOCAL.with(|local| local.borrow_mut().track = track);
}

/// The calling thread's current track id.
pub fn current_track() -> u32 {
    LOCAL.with(|local| local.borrow().track)
}

/// Spills the calling thread's buffered events into the global sink.
/// Call at coarse boundaries only (mission end, shard-row end); the hot
/// path spills automatically when the local buffer fills.
pub fn flush() {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        if local.events.is_empty() {
            return;
        }
        let events = std::mem::take(&mut local.events);
        spill(events);
    });
}

fn spill(events: Vec<TraceEvent>) {
    let mut sink = SINK.lock().expect("trace sink poisoned");
    let room = SINK_CAPACITY.saturating_sub(sink.len());
    if events.len() > room {
        DROPPED.fetch_add((events.len() - room) as u64, Ordering::Relaxed);
    }
    sink.extend(events.into_iter().take(room));
}

/// Takes every spilled event (flushing the calling thread first) and
/// resets the drop counter. Other threads' unflushed buffers are left
/// alone — join or boundary-flush them before draining.
pub fn drain() -> Vec<TraceEvent> {
    flush();
    DROPPED.store(0, Ordering::Relaxed);
    std::mem::take(&mut *SINK.lock().expect("trace sink poisoned"))
}

/// Events dropped since the last [`drain`] because the sink was full.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

#[inline]
fn emit(
    kind: SpanKind,
    phase: TracePhase,
    sim_time: f64,
    wall_dur_ns: u64,
    detail: Option<String>,
    args: &[(&'static str, f64)],
) {
    let wall_ns = wall_now_ns();
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let track = local.track;
        let seq = local.next_seq();
        local.events.push(TraceEvent {
            kind,
            phase,
            track,
            seq,
            sim_time,
            wall_ns,
            wall_dur_ns,
            detail,
            args: args.to_vec(),
        });
        if local.events.len() >= RING_CAPACITY {
            let events = std::mem::take(&mut local.events);
            drop(local);
            spill(events);
        }
    });
}

/// Emits a complete span (`ph: "X"`). No-op when disarmed.
#[inline]
pub fn complete(
    kind: SpanKind,
    sim_start: f64,
    sim_dur: f64,
    wall_dur_ns: u64,
    args: &[(&'static str, f64)],
) {
    if !armed() {
        return;
    }
    emit(
        kind,
        TracePhase::Complete { sim_dur },
        sim_start,
        wall_dur_ns,
        None,
        args,
    );
}

/// [`complete`] with a free-form label (bus topic, row tag).
#[inline]
pub fn complete_labeled(
    kind: SpanKind,
    detail: &str,
    sim_start: f64,
    sim_dur: f64,
    wall_dur_ns: u64,
    args: &[(&'static str, f64)],
) {
    if !armed() {
        return;
    }
    emit(
        kind,
        TracePhase::Complete { sim_dur },
        sim_start,
        wall_dur_ns,
        Some(detail.to_string()),
        args,
    );
}

/// Emits an instant event (`ph: "i"`). No-op when disarmed.
#[inline]
pub fn instant(kind: SpanKind, sim_time: f64, args: &[(&'static str, f64)]) {
    if !armed() {
        return;
    }
    emit(kind, TracePhase::Instant, sim_time, 0, None, args);
}

/// [`instant`] with a free-form label.
#[inline]
pub fn instant_labeled(kind: SpanKind, detail: &str, sim_time: f64, args: &[(&'static str, f64)]) {
    if !armed() {
        return;
    }
    emit(
        kind,
        TracePhase::Instant,
        sim_time,
        0,
        Some(detail.to_string()),
        args,
    );
}

/// Emits a counter sample (`ph: "C"`), one counter series per
/// `(kind, detail)` pair. No-op when disarmed.
#[inline]
pub fn counter(kind: SpanKind, detail: &str, sim_time: f64, value: f64) {
    if !armed() {
        return;
    }
    emit(
        kind,
        TracePhase::Counter { value },
        sim_time,
        0,
        Some(detail.to_string()),
        &[],
    );
}

/// Begins an async span (`ph: "b"`). The caller owns the id; the
/// deterministic convention is `(track << 32) | launch-counter`.
/// No-op when disarmed.
#[inline]
pub fn async_begin(kind: SpanKind, id: u64, sim_time: f64, args: &[(&'static str, f64)]) {
    if !armed() {
        return;
    }
    emit(kind, TracePhase::AsyncBegin { id }, sim_time, 0, None, args);
}

/// Ends an async span (`ph: "e"`); pair by id with [`async_begin`].
/// No-op when disarmed.
#[inline]
pub fn async_end(kind: SpanKind, id: u64, sim_time: f64, args: &[(&'static str, f64)]) {
    if !armed() {
        return;
    }
    emit(kind, TracePhase::AsyncEnd { id }, sim_time, 0, None, args);
}

/// A wall-clock stopwatch handed out only while armed, so disarmed call
/// sites never touch `Instant::now()`.
#[derive(Debug)]
pub struct WallTimer {
    start: Instant,
}

impl WallTimer {
    /// Elapsed wall nanoseconds since the timer was started.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// Starts a [`WallTimer`] when armed; `None` otherwise.
#[inline]
pub fn timer() -> Option<WallTimer> {
    armed().then(|| WallTimer {
        start: Instant::now(),
    })
}

/// Elapsed nanoseconds of an optional [`WallTimer`] (0 when `None`).
#[inline]
pub fn timer_ns(timer: &Option<WallTimer>) -> u64 {
    timer.as_ref().map_or(0, WallTimer::elapsed_ns)
}

/// An RAII complete-span: measures wall time from construction to drop
/// and emits one [`TracePhase::Complete`] event on drop. Simulated
/// start/end times are set explicitly (the sim clock is owned by the
/// caller); an unset end yields a zero-length sim span.
#[derive(Debug)]
pub struct ScopedSpan {
    kind: SpanKind,
    detail: Option<String>,
    sim_start: f64,
    sim_end: f64,
    wall: Instant,
    args: Vec<(&'static str, f64)>,
}

/// Opens a [`ScopedSpan`] when armed; `None` otherwise (so the disarmed
/// path allocates nothing).
#[inline]
pub fn scoped(kind: SpanKind, sim_start: f64) -> Option<ScopedSpan> {
    if !armed() {
        return None;
    }
    Some(ScopedSpan {
        kind,
        detail: None,
        sim_start,
        sim_end: sim_start,
        wall: Instant::now(),
        args: Vec::new(),
    })
}

impl ScopedSpan {
    /// Attaches a free-form label.
    pub fn with_detail(mut self, detail: &str) -> Self {
        self.detail = Some(detail.to_string());
        self
    }

    /// Sets the simulated end time of the span.
    pub fn set_sim_end(&mut self, sim_end: f64) {
        self.sim_end = sim_end;
    }

    /// Appends one numeric argument.
    pub fn arg(&mut self, key: &'static str, value: f64) {
        self.args.push((key, value));
    }
}

impl Drop for ScopedSpan {
    fn drop(&mut self) {
        if !armed() {
            return;
        }
        emit(
            self.kind,
            TracePhase::Complete {
                sim_dur: (self.sim_end - self.sim_start).max(0.0),
            },
            self.sim_start,
            self.wall.elapsed().as_nanos() as u64,
            self.detail.take(),
            &std::mem::take(&mut self.args),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collector tests share the process-global sink; serialise them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_emission_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        disarm();
        let _ = drain();
        complete(SpanKind::Decision, 0.0, 1.0, 0, &[]);
        instant(SpanKind::WatchdogFire, 0.5, &[]);
        counter(SpanKind::QueueDepth, "/t", 0.5, 1.0);
        assert!(timer().is_none());
        assert!(scoped(SpanKind::ShardRow, 0.0).is_none());
        assert!(drain().is_empty());
    }

    #[test]
    fn sequences_are_per_track_and_survive_reassignment() {
        let _guard = TEST_LOCK.lock().unwrap();
        let _ = drain();
        arm();
        set_track(3);
        complete(SpanKind::Decision, 0.0, 0.1, 0, &[]);
        set_track(5);
        complete(SpanKind::Decision, 0.0, 0.1, 0, &[]);
        set_track(3);
        complete(SpanKind::Decision, 0.2, 0.1, 0, &[]);
        disarm();
        let events = drain();
        set_track(0);
        let ids: Vec<(u32, u64)> = events.iter().map(|e| (e.track, e.seq)).collect();
        assert!(ids.contains(&(3, 0)) && ids.contains(&(3, 1)) && ids.contains(&(5, 0)));
    }

    #[test]
    fn scoped_span_measures_and_emits_on_drop() {
        let _guard = TEST_LOCK.lock().unwrap();
        let _ = drain();
        arm();
        set_track(7);
        {
            let mut span = scoped(SpanKind::ShardRow, 10.0)
                .unwrap()
                .with_detail("row 4");
            span.arg("row", 4.0);
            span.set_sim_end(12.5);
        }
        disarm();
        let events = drain();
        set_track(0);
        let row = events
            .iter()
            .find(|e| e.kind == SpanKind::ShardRow)
            .expect("scoped span emitted");
        assert_eq!(row.detail.as_deref(), Some("row 4"));
        assert_eq!(row.args, vec![("row", 4.0)]);
        match row.phase {
            TracePhase::Complete { sim_dur } => assert!((sim_dur - 2.5).abs() < 1e-12),
            ref other => panic!("expected complete span, got {other:?}"),
        }
    }
}
