//! Property tests for the collector's two structural guarantees:
//!
//! 1. **Spans stay balanced** — whatever mix of complete spans, scoped
//!    spans, instants, counters and async begin/end pairs the
//!    instrumentation emits, the exported Chrome trace validates and
//!    every async begin finds its end.
//! 2. **Event ids are deterministic** — `(track, seq)` identifies an
//!    event by the simulation's own emission order, so replaying the
//!    same operation sequence yields bit-identical sim-time streams,
//!    and per-track streams are independent of OS thread scheduling.
//!
//! Each case runs its emission on a freshly spawned thread so the
//! per-thread sequence counters start from zero, and the whole file
//! serialises on one mutex because the collector sink is process-global.

use proptest::prelude::*;
use roborun_trace::collector;
use roborun_trace::{validate_chrome_trace, SpanKind, Trace, TraceEvent, TracePhase};
use std::sync::Mutex;

/// The collector is process-global state; cases must not interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Sim-time projection of an event: everything except the wall-clock
/// fields, which legitimately differ between replays.
type SimKey = (
    &'static str,
    TracePhase,
    u32,
    u64,
    u64,
    Option<String>,
    Vec<(&'static str, f64)>,
);

fn sim_key(e: &TraceEvent) -> SimKey {
    (
        e.kind.name(),
        e.phase,
        e.track,
        e.seq,
        e.sim_time.to_bits(),
        e.detail.clone(),
        e.args.clone(),
    )
}

/// Emits one event for op `i` with action `action` on the current track.
/// Async begins return the id that must later be closed.
fn emit(track: u32, action: u8, i: usize) -> Option<(SpanKind, u64)> {
    let t = i as f64 * 0.01;
    match action % 5 {
        0 => {
            collector::complete(SpanKind::Decision, t, 0.005, 0, &[("op", i as f64)]);
            None
        }
        1 => {
            collector::instant(SpanKind::FaultInjected, t, &[]);
            None
        }
        2 => {
            collector::counter(SpanKind::QueueDepth, "/trace_props", t, i as f64);
            None
        }
        3 => {
            // Deterministic pairing id, same scheme the plan-ahead
            // worker uses: track in the high half, op index below.
            let id = ((track as u64) << 32) | i as u64;
            collector::async_begin(SpanKind::Speculation, id, t, &[]);
            Some((SpanKind::Speculation, id))
        }
        _ => {
            let mut span = collector::scoped(SpanKind::ShardRow, t).expect("armed");
            span.set_sim_end(t + 0.002);
            None
        }
    }
}

/// Runs one interleaved op sequence on a fresh thread and drains it.
/// Every async begin is closed before disarming, so the resulting
/// stream is balanced by construction — the property under test is
/// that the *exporter agrees* and that ids replay identically.
fn apply(ops: Vec<(u32, u8)>) -> Vec<TraceEvent> {
    std::thread::spawn(move || {
        let _ = collector::drain();
        collector::arm();
        let mut open = Vec::new();
        for (i, &(track, action)) in ops.iter().enumerate() {
            collector::set_track(track);
            if let Some(pair) = emit(track, action, i) {
                open.push(pair);
            }
        }
        for (j, (kind, id)) in open.into_iter().enumerate() {
            collector::async_end(kind, id, 100.0 + j as f64, &[]);
        }
        collector::disarm();
        collector::set_track(0);
        collector::drain()
    })
    .join()
    .expect("emission thread")
}

/// Runs each track's op list on its own concurrently scheduled thread.
fn apply_parallel(per_track: Vec<Vec<u8>>) -> Vec<TraceEvent> {
    let _ = collector::drain();
    collector::arm();
    std::thread::scope(|s| {
        for (t, actions) in per_track.into_iter().enumerate() {
            let track = 200 + t as u32;
            s.spawn(move || {
                collector::set_track(track);
                let mut open = Vec::new();
                for (i, &action) in actions.iter().enumerate() {
                    if let Some(pair) = emit(track, action, i) {
                        open.push(pair);
                    }
                }
                for (j, (kind, id)) in open.into_iter().enumerate() {
                    collector::async_end(kind, id, 100.0 + j as f64, &[]);
                }
                collector::flush();
            });
        }
    });
    collector::disarm();
    collector::drain()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of emission ops across tracks on one thread
    /// yields (a) a schema-valid Chrome trace with every async span
    /// paired, (b) dense per-track sequence numbers in emission order,
    /// and (c) the exact same sim-time event stream when replayed.
    #[test]
    fn spans_balance_and_ids_replay(ops in prop::collection::vec((0u32..4, 0u8..5), 0..48)) {
        let _guard = TEST_LOCK.lock().unwrap();
        let first = apply(ops.clone());

        // (a) exporter agrees the stream is balanced.
        let trace = Trace::from_events(first.clone());
        let asyncs = ops.iter().filter(|&&(_, a)| a % 5 == 3).count();
        let (events, pairs) = validate_chrome_trace(&trace.to_chrome_json("props", false))
            .map_err(TestCaseError::Fail)?;
        prop_assert_eq!(events, ops.len() + asyncs);
        prop_assert_eq!(pairs, asyncs);

        // (b) per-track seqs are 0,1,2,... in emission order.
        let mut next = std::collections::HashMap::new();
        for e in &first {
            let counter = next.entry(e.track).or_insert(0u64);
            prop_assert_eq!(e.seq, *counter, "track {} seq out of order", e.track);
            *counter += 1;
        }

        // (c) replaying the identical op sequence reproduces the
        // identical sim-time stream, bit for bit.
        let second = apply(ops);
        let first_keys: Vec<_> = first.iter().map(sim_key).collect();
        let second_keys: Vec<_> = second.iter().map(sim_key).collect();
        prop_assert_eq!(first_keys, second_keys);
    }

    /// With each track driven by its own OS thread, the per-track event
    /// streams are identical across runs even though the global arrival
    /// order in the sink is scheduler-dependent.
    #[test]
    fn per_track_ids_survive_thread_interleaving(
        per_track in prop::collection::vec(prop::collection::vec(0u8..5, 1..24), 1..4),
    ) {
        let _guard = TEST_LOCK.lock().unwrap();
        let first = apply_parallel(per_track.clone());
        let second = apply_parallel(per_track.clone());

        for (t, actions) in per_track.iter().enumerate() {
            let track = 200 + t as u32;
            let project = |events: &[TraceEvent]| {
                let mut mine: Vec<_> = events.iter().filter(|e| e.track == track).collect();
                mine.sort_by_key(|e| e.seq);
                mine.iter().map(|e| sim_key(e)).collect::<Vec<_>>()
            };
            let first_track = project(&first);
            let second_track = project(&second);
            let asyncs = actions.iter().filter(|&&a| a % 5 == 3).count();
            prop_assert_eq!(first_track.len(), actions.len() + asyncs);
            prop_assert_eq!(first_track, second_track, "track {} diverged", track);
        }
    }
}
