//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use roborun_env::{DifficultyConfig, EnvironmentGenerator};
use roborun_geom::{Pose, Vec3};
use roborun_sim::{
    CameraRig, ComputeLatencyModel, CpuModel, DroneConfig, DroneState, EnergyModel, PipelineStage,
    StoppingModel,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stopping_distance_monotone_and_invertible(v1 in 0.0f64..12.0, v2 in 0.0f64..12.0) {
        let m = StoppingModel::paper_default();
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(m.stopping_distance(lo) <= m.stopping_distance(hi) + 1e-12);
        // max_velocity_for_distance inverts stopping_distance.
        let d = m.stopping_distance(hi);
        let v_back = m.max_velocity_for_distance(d);
        prop_assert!((v_back - hi).abs() < 1e-3 || hi < 1e-3);
    }

    #[test]
    fn latency_model_monotone_in_both_knobs(p1 in 0.3f64..9.6, p2 in 0.3f64..9.6,
                                            v1 in 0.0f64..200_000.0, v2 in 0.0f64..200_000.0) {
        let m = ComputeLatencyModel::calibrated();
        let (p_fine, p_coarse) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let (v_small, v_large) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        for stage in PipelineStage::GOVERNED {
            // Finer precision (smaller voxel) at the same volume costs more.
            prop_assert!(
                m.stage_latency(stage, p_fine, v_large) + 1e-12
                    >= m.stage_latency(stage, p_coarse, v_large)
            );
            // More volume at the same precision costs more.
            prop_assert!(
                m.stage_latency(stage, p_fine, v_large) + 1e-12
                    >= m.stage_latency(stage, p_fine, v_small)
            );
            // Latency is never negative.
            prop_assert!(m.stage_latency(stage, p_fine, v_small) >= 0.0);
        }
    }

    #[test]
    fn drone_never_exceeds_speed_limit(speed_cmd in 0.0f64..20.0, steps in 1usize..60) {
        let cfg = DroneConfig::default();
        let mut drone = DroneState::at(Vec3::ZERO);
        let target = Vec3::new(500.0, 0.0, 0.0);
        for _ in 0..steps {
            drone.advance_towards(&cfg, target, speed_cmd, 0.5);
            prop_assert!(drone.speed() <= cfg.max_speed + 1e-9);
        }
        // It never flies past the target either.
        prop_assert!(drone.position.x <= target.x + 1e-9);
        prop_assert!(drone.distance_travelled >= 0.0);
    }

    #[test]
    fn energy_monotone_in_time_and_speed(t1 in 0.0f64..100.0, t2 in 0.0f64..100.0,
                                         s1 in 0.0f64..8.0, s2 in 0.0f64..8.0) {
        let m = EnergyModel::default();
        let (t_lo, t_hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let (s_lo, s_hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(m.energy_for(s_lo, t_hi) >= m.energy_for(s_lo, t_lo));
        prop_assert!(m.energy_for(s_hi, t_hi) >= m.energy_for(s_lo, t_hi));
    }

    #[test]
    fn cpu_utilization_bounded(latency in 0.0f64..20.0, interval in 0.0f64..20.0) {
        let m = CpuModel::default();
        let s = m.sample(latency, interval);
        prop_assert!((0.0..=1.0).contains(&s.utilization));
        prop_assert!(s.interval_seconds >= latency);
    }

    #[test]
    fn camera_hits_lie_on_obstacle_surfaces(seed in 0u64..30, x_off in 5.0f64..60.0) {
        let env = EnvironmentGenerator::new(DifficultyConfig {
            goal_distance: 150.0,
            ..DifficultyConfig::mid()
        })
        .generate(seed);
        let rig = CameraRig::mono_rig();
        let pose = Pose::new(env.start() + Vec3::new(x_off, 0.0, 0.0), 0.0);
        let scan = rig.capture(env.field(), &pose);
        prop_assert_eq!(scan.rays_cast, rig.rays_per_sweep());
        for p in &scan.points {
            // Every returned point is on (or just inside) some obstacle and
            // within sensing range.
            let d = env.field().distance_to_nearest(*p).unwrap_or(f64::INFINITY);
            prop_assert!(d < 1e-6, "hit point {p:?} is {d} m from every obstacle");
            prop_assert!(pose.position.distance(*p) <= scan.max_range + 1e-6);
        }
    }
}
