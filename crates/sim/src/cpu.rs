//! CPU-utilisation model for the navigation workload.
//!
//! The paper's workload runs on four dedicated Core i9 cores and reports
//! that RoboRun "reduces CPU-utilization by 36% on average per decision by
//! lowering the computational load when possible", freeing resources for
//! higher-level cognitive tasks.
//!
//! We model per-decision utilisation as busy core-seconds divided by
//! available core-seconds over the decision interval. Busy core-seconds are
//! the sum of the pipeline stages' compute latencies weighted by how many
//! cores each stage can keep busy; the decision interval is the wall-clock
//! time between consecutive decisions (at least the end-to-end latency).

use serde::{Deserialize, Serialize};

/// Per-decision CPU utilisation sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSample {
    /// Busy core-seconds spent computing this decision.
    pub busy_core_seconds: f64,
    /// Wall-clock length of the decision interval (seconds).
    pub interval_seconds: f64,
    /// Utilisation in `[0, 1]` of the compute platform over the interval.
    pub utilization: f64,
}

/// Models the compute platform the navigation pipeline runs on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Number of cores dedicated to the navigation workload (the paper
    /// uses four Core i9 cores).
    pub cores: f64,
    /// Average number of cores a compute stage keeps busy while it runs
    /// (perception and planning are partially parallel; 1.0 = purely
    /// sequential).
    pub stage_parallelism: f64,
    /// Baseline background utilisation (sensor drivers, ROS overheads) as a
    /// fraction of the platform.
    pub background_utilization: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            cores: 4.0,
            stage_parallelism: 1.6,
            background_utilization: 0.08,
        }
    }
}

impl CpuModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if `cores <= 0`, `stage_parallelism <= 0` or the
    /// background utilisation is outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores <= 0.0 {
            return Err(format!("cores must be positive, got {}", self.cores));
        }
        if self.stage_parallelism <= 0.0 {
            return Err(format!(
                "stage parallelism must be positive, got {}",
                self.stage_parallelism
            ));
        }
        if !(0.0..1.0).contains(&self.background_utilization) {
            return Err(format!(
                "background utilisation must be in [0, 1), got {}",
                self.background_utilization
            ));
        }
        Ok(())
    }

    /// Utilisation of the platform for one navigation decision.
    ///
    /// * `compute_latency` — summed compute time of the pipeline stages for
    ///   this decision (seconds).
    /// * `interval` — wall-clock interval the decision occupies (seconds);
    ///   clamped to be at least `compute_latency`.
    ///
    /// # Panics
    ///
    /// Panics if `compute_latency < 0` or `interval < 0`.
    pub fn sample(&self, compute_latency: f64, interval: f64) -> CpuSample {
        assert!(
            compute_latency >= 0.0,
            "compute latency must be non-negative"
        );
        assert!(interval >= 0.0, "interval must be non-negative");
        let interval = interval.max(compute_latency).max(1e-9);
        let busy_core_seconds = compute_latency * self.stage_parallelism.min(self.cores);
        let utilization = (busy_core_seconds / (self.cores * interval)
            + self.background_utilization)
            .clamp(0.0, 1.0);
        CpuSample {
            busy_core_seconds,
            interval_seconds: interval,
            utilization,
        }
    }

    /// Mean utilisation over a sequence of `(compute_latency, interval)`
    /// decision records.
    pub fn mean_utilization(&self, decisions: &[(f64, f64)]) -> f64 {
        if decisions.is_empty() {
            return self.background_utilization;
        }
        decisions
            .iter()
            .map(|&(lat, int)| self.sample(lat, int).utilization)
            .sum::<f64>()
            / decisions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_valid() {
        assert!(CpuModel::default().validate().is_ok());
        assert!(CpuModel {
            cores: 0.0,
            ..CpuModel::default()
        }
        .validate()
        .is_err());
        assert!(CpuModel {
            stage_parallelism: 0.0,
            ..CpuModel::default()
        }
        .validate()
        .is_err());
        assert!(CpuModel {
            background_utilization: 1.5,
            ..CpuModel::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn busy_pipeline_means_high_utilization() {
        let m = CpuModel::default();
        // Back-to-back decisions: interval == latency.
        let busy = m.sample(4.0, 4.0);
        assert!(busy.utilization > 0.4);
        // Light decision in a long interval barely loads the CPU.
        let light = m.sample(0.3, 4.0);
        assert!(light.utilization < busy.utilization);
        assert!(light.utilization >= m.background_utilization);
    }

    #[test]
    fn utilization_is_clamped() {
        let m = CpuModel {
            cores: 1.0,
            stage_parallelism: 4.0,
            background_utilization: 0.0,
        };
        let s = m.sample(10.0, 10.0);
        assert!(s.utilization <= 1.0);
    }

    #[test]
    fn interval_clamped_to_latency() {
        let m = CpuModel::default();
        let s = m.sample(2.0, 0.5);
        assert!(s.interval_seconds >= 2.0);
    }

    #[test]
    fn zero_latency_reports_background_only() {
        let m = CpuModel::default();
        let s = m.sample(0.0, 1.0);
        assert!((s.utilization - m.background_utilization).abs() < 1e-9);
        assert_eq!(s.busy_core_seconds, 0.0);
    }

    #[test]
    fn mean_over_mission_reproduces_headline_direction() {
        let m = CpuModel::default();
        // Spatial-oblivious: every decision is heavy and back-to-back.
        let oblivious: Vec<(f64, f64)> = (0..50).map(|_| (4.5, 4.5)).collect();
        // Spatial-aware: most decisions are light; a few are heavy near
        // obstacles; decisions are issued at the same cadence or faster.
        let aware: Vec<(f64, f64)> = (0..50)
            .map(|i| if i % 10 == 0 { (3.5, 3.5) } else { (0.4, 1.0) })
            .collect();
        let u_obl = m.mean_utilization(&oblivious);
        let u_aware = m.mean_utilization(&aware);
        assert!(u_aware < u_obl);
        let reduction = (u_obl - u_aware) / u_obl;
        // The paper reports a 36% reduction; we only require the direction
        // and a substantial (>15%) margin from the model itself.
        assert!(reduction > 0.15, "reduction {reduction}");
    }

    #[test]
    fn empty_mission_reports_background() {
        let m = CpuModel::default();
        assert_eq!(m.mean_utilization(&[]), m.background_utilization);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_latency_panics() {
        let _ = CpuModel::default().sample(-1.0, 1.0);
    }
}
