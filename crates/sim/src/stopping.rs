//! Stopping-distance model (paper Eq. 2).
//!
//! The time budget (Eq. 1) divides the *safe margin* — visibility minus the
//! distance the MAV needs to come to a full stop — by the current velocity.
//! The paper models the stopping distance by flying the drone at various
//! velocities in simulation, measuring the stopping distance and fitting a
//! quadratic with 2% MSE:
//!
//! > `d_stop(v) = −0.055·v² − 0.36·v + 0.20`    (as printed)
//!
//! As printed the polynomial is negative for every `v > 0`, which cannot be
//! a distance and would make the budget *grow* with velocity, contradicting
//! Eq. 1 and Fig. 2b. We therefore use the magnitude-preserving,
//! sign-corrected form `d_stop(v) = 0.055·v² + 0.36·v + 0.20`, which matches
//! the physical intuition (quadratic in speed, positive reaction-time term)
//! and reproduces the published deadline curves' shape. The substitution is
//! documented in DESIGN.md.

use roborun_geom::stats::polyfit;
use serde::{Deserialize, Serialize};

/// Quadratic stopping-distance model `d_stop(v) = a·v² + b·v + c`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoppingModel {
    /// Quadratic coefficient (s²/m · m = m·s²/m² — metres per (m/s)²).
    pub a: f64,
    /// Linear coefficient (seconds — effectively a reaction-time term).
    pub b: f64,
    /// Constant offset (metres).
    pub c: f64,
}

impl StoppingModel {
    /// The paper's fitted model with the sign correction described in the
    /// module documentation.
    pub fn paper_default() -> Self {
        StoppingModel {
            a: 0.055,
            b: 0.36,
            c: 0.20,
        }
    }

    /// Fits a quadratic stopping model from `(velocity, stopping distance)`
    /// samples, mirroring the paper's calibration flights.
    ///
    /// Returns `None` when fewer than three samples are given or the fit is
    /// singular.
    pub fn fit(samples: &[(f64, f64)]) -> Option<Self> {
        let coeffs = polyfit(samples, 2)?;
        Some(StoppingModel {
            a: coeffs[2],
            b: coeffs[1],
            c: coeffs[0],
        })
    }

    /// Stopping distance (metres) when travelling at `velocity` m/s.
    ///
    /// Negative velocities are treated as their magnitude; the result is
    /// never negative.
    pub fn stopping_distance(&self, velocity: f64) -> f64 {
        let v = velocity.abs();
        (self.a * v * v + self.b * v + self.c).max(0.0)
    }

    /// Largest velocity whose stopping distance fits within `distance`
    /// metres (solved by bisection). Returns 0 when even a hovering drone
    /// does not fit (i.e. `distance < c`).
    pub fn max_velocity_for_distance(&self, distance: f64) -> f64 {
        if distance <= self.stopping_distance(0.0) {
            return 0.0;
        }
        let mut lo = 0.0f64;
        let mut hi = 100.0f64;
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.stopping_distance(mid) <= distance {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Mean squared error of this model against observed samples.
    pub fn mse(&self, samples: &[(f64, f64)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples
            .iter()
            .map(|&(v, d)| {
                let e = self.stopping_distance(v) - d;
                e * e
            })
            .sum::<f64>()
            / samples.len() as f64
    }
}

impl Default for StoppingModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_coefficients() {
        let m = StoppingModel::paper_default();
        assert!((m.a - 0.055).abs() < 1e-12);
        assert!((m.b - 0.36).abs() < 1e-12);
        assert!((m.c - 0.20).abs() < 1e-12);
        assert_eq!(StoppingModel::default(), m);
    }

    #[test]
    fn stopping_distance_monotone_in_speed() {
        let m = StoppingModel::paper_default();
        let mut last = 0.0;
        for i in 0..50 {
            let v = i as f64 * 0.2;
            let d = m.stopping_distance(v);
            assert!(d >= last);
            last = d;
        }
        // Hovering still has the constant offset.
        assert!((m.stopping_distance(0.0) - 0.20).abs() < 1e-12);
        // Symmetric in sign.
        assert_eq!(m.stopping_distance(-2.0), m.stopping_distance(2.0));
    }

    #[test]
    fn specific_values() {
        let m = StoppingModel::paper_default();
        // d(1) = 0.055 + 0.36 + 0.2 = 0.615
        assert!((m.stopping_distance(1.0) - 0.615).abs() < 1e-12);
        // d(5) = 1.375 + 1.8 + 0.2 = 3.375
        assert!((m.stopping_distance(5.0) - 3.375).abs() < 1e-12);
    }

    #[test]
    fn max_velocity_inverse_of_distance() {
        let m = StoppingModel::paper_default();
        for d in [0.5, 1.0, 3.0, 10.0, 40.0] {
            let v = m.max_velocity_for_distance(d);
            assert!(m.stopping_distance(v) <= d + 1e-6);
            // Slightly faster would not fit.
            assert!(m.stopping_distance(v + 0.01) > d - 1e-6);
        }
        assert_eq!(m.max_velocity_for_distance(0.1), 0.0);
        assert_eq!(m.max_velocity_for_distance(0.0), 0.0);
    }

    #[test]
    fn fit_recovers_known_model() {
        let truth = StoppingModel {
            a: 0.08,
            b: 0.25,
            c: 0.15,
        };
        let samples: Vec<(f64, f64)> = (1..=30)
            .map(|i| {
                let v = i as f64 * 0.3;
                (v, truth.stopping_distance(v))
            })
            .collect();
        let fitted = StoppingModel::fit(&samples).unwrap();
        assert!((fitted.a - truth.a).abs() < 1e-6);
        assert!((fitted.b - truth.b).abs() < 1e-6);
        assert!((fitted.c - truth.c).abs() < 1e-6);
        assert!(fitted.mse(&samples) < 1e-10);
        assert!(StoppingModel::fit(&samples[..2]).is_none());
    }

    #[test]
    fn mse_detects_bad_model() {
        let m = StoppingModel::paper_default();
        let samples: Vec<(f64, f64)> = (1..=10)
            .map(|i| {
                let v = i as f64 * 0.5;
                (v, m.stopping_distance(v) + 1.0) // offset by one metre
            })
            .collect();
        assert!((m.mse(&samples) - 1.0).abs() < 1e-9);
        assert_eq!(m.mse(&[]), 0.0);
    }
}
