//! Simulated MAV substrate for the RoboRun reproduction.
//!
//! The paper evaluates RoboRun with a hardware-in-the-loop rig: Unreal +
//! AirSim simulate the drone's physics and cameras on one machine while the
//! navigation workload runs on four Core i9 cores of another. This crate is
//! the laptop-scale substitute: it provides every physical and platform
//! model the runtime needs —
//!
//! * [`DroneState`] / [`DroneConfig`] — kinematic quadrotor with velocity
//!   and acceleration limits and a body (collision) radius.
//! * [`StoppingModel`] — the stopping-distance model of paper Eq. 2
//!   (`d_stop(v)`), with a sign-corrected default and a least-squares
//!   fitting constructor mirroring how the paper derived it from flight
//!   data (2% MSE).
//! * [`DepthCamera`] / [`CameraRig`] — ray-cast depth sensors; the paper's
//!   MAV carries six cameras covering the full horizontal field of view.
//! * [`EnergyModel`] — propeller-dominated energy: flight energy is roughly
//!   proportional to flight time (hovering already costs hundreds of
//!   watts), which is why the paper's 4.5X mission-time gain translates to
//!   a 4X energy gain.
//! * [`CpuModel`] — CPU utilisation per navigation decision, reproducing
//!   the 36% utilisation reduction headline.
//! * [`ComputeLatencyModel`] — the simulated wall-clock cost of each
//!   pipeline stage as a function of its precision and volume knobs
//!   (paper Eq. 4 functional form), calibrated so the static baseline lands
//!   at paper-scale latencies.
//! * [`SimClock`] — mission wall-clock bookkeeping.
//!
//! # Example
//!
//! ```
//! use roborun_sim::{StoppingModel, ComputeLatencyModel, PipelineStage};
//!
//! let stop = StoppingModel::paper_default();
//! assert!(stop.stopping_distance(2.0) > stop.stopping_distance(0.5));
//!
//! let latency = ComputeLatencyModel::calibrated();
//! let slow = latency.stage_latency(PipelineStage::Perception, 0.3, 46_000.0);
//! let fast = latency.stage_latency(PipelineStage::Perception, 9.6, 1_000.0);
//! assert!(slow > 10.0 * fast);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod camera;
pub mod clock;
pub mod cpu;
pub mod drone;
pub mod energy;
pub mod faults;
pub mod latency;
pub mod stopping;

pub use camera::{CameraRig, DepthCamera, DepthScan};
pub use clock::SimClock;
pub use cpu::{CpuModel, CpuSample};
pub use drone::{DroneConfig, DroneState};
pub use energy::EnergyModel;
pub use faults::{FaultConfig, FaultInjector, FaultStats};
pub use latency::{ComputeLatencyModel, LatencyBreakdown, PipelineStage, StageCoefficients};
pub use stopping::StoppingModel;
