//! Kinematic quadrotor model.
//!
//! The reproduction does not need full quadrotor dynamics: the paper's
//! governor and operators only consume the MAV's position, velocity and the
//! dynamic limits the path smoother must respect. The model here is a
//! velocity-controlled point mass with acceleration and speed limits and a
//! collision (body) radius.

use roborun_geom::{Pose, Vec3};
use serde::{Deserialize, Serialize};

/// Static configuration of the simulated MAV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DroneConfig {
    /// Maximum commanded speed (m/s). The paper selects this experimentally
    /// so that at least 80% of flights are collision free; the spatial
    /// aware design can afford a much higher value than the oblivious one.
    pub max_speed: f64,
    /// Maximum acceleration magnitude (m/s²).
    pub max_acceleration: f64,
    /// Collision radius of the airframe (metres).
    pub body_radius: f64,
    /// Cruise altitude the missions fly at (metres).
    pub cruise_altitude: f64,
}

impl Default for DroneConfig {
    fn default() -> Self {
        DroneConfig {
            max_speed: 5.0,
            max_acceleration: 2.5,
            body_radius: 0.45,
            cruise_altitude: 5.0,
        }
    }
}

impl DroneConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when any limit is non-positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_speed <= 0.0 {
            return Err(format!(
                "max speed must be positive, got {}",
                self.max_speed
            ));
        }
        if self.max_acceleration <= 0.0 {
            return Err(format!(
                "max acceleration must be positive, got {}",
                self.max_acceleration
            ));
        }
        if self.body_radius <= 0.0 {
            return Err(format!(
                "body radius must be positive, got {}",
                self.body_radius
            ));
        }
        if self.cruise_altitude <= 0.0 {
            return Err(format!(
                "cruise altitude must be positive, got {}",
                self.cruise_altitude
            ));
        }
        Ok(())
    }
}

/// Dynamic state of the simulated MAV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DroneState {
    /// Current position (metres, world frame).
    pub position: Vec3,
    /// Current velocity (m/s, world frame).
    pub velocity: Vec3,
    /// Distance travelled since the state was created (metres).
    pub distance_travelled: f64,
}

impl DroneState {
    /// Creates a state at rest at `position`.
    pub fn at(position: Vec3) -> Self {
        DroneState {
            position,
            velocity: Vec3::ZERO,
            distance_travelled: 0.0,
        }
    }

    /// Current speed (m/s).
    pub fn speed(&self) -> f64 {
        self.velocity.norm()
    }

    /// Pose of the drone (yaw follows the velocity vector; facing +X when
    /// hovering).
    pub fn pose(&self) -> Pose {
        match Vec3::new(self.velocity.x, self.velocity.y, 0.0).try_normalize() {
            Some(dir) => Pose::new(self.position, dir.y.atan2(dir.x)),
            None => Pose::new(self.position, 0.0),
        }
    }

    /// Advances the drone towards `target` for `dt` seconds, commanding a
    /// cruise speed of `commanded_speed`, subject to the configuration's
    /// acceleration and speed limits.
    ///
    /// The drone decelerates to stop exactly at the target when it is
    /// closer than the commanded speed would overshoot. Returns the actual
    /// distance moved.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `commanded_speed < 0`.
    pub fn advance_towards(
        &mut self,
        config: &DroneConfig,
        target: Vec3,
        commanded_speed: f64,
        dt: f64,
    ) -> f64 {
        assert!(dt > 0.0, "time step must be positive, got {dt}");
        assert!(
            commanded_speed >= 0.0,
            "commanded speed must be non-negative"
        );
        let to_target = target - self.position;
        let distance = to_target.norm();
        if distance < 1e-9 {
            self.velocity = Vec3::ZERO;
            return 0.0;
        }
        let direction = to_target / distance;
        let desired_speed = commanded_speed.min(config.max_speed);
        // Velocity update limited by acceleration.
        let desired_velocity = direction * desired_speed;
        let delta_v = desired_velocity - self.velocity;
        let max_dv = config.max_acceleration * dt;
        let new_velocity = if delta_v.norm() <= max_dv {
            desired_velocity
        } else {
            self.velocity + delta_v.normalize() * max_dv
        };
        self.velocity = new_velocity;
        // Never overshoot the target within this step.
        let step = (self.velocity.norm() * dt).min(distance);
        let move_dir = match self.velocity.try_normalize() {
            Some(d) => d,
            None => direction,
        };
        self.position += move_dir * step;
        self.distance_travelled += step;
        if step >= distance - 1e-9 {
            // Arrived (or passed) — snap to target and keep velocity heading.
            self.position = target;
        }
        step
    }

    /// `true` when the drone is within `tolerance` of `target`.
    pub fn reached(&self, target: Vec3, tolerance: f64) -> bool {
        self.position.distance(target) <= tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(DroneConfig::default().validate().is_ok());
        let bad = DroneConfig {
            max_speed: 0.0,
            ..DroneConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad2 = DroneConfig {
            body_radius: -1.0,
            ..DroneConfig::default()
        };
        assert!(bad2.validate().is_err());
        let bad3 = DroneConfig {
            max_acceleration: 0.0,
            ..DroneConfig::default()
        };
        assert!(bad3.validate().is_err());
        let bad4 = DroneConfig {
            cruise_altitude: 0.0,
            ..DroneConfig::default()
        };
        assert!(bad4.validate().is_err());
    }

    #[test]
    fn starts_at_rest() {
        let s = DroneState::at(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(s.speed(), 0.0);
        assert_eq!(s.distance_travelled, 0.0);
        assert_eq!(s.pose().yaw, 0.0);
    }

    #[test]
    fn accelerates_towards_target_respecting_limits() {
        let cfg = DroneConfig::default();
        let mut s = DroneState::at(Vec3::ZERO);
        let target = Vec3::new(100.0, 0.0, 0.0);
        let moved = s.advance_towards(&cfg, target, 10.0, 1.0);
        // Speed is limited by acceleration (2.5 m/s after 1 s from rest).
        assert!(s.speed() <= cfg.max_acceleration + 1e-9);
        assert!(moved <= cfg.max_acceleration + 1e-9);
        // After enough steps the speed saturates at max_speed (commanded 10 > max 5).
        for _ in 0..10 {
            s.advance_towards(&cfg, target, 10.0, 1.0);
        }
        assert!((s.speed() - cfg.max_speed).abs() < 1e-6);
    }

    #[test]
    fn does_not_overshoot_target() {
        let cfg = DroneConfig::default();
        let mut s = DroneState::at(Vec3::ZERO);
        let target = Vec3::new(1.0, 0.0, 0.0);
        for _ in 0..20 {
            s.advance_towards(&cfg, target, 5.0, 0.5);
        }
        assert!(s.reached(target, 1e-6));
        assert!(s.position.distance(target) < 1e-6);
    }

    #[test]
    fn distance_travelled_accumulates() {
        let cfg = DroneConfig::default();
        let mut s = DroneState::at(Vec3::ZERO);
        let mut total = 0.0;
        for _ in 0..5 {
            total += s.advance_towards(&cfg, Vec3::new(50.0, 0.0, 0.0), 2.0, 1.0);
        }
        assert!((s.distance_travelled - total).abs() < 1e-9);
        assert!(total > 0.0);
    }

    #[test]
    fn pose_faces_velocity() {
        let cfg = DroneConfig::default();
        let mut s = DroneState::at(Vec3::ZERO);
        s.advance_towards(&cfg, Vec3::new(0.0, 10.0, 0.0), 2.0, 1.0);
        let yaw = s.pose().yaw;
        assert!((yaw - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn zero_distance_target_stops() {
        let cfg = DroneConfig::default();
        let mut s = DroneState::at(Vec3::new(3.0, 3.0, 3.0));
        let moved = s.advance_towards(&cfg, Vec3::new(3.0, 3.0, 3.0), 5.0, 1.0);
        assert_eq!(moved, 0.0);
        assert_eq!(s.speed(), 0.0);
    }

    #[test]
    #[should_panic(expected = "time step")]
    fn non_positive_dt_panics() {
        let cfg = DroneConfig::default();
        let mut s = DroneState::at(Vec3::ZERO);
        let _ = s.advance_towards(&cfg, Vec3::X, 1.0, 0.0);
    }
}
