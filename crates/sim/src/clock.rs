//! Simulation wall-clock bookkeeping.

use serde::{Deserialize, Serialize};

/// A monotonically increasing mission clock.
///
/// The mission runner advances the clock by each decision's end-to-end
/// latency and by the flight slices between decisions; metrics (mission
/// time, energy) integrate against it.
///
/// # Example
///
/// ```
/// use roborun_sim::SimClock;
/// let mut clock = SimClock::new();
/// clock.advance(1.5);
/// clock.advance(0.5);
/// assert_eq!(clock.now(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimClock {
    now: f64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock { now: 0.0 }
    }

    /// Current simulation time (seconds since mission start).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock by `dt` seconds and returns the new time.
    ///
    /// # Panics
    ///
    /// Panics if `dt < 0` (time never flows backwards).
    pub fn advance(&mut self, dt: f64) -> f64 {
        assert!(
            dt >= 0.0,
            "cannot advance the clock by a negative duration ({dt})"
        );
        self.now += dt;
        self.now
    }

    /// Elapsed time since an earlier reading.
    ///
    /// # Panics
    ///
    /// Panics if `since` is in the future.
    pub fn elapsed_since(&self, since: f64) -> f64 {
        assert!(
            since <= self.now + 1e-12,
            "reference time {since} is in the future (now {})",
            self.now
        );
        self.now - since
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.advance(2.5), 2.5);
        assert_eq!(c.advance(0.0), 2.5);
        assert_eq!(c.advance(1.5), 4.0);
        assert_eq!(c.now(), 4.0);
    }

    #[test]
    fn elapsed_since_earlier_reading() {
        let mut c = SimClock::new();
        c.advance(3.0);
        let mark = c.now();
        c.advance(2.0);
        assert!((c.elapsed_since(mark) - 2.0).abs() < 1e-12);
        assert_eq!(c.elapsed_since(c.now()), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_advance_panics() {
        let mut c = SimClock::new();
        c.advance(-1.0);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn future_reference_panics() {
        let c = SimClock::new();
        let _ = c.elapsed_since(10.0);
    }
}
