//! MAV energy model.
//!
//! The paper (Section V-A, citing MAVBench) observes that flight energy is
//! dominated by the propellers — hovering alone costs hundreds of watts —
//! so flight energy is highly correlated with flight time, and compute
//! energy is under 0.05% of the total. Mission-level energy is therefore
//! modelled as the integral of a velocity-dependent propulsion power over
//! the mission duration; compute's only route to saving energy is shortening
//! the mission, exactly the effect RoboRun exploits.

use serde::{Deserialize, Serialize};

/// Propulsion-dominated energy model.
///
/// `P(v) = hover_power + drag_coeff · v²` — a hover floor plus a modest
/// velocity-dependent term. The defaults are calibrated so a ~2000 s
/// mission at low speed costs roughly 1 MJ, matching the order of magnitude
/// the paper reports for the oblivious baseline (1000 kJ).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Power draw while hovering (watts).
    pub hover_power: f64,
    /// Additional power per (m/s)² of airspeed (watts·s²/m²).
    pub drag_coeff: f64,
    /// Average compute power (watts) — kept for completeness; the paper
    /// notes it is <0.05% of the total.
    pub compute_power: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            hover_power: 470.0,
            drag_coeff: 6.0,
            compute_power: 20.0,
        }
    }
}

impl EnergyModel {
    /// Instantaneous propulsion power (watts) at the given speed (m/s).
    pub fn propulsion_power(&self, speed: f64) -> f64 {
        self.hover_power + self.drag_coeff * speed * speed
    }

    /// Total power including compute (watts).
    pub fn total_power(&self, speed: f64) -> f64 {
        self.propulsion_power(speed) + self.compute_power
    }

    /// Energy (joules) spent flying at `speed` for `duration` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `duration < 0`.
    pub fn energy_for(&self, speed: f64, duration: f64) -> f64 {
        assert!(
            duration >= 0.0,
            "duration must be non-negative, got {duration}"
        );
        self.total_power(speed) * duration
    }

    /// Fraction of total power spent on compute at the given speed.
    pub fn compute_fraction(&self, speed: f64) -> f64 {
        self.compute_power / self.total_power(speed)
    }
}

/// Accumulates mission energy over variable-length intervals.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyAccumulator {
    total_joules: f64,
    total_seconds: f64,
}

impl EnergyAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an interval of `duration` seconds flown at `speed` m/s.
    pub fn add_interval(&mut self, model: &EnergyModel, speed: f64, duration: f64) {
        self.total_joules += model.energy_for(speed, duration);
        self.total_seconds += duration;
    }

    /// Total energy so far (joules).
    pub fn total_joules(&self) -> f64 {
        self.total_joules
    }

    /// Total energy so far (kilojoules) — the unit the paper reports.
    pub fn total_kilojoules(&self) -> f64 {
        self.total_joules / 1000.0
    }

    /// Total accumulated flight time (seconds).
    pub fn total_seconds(&self) -> f64 {
        self.total_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hover_dominates_at_low_speed() {
        let m = EnergyModel::default();
        let hover = m.propulsion_power(0.0);
        let slow = m.propulsion_power(0.5);
        assert!(hover > 300.0);
        assert!(
            (slow - hover) / hover < 0.01,
            "hover should dominate at low speed"
        );
    }

    #[test]
    fn power_increases_with_speed() {
        let m = EnergyModel::default();
        assert!(m.propulsion_power(5.0) > m.propulsion_power(1.0));
        assert!(m.total_power(1.0) > m.propulsion_power(1.0));
    }

    #[test]
    fn compute_is_negligible_like_the_paper_says() {
        let m = EnergyModel::default();
        // The paper says compute is < 0.05% of the MAV's energy; our default
        // compute share is intentionally small (a few percent at most).
        assert!(m.compute_fraction(0.0) < 0.05);
    }

    #[test]
    fn energy_scales_linearly_with_time() {
        let m = EnergyModel::default();
        let one = m.energy_for(2.0, 10.0);
        let two = m.energy_for(2.0, 20.0);
        assert!((two - 2.0 * one).abs() < 1e-9);
        assert_eq!(m.energy_for(2.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = EnergyModel::default().energy_for(1.0, -1.0);
    }

    #[test]
    fn baseline_mission_energy_is_paper_scale() {
        // The paper's oblivious baseline: ~2093 s at ~0.4 m/s → ~1000 kJ.
        let m = EnergyModel::default();
        let mut acc = EnergyAccumulator::new();
        acc.add_interval(&m, 0.4, 2093.0);
        let kj = acc.total_kilojoules();
        assert!(kj > 700.0 && kj < 1400.0, "baseline-scale energy {kj} kJ");
        // RoboRun-scale mission: ~465 s at ~2.5 m/s → ~257 kJ in the paper.
        let mut fast = EnergyAccumulator::new();
        fast.add_interval(&m, 2.5, 465.0);
        let fast_kj = fast.total_kilojoules();
        assert!(
            fast_kj > 150.0 && fast_kj < 400.0,
            "roborun-scale energy {fast_kj} kJ"
        );
        // The ratio should be roughly the paper's 4X.
        let ratio = kj / fast_kj;
        assert!(ratio > 3.0 && ratio < 6.0, "energy ratio {ratio}");
    }

    #[test]
    fn accumulator_tracks_time_and_energy() {
        let m = EnergyModel::default();
        let mut acc = EnergyAccumulator::new();
        acc.add_interval(&m, 1.0, 5.0);
        acc.add_interval(&m, 3.0, 2.5);
        assert!((acc.total_seconds() - 7.5).abs() < 1e-12);
        assert!(acc.total_joules() > 0.0);
        assert!((acc.total_kilojoules() * 1000.0 - acc.total_joules()).abs() < 1e-9);
    }
}
