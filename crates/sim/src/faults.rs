//! Sensor-fault injection.
//!
//! The paper's HIL evaluation assumes healthy sensing; a runtime that
//! adapts its knobs to *observed* space should nevertheless degrade
//! gracefully when sensing degrades — fog shortens visibility (which the
//! deadline equation already responds to), cameras drop frames, and depth
//! returns get noisy. This module injects those faults deterministically so
//! the robustness experiments and tests can quantify the effect: RoboRun is
//! expected to slow down (shorter deadlines, tighter knobs) but keep the
//! flight collision-free.

use roborun_geom::{SplitMix64, Vec3};
use serde::{Deserialize, Serialize};

/// Configuration of the injected sensing faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that an entire sweep of the camera rig is lost
    /// (per decision), in `[0, 1]`.
    pub sweep_dropout_probability: f64,
    /// Probability that an individual depth return is lost, in `[0, 1]`.
    pub point_dropout_probability: f64,
    /// Standard deviation of the radial noise added to each surviving depth
    /// return (metres).
    pub range_noise_std: f64,
    /// Fog: depth returns (and profiled visibility) beyond this range are
    /// discarded (metres). `f64::INFINITY` disables the cap.
    pub fog_visibility_cap: f64,
    /// Seed of the fault injector's private random stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            sweep_dropout_probability: 0.0,
            point_dropout_probability: 0.0,
            range_noise_std: 0.0,
            fog_visibility_cap: f64::INFINITY,
            seed: 0x5EED_FA17,
        }
    }
}

impl FaultConfig {
    /// No faults at all (the default).
    pub fn healthy() -> Self {
        FaultConfig::default()
    }

    /// A foggy mission: visibility capped at `cap` metres and mild range
    /// noise.
    pub fn fog(cap: f64) -> Self {
        FaultConfig {
            fog_visibility_cap: cap.max(1.0),
            range_noise_std: 0.05,
            ..FaultConfig::default()
        }
    }

    /// A flaky sensing stack: a fraction of sweeps and points are lost and
    /// depth returns carry noise.
    pub fn flaky_sensors(sweep_dropout: f64, point_dropout: f64) -> Self {
        FaultConfig {
            sweep_dropout_probability: sweep_dropout.clamp(0.0, 1.0),
            point_dropout_probability: point_dropout.clamp(0.0, 1.0),
            range_noise_std: 0.08,
            ..FaultConfig::default()
        }
    }

    /// `true` when every fault channel is disabled.
    pub fn is_healthy(&self) -> bool {
        self.sweep_dropout_probability <= 0.0
            && self.point_dropout_probability <= 0.0
            && self.range_noise_std <= 0.0
            && !self.fog_visibility_cap.is_finite()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field (probabilities
    /// outside `[0, 1]`, negative noise, non-positive fog cap).
    pub fn validate(&self) -> Result<(), String> {
        let check_p = |name: &str, p: f64| {
            if !(0.0..=1.0).contains(&p) {
                Err(format!("{name} must be in [0, 1], got {p}"))
            } else {
                Ok(())
            }
        };
        check_p("sweep_dropout_probability", self.sweep_dropout_probability)?;
        check_p("point_dropout_probability", self.point_dropout_probability)?;
        if self.range_noise_std < 0.0 {
            return Err(format!(
                "range_noise_std must be non-negative, got {}",
                self.range_noise_std
            ));
        }
        if self.fog_visibility_cap <= 0.0 {
            return Err(format!(
                "fog_visibility_cap must be positive, got {}",
                self.fog_visibility_cap
            ));
        }
        Ok(())
    }
}

/// Statistics of what the injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Sweeps processed.
    pub sweeps: u64,
    /// Sweeps dropped entirely.
    pub sweeps_dropped: u64,
    /// Individual points dropped.
    pub points_dropped: u64,
    /// Points removed by the fog range cap.
    pub points_fogged: u64,
    /// Points that received range noise.
    pub points_noised: u64,
}

/// Deterministic fault injector applied between the camera rig and the
/// point-cloud kernel.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SplitMix64,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`FaultConfig::validate`]).
    pub fn new(config: FaultConfig) -> Self {
        config.validate().expect("invalid fault configuration");
        FaultInjector {
            config,
            rng: SplitMix64::new(config.seed),
            stats: FaultStats::default(),
        }
    }

    /// The injector's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// What has been injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The visibility cap the profilers must honour (metres);
    /// `f64::INFINITY` when fog is disabled.
    pub fn visibility_cap(&self) -> f64 {
        self.config.fog_visibility_cap
    }

    /// Applies the configured faults to one sweep of depth returns measured
    /// from `origin`. Returns the surviving (possibly perturbed) points.
    pub fn corrupt_sweep(&mut self, origin: Vec3, points: &[Vec3]) -> Vec<Vec3> {
        self.stats.sweeps += 1;
        if self.config.sweep_dropout_probability > 0.0
            && self.rng.chance(self.config.sweep_dropout_probability)
        {
            self.stats.sweeps_dropped += 1;
            return Vec::new();
        }
        let mut out = Vec::with_capacity(points.len());
        for &p in points {
            if self.config.point_dropout_probability > 0.0
                && self.rng.chance(self.config.point_dropout_probability)
            {
                self.stats.points_dropped += 1;
                continue;
            }
            let offset = p - origin;
            let range = offset.norm();
            if range > self.config.fog_visibility_cap {
                self.stats.points_fogged += 1;
                continue;
            }
            let point = if self.config.range_noise_std > 0.0 && range > 1e-9 {
                self.stats.points_noised += 1;
                let noisy_range =
                    (range + self.rng.gaussian_with(0.0, self.config.range_noise_std)).max(0.05);
                origin + offset * (noisy_range / range)
            } else {
                p
            };
            out.push(point);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of_points(origin: Vec3, count: usize, range: f64) -> Vec<Vec3> {
        (0..count)
            .map(|i| {
                let angle = i as f64 / count as f64 * std::f64::consts::TAU;
                origin + Vec3::new(angle.cos() * range, angle.sin() * range, 0.0)
            })
            .collect()
    }

    #[test]
    fn healthy_injector_is_a_pass_through() {
        let mut injector = FaultInjector::new(FaultConfig::healthy());
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let points = ring_of_points(origin, 40, 12.0);
        let out = injector.corrupt_sweep(origin, &points);
        assert_eq!(out, points);
        assert!(FaultConfig::healthy().is_healthy());
        assert_eq!(injector.stats().points_dropped, 0);
    }

    #[test]
    fn fog_removes_far_points_and_keeps_near_ones() {
        let mut injector = FaultInjector::new(FaultConfig {
            fog_visibility_cap: 10.0,
            ..FaultConfig::default()
        });
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let near = ring_of_points(origin, 20, 6.0);
        let far = ring_of_points(origin, 20, 25.0);
        let mut all = near.clone();
        all.extend(far);
        let out = injector.corrupt_sweep(origin, &all);
        assert_eq!(out.len(), near.len());
        assert_eq!(injector.stats().points_fogged, 20);
        assert!(out.iter().all(|p| p.distance(origin) <= 10.0 + 1e-9));
    }

    #[test]
    fn point_dropout_removes_roughly_the_requested_fraction() {
        let mut injector = FaultInjector::new(FaultConfig {
            point_dropout_probability: 0.5,
            ..FaultConfig::default()
        });
        let origin = Vec3::ZERO;
        let points = ring_of_points(origin, 2_000, 8.0);
        let out = injector.corrupt_sweep(origin, &points);
        let kept = out.len() as f64 / points.len() as f64;
        assert!((0.4..0.6).contains(&kept), "kept fraction {kept}");
    }

    #[test]
    fn sweep_dropout_loses_entire_sweeps() {
        let mut injector = FaultInjector::new(FaultConfig {
            sweep_dropout_probability: 1.0,
            ..FaultConfig::default()
        });
        let origin = Vec3::ZERO;
        let points = ring_of_points(origin, 10, 5.0);
        assert!(injector.corrupt_sweep(origin, &points).is_empty());
        assert_eq!(injector.stats().sweeps_dropped, 1);
    }

    #[test]
    fn range_noise_perturbs_along_the_ray() {
        let mut injector = FaultInjector::new(FaultConfig {
            range_noise_std: 0.2,
            ..FaultConfig::default()
        });
        let origin = Vec3::new(1.0, 2.0, 5.0);
        let points = ring_of_points(origin, 200, 10.0);
        let out = injector.corrupt_sweep(origin, &points);
        assert_eq!(out.len(), points.len());
        let mean_range: f64 =
            out.iter().map(|p| p.distance(origin)).sum::<f64>() / out.len() as f64;
        assert!((mean_range - 10.0).abs() < 0.2, "mean range {mean_range}");
        // Direction is preserved: each noisy point stays on its original ray.
        for (noisy, original) in out.iter().zip(points.iter()) {
            let a = (*noisy - origin).normalize();
            let b = (*original - origin).normalize();
            assert!(a.dot(b) > 0.999);
        }
    }

    #[test]
    fn injection_is_deterministic_for_a_seed() {
        let config = FaultConfig::flaky_sensors(0.1, 0.3);
        let origin = Vec3::ZERO;
        let points = ring_of_points(origin, 500, 15.0);
        let a = FaultInjector::new(config).corrupt_sweep(origin, &points);
        let b = FaultInjector::new(config).corrupt_sweep(origin, &points);
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(FaultConfig {
            sweep_dropout_probability: 1.5,
            ..FaultConfig::default()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            range_noise_std: -0.1,
            ..FaultConfig::default()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            fog_visibility_cap: 0.0,
            ..FaultConfig::default()
        }
        .validate()
        .is_err());
        assert!(FaultConfig::fog(20.0).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid fault configuration")]
    fn injector_panics_on_invalid_config() {
        let _ = FaultInjector::new(FaultConfig {
            point_dropout_probability: 2.0,
            ..FaultConfig::default()
        });
    }
}
