//! Simulated compute latency of the navigation pipeline (paper Eq. 4 form).
//!
//! The paper profiles each application-layer stage over a representative
//! set of precision/volume combinations and fits
//!
//! > `δ_i(p_i, v_i) = (q_{i,0}·p̂³ + q_{i,1}·p̂² + q_{i,2}·p̂) · (q_{i,3}·v_i)`
//!
//! with `p̂ = 1/p` (inverse precision) and `<8%` average MSE. The cubic in
//! inverse precision reflects the voxel count growing with `1/p³`, and the
//! linear term in volume reflects the processed region growing linearly
//! with the volume knob.
//!
//! Our substrate cannot reproduce the authors' wall-clock numbers (their
//! kernels run on a dedicated i9 testbed), so the simulated latency of each
//! stage uses the same functional form with coefficients **calibrated so the
//! static baseline (Table II knobs) lands at paper-scale end-to-end
//! latencies (~4–5 s per decision)** and RoboRun's relaxed knobs land near
//! the paper's ~0.3–0.5 s (Section V-C: a fixed 210 ms point-cloud cost plus
//! 50 ms of runtime overhead). Who wins and by how much is therefore decided
//! by the same mechanism as the paper: the knob values the governor picks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The stages of the navigation pipeline whose latency is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineStage {
    /// Point-cloud generation from camera frames (fixed cost in the paper).
    PointCloud,
    /// Perception: OctoMap insertion / occupancy-map update (`i = 0`).
    Perception,
    /// Perception-to-planning hand-off: map pruning and export (`i = 1`).
    PerceptionToPlanning,
    /// Planning: piece-wise planning + path smoothing (`i = 2`).
    Planning,
    /// Control loop (PID) — cheap and constant.
    Control,
}

impl PipelineStage {
    /// The three governor-controlled stages, in paper order (`i = 0, 1, 2`).
    pub const GOVERNED: [PipelineStage; 3] = [
        PipelineStage::Perception,
        PipelineStage::PerceptionToPlanning,
        PipelineStage::Planning,
    ];
}

impl fmt::Display for PipelineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PipelineStage::PointCloud => "point cloud",
            PipelineStage::Perception => "octomap",
            PipelineStage::PerceptionToPlanning => "octomap-to-planner",
            PipelineStage::Planning => "planning",
            PipelineStage::Control => "control",
        };
        f.write_str(s)
    }
}

/// Coefficient vector `q ∈ R⁴` of one stage's latency model (paper Eq. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCoefficients {
    /// Coefficient of `p̂³` (seconds).
    pub q0: f64,
    /// Coefficient of `p̂²` (seconds).
    pub q1: f64,
    /// Coefficient of `p̂` (seconds).
    pub q2: f64,
    /// Volume scale factor (per cubic metre).
    pub q3: f64,
}

impl StageCoefficients {
    /// Evaluates Eq. 4 for a precision `p` (metres) and volume `v` (m³).
    ///
    /// # Panics
    ///
    /// Panics if `precision <= 0` or `volume < 0`.
    pub fn latency(&self, precision: f64, volume: f64) -> f64 {
        assert!(
            precision > 0.0,
            "precision must be positive, got {precision}"
        );
        assert!(volume >= 0.0, "volume must be non-negative, got {volume}");
        let p_hat = 1.0 / precision;
        let precision_term = self.q0 * p_hat.powi(3) + self.q1 * p_hat.powi(2) + self.q2 * p_hat;
        (precision_term * (self.q3 * volume)).max(0.0)
    }
}

/// End-to-end latency breakdown of one navigation decision.
///
/// Mirrors the stages of the paper's Fig. 11: computation stages in "shades
/// of red" (point cloud, OctoMap, planning, smoothing — here folded into
/// planning — and control) and communication in "shades of blue", plus
/// RoboRun's own runtime overhead.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Point-cloud kernel latency (seconds).
    pub point_cloud: f64,
    /// OctoMap / occupancy-map update latency (seconds).
    pub perception: f64,
    /// Map pruning/export to the planner (seconds).
    pub perception_to_planning: f64,
    /// Piece-wise planning + smoothing latency (seconds).
    pub planning: f64,
    /// Control-loop latency (seconds).
    pub control: f64,
    /// Inter-stage communication latency (seconds).
    pub communication: f64,
    /// RoboRun runtime overhead: profilers + governor + solver (seconds).
    pub runtime_overhead: f64,
}

impl LatencyBreakdown {
    /// Total end-to-end decision latency (seconds).
    pub fn total(&self) -> f64 {
        self.point_cloud
            + self.perception
            + self.perception_to_planning
            + self.planning
            + self.control
            + self.communication
            + self.runtime_overhead
    }

    /// Total compute-only latency (excludes communication).
    pub fn compute_total(&self) -> f64 {
        self.total() - self.communication
    }

    /// Critical-path latency when `masked_planning` seconds of the planning
    /// stage were hidden behind the previous decision's execution window
    /// (plan-ahead overlap). The masked amount is clamped to the planning
    /// stage itself — no other stage can be masked, and overlapped work can
    /// never "earn back" more time than the stage costs. With zero masked
    /// latency this is exactly [`LatencyBreakdown::total`].
    pub fn critical_path(&self, masked_planning: f64) -> f64 {
        self.total() - masked_planning.clamp(0.0, self.planning)
    }

    /// Per-stage `(label, seconds)` pairs in pipeline order, for reports.
    pub fn stages(&self) -> [(&'static str, f64); 7] {
        [
            ("point_cloud", self.point_cloud),
            ("octomap", self.perception),
            ("octomap_to_planner", self.perception_to_planning),
            ("planning", self.planning),
            ("control", self.control),
            ("communication", self.communication),
            ("runtime", self.runtime_overhead),
        ]
    }

    /// Normalised per-stage shares of the total (all zeros for a zero
    /// total), for Fig. 11b-style plots.
    pub fn normalized(&self) -> [(&'static str, f64); 7] {
        let total = self.total();
        let mut out = self.stages();
        if total > 0.0 {
            for entry in &mut out {
                entry.1 /= total;
            }
        }
        out
    }
}

/// Calibrated latency model of the whole pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeLatencyModel {
    /// Fixed point-cloud kernel cost (seconds) — 210 ms in the paper.
    pub point_cloud_fixed: f64,
    /// Fixed RoboRun runtime overhead (seconds) — 50 ms in the paper.
    pub runtime_overhead: f64,
    /// Fixed control-loop cost (seconds).
    pub control_fixed: f64,
    /// Fixed communication cost per decision (seconds).
    pub comm_base: f64,
    /// Additional communication cost per cubic metre of map volume shipped
    /// from perception to planning (seconds per m³).
    pub comm_per_volume: f64,
    /// Perception (OctoMap) stage coefficients.
    pub perception: StageCoefficients,
    /// Perception-to-planning stage coefficients.
    pub perception_to_planning: StageCoefficients,
    /// Planning stage coefficients.
    pub planning: StageCoefficients,
}

impl ComputeLatencyModel {
    /// The calibrated default described in the module documentation.
    pub fn calibrated() -> Self {
        ComputeLatencyModel {
            point_cloud_fixed: 0.210,
            runtime_overhead: 0.050,
            control_fixed: 0.010,
            comm_base: 0.080,
            comm_per_volume: 1.0e-6,
            // Baseline knobs (p = 0.3 m, v = 46 000 m³) → ≈1.9 s.
            perception: StageCoefficients {
                q0: 0.040,
                q1: 0.010,
                q2: 0.005,
                q3: 2.6e-5,
            },
            // Baseline knobs (p = 0.3 m, v = 150 000 m³) → ≈0.8 s.
            perception_to_planning: StageCoefficients {
                q0: 0.040,
                q1: 0.010,
                q2: 0.005,
                q3: 3.3e-6,
            },
            // Baseline knobs (p = 0.3 m, v = 150 000 m³) → ≈1.5 s.
            planning: StageCoefficients {
                q0: 0.040,
                q1: 0.010,
                q2: 0.005,
                q3: 6.2e-6,
            },
        }
    }

    /// Coefficients of a governed stage.
    ///
    /// # Panics
    ///
    /// Panics for [`PipelineStage::PointCloud`] / [`PipelineStage::Control`],
    /// which are fixed-cost stages without Eq. 4 coefficients.
    pub fn coefficients(&self, stage: PipelineStage) -> StageCoefficients {
        match stage {
            PipelineStage::Perception => self.perception,
            PipelineStage::PerceptionToPlanning => self.perception_to_planning,
            PipelineStage::Planning => self.planning,
            PipelineStage::PointCloud | PipelineStage::Control => {
                panic!("{stage} is a fixed-cost stage with no Eq. 4 coefficients")
            }
        }
    }

    /// Latency of a single stage at the given precision/volume setting.
    ///
    /// Fixed-cost stages ignore the knob values.
    pub fn stage_latency(&self, stage: PipelineStage, precision: f64, volume: f64) -> f64 {
        match stage {
            PipelineStage::PointCloud => self.point_cloud_fixed,
            PipelineStage::Control => self.control_fixed,
            _ => self.coefficients(stage).latency(precision, volume),
        }
    }

    /// Communication latency for shipping `exported_volume` m³ of map to
    /// the planner.
    pub fn communication_latency(&self, exported_volume: f64) -> f64 {
        self.comm_base + self.comm_per_volume * exported_volume.max(0.0)
    }

    /// Full decision breakdown for a knob assignment.
    ///
    /// * `perception_precision` / `perception_volume` — OctoMap knobs.
    /// * `export_precision` / `export_volume` — perception-to-planning knobs.
    /// * `planner_precision` / `planner_volume` — planner knobs.
    /// * `with_runtime` — include RoboRun's own overhead (false for the
    ///   spatial-oblivious baseline, which has no governor).
    #[allow(clippy::too_many_arguments)]
    pub fn decision_breakdown(
        &self,
        perception_precision: f64,
        perception_volume: f64,
        export_precision: f64,
        export_volume: f64,
        planner_precision: f64,
        planner_volume: f64,
        with_runtime: bool,
    ) -> LatencyBreakdown {
        LatencyBreakdown {
            point_cloud: self.point_cloud_fixed,
            perception: self
                .perception
                .latency(perception_precision, perception_volume),
            perception_to_planning: self
                .perception_to_planning
                .latency(export_precision, export_volume),
            planning: self.planning.latency(planner_precision, planner_volume),
            control: self.control_fixed,
            communication: self.communication_latency(export_volume),
            runtime_overhead: if with_runtime {
                self.runtime_overhead
            } else {
                0.0
            },
        }
    }
}

impl Default for ComputeLatencyModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE_PRECISION: f64 = 0.3;
    const BASELINE_PERCEPTION_VOL: f64 = 46_000.0;
    const BASELINE_EXPORT_VOL: f64 = 150_000.0;
    const BASELINE_PLANNER_VOL: f64 = 150_000.0;

    #[test]
    fn latency_grows_with_volume_linearly() {
        // Paper Fig. 2a: "a 2X increase in volume requires processing twice
        // as many voxels and hence a 2X increase in latency".
        let m = ComputeLatencyModel::calibrated();
        let base = m.stage_latency(PipelineStage::Perception, 0.3, 10_000.0);
        let double = m.stage_latency(PipelineStage::Perception, 0.3, 20_000.0);
        assert!((double / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_grows_cubically_with_precision() {
        // Paper Fig. 2a: 2X the precision (half the voxel size) → 8X voxels
        // → up to an 8X increase in latency. The cubic term dominates at
        // fine precisions.
        let m = ComputeLatencyModel::calibrated();
        let coarse = m.stage_latency(PipelineStage::Perception, 0.6, 46_000.0);
        let fine = m.stage_latency(PipelineStage::Perception, 0.3, 46_000.0);
        let ratio = fine / coarse;
        assert!(
            ratio > 5.0 && ratio < 8.5,
            "precision doubling ratio {ratio}"
        );
    }

    #[test]
    fn baseline_knobs_land_at_paper_scale() {
        let m = ComputeLatencyModel::calibrated();
        let b = m.decision_breakdown(
            BASELINE_PRECISION,
            BASELINE_PERCEPTION_VOL,
            BASELINE_PRECISION,
            BASELINE_EXPORT_VOL,
            BASELINE_PRECISION,
            BASELINE_PLANNER_VOL,
            false,
        );
        let total = b.total();
        assert!(total > 3.0 && total < 6.5, "baseline total {total}");
        assert!((b.point_cloud - 0.210).abs() < 1e-12);
        assert_eq!(b.runtime_overhead, 0.0);
        assert!(b.perception > b.perception_to_planning);
    }

    #[test]
    fn relaxed_knobs_are_an_order_of_magnitude_cheaper() {
        let m = ComputeLatencyModel::calibrated();
        let baseline = m
            .decision_breakdown(
                BASELINE_PRECISION,
                BASELINE_PERCEPTION_VOL,
                BASELINE_PRECISION,
                BASELINE_EXPORT_VOL,
                BASELINE_PRECISION,
                BASELINE_PLANNER_VOL,
                false,
            )
            .total();
        // Open-sky knobs the governor would pick in zone B.
        let relaxed = m
            .decision_breakdown(9.6, 5_000.0, 9.6, 10_000.0, 9.6, 10_000.0, true)
            .total();
        let ratio = baseline / relaxed;
        assert!(ratio > 8.0, "median-latency-style reduction {ratio}");
        // Relaxed decisions are dominated by the fixed point-cloud cost,
        // mirroring Fig. 11b's zone-B bottleneck shift.
        let relaxed_bd = m.decision_breakdown(9.6, 5_000.0, 9.6, 10_000.0, 9.6, 10_000.0, true);
        assert!(relaxed_bd.point_cloud > relaxed_bd.perception);
        assert!(relaxed_bd.point_cloud > relaxed_bd.planning);
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let m = ComputeLatencyModel::calibrated();
        let b = m.decision_breakdown(0.6, 20_000.0, 1.2, 50_000.0, 1.2, 80_000.0, true);
        let sum: f64 = b.stages().iter().map(|(_, v)| v).sum();
        assert!((sum - b.total()).abs() < 1e-12);
        assert!((b.compute_total() + b.communication - b.total()).abs() < 1e-12);
        let norm = b.normalized();
        let norm_sum: f64 = norm.iter().map(|(_, v)| v).sum();
        assert!((norm_sum - 1.0).abs() < 1e-9);
        // Zero breakdown normalises to zeros without dividing by zero.
        let zero = LatencyBreakdown::default();
        assert!(zero.normalized().iter().all(|&(_, v)| v == 0.0));
    }

    #[test]
    fn critical_path_masks_only_the_planning_stage() {
        let m = ComputeLatencyModel::calibrated();
        let b = m.decision_breakdown(0.6, 20_000.0, 1.2, 50_000.0, 1.2, 80_000.0, true);
        // Zero masked latency is bit-identical to the plain total.
        assert_eq!(b.critical_path(0.0).to_bits(), b.total().to_bits());
        let half = b.planning * 0.5;
        assert!((b.critical_path(half) - (b.total() - half)).abs() < 1e-12);
        // Masking clamps at the planning stage cost and at zero.
        assert!((b.critical_path(1e9) - (b.total() - b.planning)).abs() < 1e-12);
        assert_eq!(b.critical_path(-1.0).to_bits(), b.total().to_bits());
    }

    #[test]
    fn communication_scales_with_exported_volume() {
        let m = ComputeLatencyModel::calibrated();
        let small = m.communication_latency(10_000.0);
        let large = m.communication_latency(500_000.0);
        assert!(large > small);
        assert!(small >= m.comm_base);
        assert_eq!(m.communication_latency(-5.0), m.comm_base);
    }

    #[test]
    fn governed_stage_list_matches_paper_indices() {
        assert_eq!(PipelineStage::GOVERNED.len(), 3);
        assert_eq!(PipelineStage::GOVERNED[0], PipelineStage::Perception);
        assert_eq!(PipelineStage::GOVERNED[2], PipelineStage::Planning);
        assert_eq!(format!("{}", PipelineStage::Perception), "octomap");
    }

    #[test]
    #[should_panic(expected = "fixed-cost stage")]
    fn fixed_stage_has_no_coefficients() {
        let _ = ComputeLatencyModel::calibrated().coefficients(PipelineStage::PointCloud);
    }

    #[test]
    #[should_panic(expected = "precision must be positive")]
    fn zero_precision_panics() {
        let _ = ComputeLatencyModel::calibrated().stage_latency(PipelineStage::Planning, 0.0, 10.0);
    }
}
