//! Simulated depth cameras and the six-camera rig.
//!
//! The paper's MAV carries "6 cameras, an IMU, and a GPS"; the perception
//! stage converts camera pixels into 3-D points (the *Point cloud* kernel).
//! Here each camera is a pinhole depth sensor realised by ray casting into
//! the ground-truth obstacle field: each pixel ray either hits an obstacle
//! (producing a point) or reports free space up to the maximum range.

use roborun_env::ObstacleField;
use roborun_geom::{Pose, Ray, Vec3};
use serde::{Deserialize, Serialize};

/// A single simulated depth camera.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepthCamera {
    /// Yaw of the camera's optical axis relative to the drone body (radians).
    pub mount_yaw: f64,
    /// Pitch of the camera's optical axis relative to horizontal
    /// (radians; negative tilts the camera down). Zero for the classic
    /// horizontal-band rig.
    pub mount_pitch: f64,
    /// Horizontal field of view (radians).
    pub h_fov: f64,
    /// Vertical field of view (radians).
    pub v_fov: f64,
    /// Horizontal resolution (rays).
    pub h_res: usize,
    /// Vertical resolution (rays).
    pub v_res: usize,
    /// Maximum sensing range (metres).
    pub max_range: f64,
}

impl DepthCamera {
    /// Creates a camera with the given mount yaw and otherwise default
    /// intrinsics (60°×45° FOV, 16×8 rays, 40 m range).
    pub fn mounted_at(mount_yaw: f64) -> Self {
        DepthCamera {
            mount_yaw,
            mount_pitch: 0.0,
            h_fov: 60f64.to_radians(),
            v_fov: 45f64.to_radians(),
            h_res: 16,
            v_res: 8,
            max_range: 40.0,
        }
    }

    /// Number of rays this camera casts per frame.
    pub fn ray_count(&self) -> usize {
        self.h_res * self.v_res
    }

    /// Captures one depth frame from `pose` into `field`, appending hit
    /// points to `hits` and returning the number of rays that hit an
    /// obstacle within range.
    pub fn capture_into(&self, field: &ObstacleField, pose: &Pose, hits: &mut Vec<Vec3>) -> usize {
        let mut hit_count = 0;
        for iy in 0..self.v_res {
            for ix in 0..self.h_res {
                let fx = if self.h_res == 1 {
                    0.0
                } else {
                    ix as f64 / (self.h_res - 1) as f64 - 0.5
                };
                let fy = if self.v_res == 1 {
                    0.0
                } else {
                    iy as f64 / (self.v_res - 1) as f64 - 0.5
                };
                let yaw = pose.yaw + self.mount_yaw + fx * self.h_fov;
                let pitch = self.mount_pitch + fy * self.v_fov;
                let dir = Vec3::new(
                    yaw.cos() * pitch.cos(),
                    yaw.sin() * pitch.cos(),
                    pitch.sin(),
                );
                let ray = Ray::new(pose.position, dir);
                if let Some(hit) = field.raycast(&ray, self.max_range) {
                    hits.push(hit.point);
                    hit_count += 1;
                }
            }
        }
        hit_count
    }
}

/// One full sweep of the camera rig.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepthScan {
    /// World-frame points where rays hit obstacles.
    pub points: Vec<Vec3>,
    /// Total number of rays cast across the rig.
    pub rays_cast: usize,
    /// Pose the scan was captured from.
    pub pose: Pose,
    /// Maximum sensing range of the rig's cameras (metres).
    pub max_range: f64,
}

impl DepthScan {
    /// Fraction of rays that hit an obstacle (a cheap congestion proxy).
    pub fn hit_fraction(&self) -> f64 {
        if self.rays_cast == 0 {
            0.0
        } else {
            self.points.len() as f64 / self.rays_cast as f64
        }
    }
}

/// The MAV's camera rig: several depth cameras mounted around the airframe.
///
/// # Example
///
/// ```
/// use roborun_sim::CameraRig;
/// let rig = CameraRig::hexa_rig();
/// assert_eq!(rig.cameras().len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraRig {
    cameras: Vec<DepthCamera>,
}

impl CameraRig {
    /// The paper's six-camera rig covering the full 360° horizontal FOV.
    pub fn hexa_rig() -> Self {
        let cameras = (0..6)
            .map(|i| DepthCamera::mounted_at(i as f64 * std::f64::consts::TAU / 6.0))
            .collect();
        CameraRig { cameras }
    }

    /// A single forward-facing camera (useful for cheap tests).
    pub fn mono_rig() -> Self {
        CameraRig {
            cameras: vec![DepthCamera::mounted_at(0.0)],
        }
    }

    /// Creates a rig from explicit cameras.
    ///
    /// # Panics
    ///
    /// Panics if `cameras` is empty.
    pub fn new(cameras: Vec<DepthCamera>) -> Self {
        assert!(
            !cameras.is_empty(),
            "a camera rig needs at least one camera"
        );
        CameraRig { cameras }
    }

    /// The cameras in the rig.
    pub fn cameras(&self) -> &[DepthCamera] {
        &self.cameras
    }

    /// Total rays cast per sweep.
    pub fn rays_per_sweep(&self) -> usize {
        self.cameras.iter().map(|c| c.ray_count()).sum()
    }

    /// Maximum sensing range across the rig.
    pub fn max_range(&self) -> f64 {
        self.cameras.iter().map(|c| c.max_range).fold(0.0, f64::max)
    }

    /// Captures a full sweep from the given pose.
    ///
    /// Only obstacles within the rig's sensing range can produce returns,
    /// so the field is pre-filtered to that neighbourhood before the
    /// per-ray casts — the mission corridor holds hundreds of obstacles but
    /// only the local cluster is ever visible.
    pub fn capture(&self, field: &ObstacleField, pose: &Pose) -> DepthScan {
        let local = field.subfield_within(pose.position, self.max_range() + 1.0);
        let mut points = Vec::new();
        for cam in &self.cameras {
            cam.capture_into(&local, pose, &mut points);
        }
        DepthScan {
            points,
            rays_cast: self.rays_per_sweep(),
            pose: *pose,
            max_range: self.max_range(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_env::Obstacle;
    use roborun_geom::Aabb;

    fn wall_field() -> ObstacleField {
        ObstacleField::new(vec![Obstacle::new(
            0,
            Aabb::new(Vec3::new(10.0, -30.0, 0.0), Vec3::new(11.0, 30.0, 20.0)),
        )])
    }

    #[test]
    fn hexa_rig_covers_six_directions() {
        let rig = CameraRig::hexa_rig();
        assert_eq!(rig.cameras().len(), 6);
        assert!(rig.rays_per_sweep() >= 6 * 16 * 8);
        assert!(rig.max_range() > 0.0);
    }

    #[test]
    fn empty_world_produces_no_points() {
        let rig = CameraRig::hexa_rig();
        let scan = rig.capture(
            &ObstacleField::empty(),
            &Pose::new(Vec3::new(0.0, 0.0, 5.0), 0.0),
        );
        assert!(scan.points.is_empty());
        assert_eq!(scan.hit_fraction(), 0.0);
        assert_eq!(scan.rays_cast, rig.rays_per_sweep());
    }

    #[test]
    fn forward_camera_sees_wall() {
        let rig = CameraRig::mono_rig();
        let field = wall_field();
        let scan = rig.capture(&field, &Pose::new(Vec3::new(0.0, 0.0, 5.0), 0.0));
        assert!(!scan.points.is_empty());
        assert!(scan.hit_fraction() > 0.0);
        // All points lie on the wall's front face (x ≈ 10) within range.
        for p in &scan.points {
            assert!(p.x >= 9.9 && p.x <= 11.1, "unexpected hit {p:?}");
        }
    }

    #[test]
    fn camera_facing_away_sees_nothing() {
        let rig = CameraRig::mono_rig();
        let field = wall_field();
        let scan = rig.capture(
            &field,
            &Pose::new(Vec3::new(0.0, 0.0, 5.0), std::f64::consts::PI),
        );
        assert!(scan.points.is_empty());
    }

    #[test]
    fn hexa_rig_sees_wall_regardless_of_yaw() {
        let rig = CameraRig::hexa_rig();
        let field = wall_field();
        for yaw_deg in [0.0, 45.0, 123.0, 270.0] {
            let yaw = f64::to_radians(yaw_deg);
            let scan = rig.capture(&field, &Pose::new(Vec3::new(0.0, 0.0, 5.0), yaw));
            assert!(!scan.points.is_empty(), "no hits at yaw {yaw_deg}");
        }
    }

    #[test]
    fn out_of_range_wall_is_invisible() {
        let rig = CameraRig::mono_rig();
        let field = ObstacleField::new(vec![Obstacle::new(
            0,
            Aabb::new(Vec3::new(100.0, -30.0, 0.0), Vec3::new(101.0, 30.0, 20.0)),
        )]);
        let scan = rig.capture(&field, &Pose::new(Vec3::new(0.0, 0.0, 5.0), 0.0));
        assert!(scan.points.is_empty());
    }

    #[test]
    fn ray_counts() {
        let cam = DepthCamera::mounted_at(0.0);
        assert_eq!(cam.ray_count(), 16 * 8);
        let rig = CameraRig::new(vec![cam]);
        assert_eq!(rig.rays_per_sweep(), cam.ray_count());
    }

    #[test]
    #[should_panic(expected = "at least one camera")]
    fn empty_rig_panics() {
        let _ = CameraRig::new(vec![]);
    }
}
