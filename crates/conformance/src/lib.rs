//! Shared conformance-test harness for the exact-equivalence suites.
//!
//! Every spatial accelerator in the workspace (grid indexes, ring
//! searches, DDA walks, incremental caches) is specified to return *the
//! same result* as a retained linear or from-scratch reference. The
//! per-crate proptests enforce that on random inputs; this crate supplies
//! the *adversarial* inputs random sampling is unlikely to produce —
//! empty worlds, single voxels, dense uniform lattices, tight clusters and
//! points placed exactly on voxel/margin boundaries — so each suite can
//! sweep the same pathological shapes without copy-pasting generators.
//!
//! The generators only depend on `roborun-geom`: consumers wrap the raw
//! point sets into their own structures (point clouds, obstacle fields,
//! occupancy maps).
//!
//! # Example
//!
//! ```
//! use roborun_conformance::{adversarial_point_sets, boundary_probes};
//!
//! for scenario in adversarial_point_sets(7, 1.0) {
//!     for probe in boundary_probes(7, 1.0) {
//!         // index the scenario's points, query at `probe`, compare
//!         // against the linear reference ...
//!         let _ = (scenario.name, scenario.points.len(), probe);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use roborun_geom::{Aabb, SplitMix64, Vec3};

/// One named adversarial point-set scenario.
#[derive(Debug, Clone)]
pub struct PointScenario {
    /// Short scenario label, included in assertion messages.
    pub name: &'static str,
    /// The scenario's points.
    pub points: Vec<Vec3>,
}

/// The adversarial point-set family, parameterised by a seed and the cell
/// size of the structure under test (so boundary cases land exactly on
/// that structure's voxel faces).
///
/// Scenarios:
///
/// * **empty** — no points: every query must agree on "nothing found".
/// * **single-voxel** — several points inside one cell: degenerate key
///   bounds, ring searches start and end on one ring.
/// * **dense-uniform** — a full lattice at half-cell pitch: every ring is
///   populated, pruning must still terminate on the first ring.
/// * **clustered** — a few tight clusters separated by wide gaps: the
///   start-ring skip and the budgeted fallback both trigger.
/// * **margin-boundary** — points placed exactly on voxel corners, faces
///   and at exact margin offsets: distance ties and `<=` predicates must
///   break identically to the linear reference.
pub fn adversarial_point_sets(seed: u64, cell: f64) -> Vec<PointScenario> {
    let mut rng = SplitMix64::new(seed);
    let mut scenarios = Vec::new();

    scenarios.push(PointScenario {
        name: "empty",
        points: Vec::new(),
    });

    let anchor = Vec3::new(
        rng.uniform(-20.0, 20.0),
        rng.uniform(-20.0, 20.0),
        rng.uniform(0.0, 10.0),
    );
    scenarios.push(PointScenario {
        name: "single-voxel",
        points: (0..5)
            .map(|_| {
                anchor
                    + Vec3::new(
                        rng.uniform(0.0, cell * 0.49),
                        rng.uniform(0.0, cell * 0.49),
                        rng.uniform(0.0, cell * 0.49),
                    )
            })
            .collect(),
    });

    let mut dense = Vec::new();
    for ix in -4..=4 {
        for iy in -4..=4 {
            for iz in 0..=4 {
                dense.push(Vec3::new(
                    ix as f64 * cell * 0.5,
                    iy as f64 * cell * 0.5,
                    iz as f64 * cell * 0.5 + 2.0,
                ));
            }
        }
    }
    scenarios.push(PointScenario {
        name: "dense-uniform",
        points: dense,
    });

    let mut clustered = Vec::new();
    for _ in 0..4 {
        let center = Vec3::new(
            rng.uniform(-40.0, 40.0),
            rng.uniform(-40.0, 40.0),
            rng.uniform(0.0, 12.0),
        );
        for _ in 0..8 {
            clustered.push(
                center
                    + Vec3::new(
                        rng.uniform(-cell, cell),
                        rng.uniform(-cell, cell),
                        rng.uniform(-cell, cell),
                    ),
            );
        }
    }
    scenarios.push(PointScenario {
        name: "clustered",
        points: clustered,
    });

    // Exact voxel-face / corner / margin-offset placements. These sit on
    // the discontinuities of `VoxelKey::from_point` and of `<=` distance
    // predicates, where an accelerator that rounds differently from its
    // reference would diverge.
    let mut boundary = Vec::new();
    for i in -2i64..=2 {
        let face = i as f64 * cell;
        boundary.push(Vec3::new(face, 0.25 * cell, 5.0));
        boundary.push(Vec3::new(face, face, 5.0));
        boundary.push(Vec3::new(face, face, face + 4.0 * cell));
    }
    scenarios.push(PointScenario {
        name: "margin-boundary",
        points: boundary,
    });

    scenarios
}

/// Probe points that stress the same discontinuities as the
/// `margin-boundary` scenario: queries exactly on voxel faces and corners,
/// mid-cell, far outside the populated region, plus a few random ones.
pub fn boundary_probes(seed: u64, cell: f64) -> Vec<Vec3> {
    let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9);
    let mut probes = vec![
        Vec3::ZERO,
        Vec3::new(cell, 0.0, 0.0),
        Vec3::new(-cell, -cell, -cell),
        Vec3::new(0.5 * cell, 0.5 * cell, 0.5 * cell),
        Vec3::new(2.0 * cell, 2.0 * cell, 2.0 * cell),
        Vec3::new(500.0, -500.0, 120.0),
    ];
    for _ in 0..10 {
        probes.push(Vec3::new(
            rng.uniform(-60.0, 60.0),
            rng.uniform(-60.0, 60.0),
            rng.uniform(-10.0, 20.0),
        ));
    }
    probes
}

/// Axis-aligned boxes mirroring [`adversarial_point_sets`] for structures
/// indexed over volumes (the obstacle broad-phase, the collision checker):
/// each point becomes a box, with half-extents that tile cleanly into the
/// grid in the boundary scenario (so inflated bounds land on cell faces).
pub fn adversarial_box_sets(seed: u64, cell: f64) -> Vec<(&'static str, Vec<Aabb>)> {
    let mut rng = SplitMix64::new(seed ^ 0x5851_f42d);
    adversarial_point_sets(seed, cell)
        .into_iter()
        .map(|scenario| {
            let half = if scenario.name == "margin-boundary" {
                // Boxes whose faces land exactly on grid planes.
                Vec3::splat(cell * 0.5)
            } else {
                Vec3::new(
                    rng.uniform(0.2, 1.5),
                    rng.uniform(0.2, 1.5),
                    rng.uniform(0.2, 1.5),
                )
            };
            let boxes = scenario
                .points
                .iter()
                .map(|&c| Aabb::from_center_half_extents(c, half))
                .collect();
            (scenario.name, boxes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_family_is_complete_and_deterministic() {
        let a = adversarial_point_sets(3, 0.5);
        let b = adversarial_point_sets(3, 0.5);
        let names: Vec<_> = a.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "empty",
                "single-voxel",
                "dense-uniform",
                "clustered",
                "margin-boundary"
            ]
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.points, y.points, "{} not deterministic", x.name);
        }
        assert!(a[0].points.is_empty());
        assert!(a.iter().skip(1).all(|s| !s.points.is_empty()));
    }

    #[test]
    fn boundary_points_sit_on_voxel_faces() {
        let cell = 0.7;
        let sets = adversarial_point_sets(9, cell);
        let boundary = &sets.last().unwrap().points;
        assert!(boundary
            .iter()
            .any(|p| (p.x / cell).fract().abs() < 1e-12 && p.x != 0.0));
    }

    #[test]
    fn box_sets_mirror_point_scenarios() {
        let boxes = adversarial_box_sets(3, 0.5);
        assert_eq!(boxes.len(), 5);
        assert!(boxes[0].1.is_empty());
        assert!(!boxes[2].1.is_empty());
    }

    #[test]
    fn probes_include_exact_faces() {
        let probes = boundary_probes(1, 1.0);
        assert!(probes.contains(&Vec3::new(1.0, 0.0, 0.0)));
        assert!(probes.len() > 10);
    }
}
