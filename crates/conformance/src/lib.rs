//! Shared conformance-test harness for the exact-equivalence suites.
//!
//! Every spatial accelerator in the workspace (grid indexes, ring
//! searches, DDA walks, incremental caches) is specified to return *the
//! same result* as a retained linear or from-scratch reference. The
//! per-crate proptests enforce that on random inputs; this crate supplies
//! the *adversarial* inputs random sampling is unlikely to produce —
//! empty worlds, single voxels, dense uniform lattices, tight clusters and
//! points placed exactly on voxel/margin boundaries — so each suite can
//! sweep the same pathological shapes without copy-pasting generators.
//!
//! The generators only depend on `roborun-geom`: consumers wrap the raw
//! point sets into their own structures (point clouds, obstacle fields,
//! occupancy maps).
//!
//! # Example
//!
//! ```
//! use roborun_conformance::{adversarial_point_sets, boundary_probes};
//!
//! for scenario in adversarial_point_sets(7, 1.0) {
//!     for probe in boundary_probes(7, 1.0) {
//!         // index the scenario's points, query at `probe`, compare
//!         // against the linear reference ...
//!         let _ = (scenario.name, scenario.points.len(), probe);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use roborun_geom::{Aabb, SplitMix64, Vec3};

/// One named adversarial point-set scenario.
#[derive(Debug, Clone)]
pub struct PointScenario {
    /// Short scenario label, included in assertion messages.
    pub name: &'static str,
    /// The scenario's points.
    pub points: Vec<Vec3>,
}

/// The adversarial point-set family, parameterised by a seed and the cell
/// size of the structure under test (so boundary cases land exactly on
/// that structure's voxel faces).
///
/// Scenarios:
///
/// * **empty** — no points: every query must agree on "nothing found".
/// * **single-voxel** — several points inside one cell: degenerate key
///   bounds, ring searches start and end on one ring.
/// * **dense-uniform** — a full lattice at half-cell pitch: every ring is
///   populated, pruning must still terminate on the first ring.
/// * **clustered** — a few tight clusters separated by wide gaps: the
///   start-ring skip and the budgeted fallback both trigger.
/// * **margin-boundary** — points placed exactly on voxel corners, faces
///   and at exact margin offsets: distance ties and `<=` predicates must
///   break identically to the linear reference.
pub fn adversarial_point_sets(seed: u64, cell: f64) -> Vec<PointScenario> {
    let mut rng = SplitMix64::new(seed);
    let mut scenarios = Vec::new();

    scenarios.push(PointScenario {
        name: "empty",
        points: Vec::new(),
    });

    let anchor = Vec3::new(
        rng.uniform(-20.0, 20.0),
        rng.uniform(-20.0, 20.0),
        rng.uniform(0.0, 10.0),
    );
    scenarios.push(PointScenario {
        name: "single-voxel",
        points: (0..5)
            .map(|_| {
                anchor
                    + Vec3::new(
                        rng.uniform(0.0, cell * 0.49),
                        rng.uniform(0.0, cell * 0.49),
                        rng.uniform(0.0, cell * 0.49),
                    )
            })
            .collect(),
    });

    let mut dense = Vec::new();
    for ix in -4..=4 {
        for iy in -4..=4 {
            for iz in 0..=4 {
                dense.push(Vec3::new(
                    ix as f64 * cell * 0.5,
                    iy as f64 * cell * 0.5,
                    iz as f64 * cell * 0.5 + 2.0,
                ));
            }
        }
    }
    scenarios.push(PointScenario {
        name: "dense-uniform",
        points: dense,
    });

    let mut clustered = Vec::new();
    for _ in 0..4 {
        let center = Vec3::new(
            rng.uniform(-40.0, 40.0),
            rng.uniform(-40.0, 40.0),
            rng.uniform(0.0, 12.0),
        );
        for _ in 0..8 {
            clustered.push(
                center
                    + Vec3::new(
                        rng.uniform(-cell, cell),
                        rng.uniform(-cell, cell),
                        rng.uniform(-cell, cell),
                    ),
            );
        }
    }
    scenarios.push(PointScenario {
        name: "clustered",
        points: clustered,
    });

    // Exact voxel-face / corner / margin-offset placements. These sit on
    // the discontinuities of `VoxelKey::from_point` and of `<=` distance
    // predicates, where an accelerator that rounds differently from its
    // reference would diverge.
    let mut boundary = Vec::new();
    for i in -2i64..=2 {
        let face = i as f64 * cell;
        boundary.push(Vec3::new(face, 0.25 * cell, 5.0));
        boundary.push(Vec3::new(face, face, 5.0));
        boundary.push(Vec3::new(face, face, face + 4.0 * cell));
    }
    scenarios.push(PointScenario {
        name: "margin-boundary",
        points: boundary,
    });

    scenarios
}

/// Probe points that stress the same discontinuities as the
/// `margin-boundary` scenario: queries exactly on voxel faces and corners,
/// mid-cell, far outside the populated region, plus a few random ones.
pub fn boundary_probes(seed: u64, cell: f64) -> Vec<Vec3> {
    let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9);
    let mut probes = vec![
        Vec3::ZERO,
        Vec3::new(cell, 0.0, 0.0),
        Vec3::new(-cell, -cell, -cell),
        Vec3::new(0.5 * cell, 0.5 * cell, 0.5 * cell),
        Vec3::new(2.0 * cell, 2.0 * cell, 2.0 * cell),
        Vec3::new(500.0, -500.0, 120.0),
    ];
    for _ in 0..10 {
        probes.push(Vec3::new(
            rng.uniform(-60.0, 60.0),
            rng.uniform(-60.0, 60.0),
            rng.uniform(-10.0, 20.0),
        ));
    }
    probes
}

/// One named adversarial *motion* script: a waypoint polyline and a speed
/// for a moving obstacle, placed so the actor's box interacts with the
/// voxel lattice of cell size `cell` in the nastiest ways.
#[derive(Debug, Clone)]
pub struct MotionScript {
    /// Short script label, included in assertion messages.
    pub name: &'static str,
    /// Patrol polyline of the actor centre.
    pub waypoints: Vec<Vec3>,
    /// Patrol speed (m/s).
    pub speed: f64,
    /// Half extents the actor's box should use so the script's boundary
    /// placements land exactly on voxel faces.
    pub half_extents: Vec3,
}

/// The adversarial moving-obstacle script family, parameterised by a seed
/// and the voxel size of the structure under test.
///
/// Scripts:
///
/// * **face-graze** — the actor slides parallel to a voxel plane with its
///   box face *exactly on* the plane: every occupancy test along the way
///   sits on the `<=` boundary of `Aabb::contains` / `distance_to_point`.
/// * **vacate-reenter** — the actor leaves a cell completely and comes
///   back to exactly its starting pose: snapshot occupancy of the cell
///   must flip occupied → free → occupied at the crossing instants.
/// * **corner-pivot** — the path pivots through a lattice corner point,
///   so the box overlaps 1, 2, 4 then 8 cells in quick succession.
/// * **cell-hop** — straight motion at exactly one cell per waypoint so
///   consecutive poses differ by one key step along one axis.
pub fn adversarial_motion_scripts(seed: u64, cell: f64) -> Vec<MotionScript> {
    let mut rng = SplitMix64::new(seed ^ 0x6d6f_7469_6f6e);
    let z = (rng.uniform(1.0, 6.0) / cell).round() * cell + cell * 0.5;
    let half = Vec3::splat(cell * 0.5);
    vec![
        MotionScript {
            name: "face-graze",
            // Centre half a cell below a lattice plane ⇒ the box's top
            // face lies exactly on it while the actor slides along x.
            waypoints: vec![
                Vec3::new(0.0, -half.y, z),
                Vec3::new(6.0 * cell, -half.y, z),
            ],
            speed: 1.0,
            half_extents: half,
        },
        MotionScript {
            name: "vacate-reenter",
            waypoints: vec![
                Vec3::new(half.x, half.y, z),
                Vec3::new(half.x + 3.0 * cell, half.y, z),
                Vec3::new(half.x, half.y, z),
            ],
            speed: 1.5,
            half_extents: half,
        },
        MotionScript {
            name: "corner-pivot",
            waypoints: vec![
                Vec3::new(-cell, -cell, z),
                Vec3::new(0.0, 0.0, z),
                Vec3::new(cell, -cell, z),
            ],
            speed: 0.8,
            half_extents: half,
        },
        MotionScript {
            name: "cell-hop",
            waypoints: (0..5).map(|i| Vec3::new(i as f64 * cell, 0.0, z)).collect(),
            speed: 2.0,
            half_extents: half,
        },
    ]
}

/// Axis-aligned boxes mirroring [`adversarial_point_sets`] for structures
/// indexed over volumes (the obstacle broad-phase, the collision checker):
/// each point becomes a box, with half-extents that tile cleanly into the
/// grid in the boundary scenario (so inflated bounds land on cell faces).
pub fn adversarial_box_sets(seed: u64, cell: f64) -> Vec<(&'static str, Vec<Aabb>)> {
    let mut rng = SplitMix64::new(seed ^ 0x5851_f42d);
    adversarial_point_sets(seed, cell)
        .into_iter()
        .map(|scenario| {
            let half = if scenario.name == "margin-boundary" {
                // Boxes whose faces land exactly on grid planes.
                Vec3::splat(cell * 0.5)
            } else {
                Vec3::new(
                    rng.uniform(0.2, 1.5),
                    rng.uniform(0.2, 1.5),
                    rng.uniform(0.2, 1.5),
                )
            };
            let boxes = scenario
                .points
                .iter()
                .map(|&c| Aabb::from_center_half_extents(c, half))
                .collect();
            (scenario.name, boxes)
        })
        .collect()
}

/// One named predicted-lane scenario for the hazard-context conformance
/// suite: a short corridor mission with soft lane boxes (the shape of
/// moving-obstacle predicted occupancy) between start and goal.
#[derive(Debug, Clone)]
pub struct LaneScenario {
    /// Short scenario label, included in assertion messages.
    pub name: &'static str,
    /// The predicted-lane boxes (tall pillars crossing the corridor).
    pub lanes: Vec<Aabb>,
    /// Mission start.
    pub start: Vec3,
    /// Mission goal.
    pub goal: Vec3,
    /// Planner sampling bounds (wide enough to route around every lane).
    pub bounds: Aabb,
}

/// The predicted-lane scenario family for the hazard-context suite,
/// jittered by `seed`:
///
/// * **no-lanes** — the empty predicted set: the composed context must be
///   bit-identical to the bare static checker, query count included.
/// * **single-crossing-lane** — one lane squarely across the direct
///   start→goal line: a static-only plan crosses it (the reject loop
///   would veto), the composed context must route around in one shot.
/// * **staggered-double-lane** — two lanes leaving opposite ends open:
///   the one-shot route must slalom.
/// * **goal-pocket-lane** — a lane just short of the goal: late-path
///   conflicts must be routed around too, not only mid-corridor ones.
pub fn predicted_lane_scenarios(seed: u64) -> Vec<LaneScenario> {
    let mut rng = SplitMix64::new(seed ^ 0x6c61_6e65);
    let start = Vec3::new(0.0, 0.0, 5.0);
    let goal = Vec3::new(40.0, 0.0, 5.0);
    let bounds = Aabb::new(Vec3::new(-5.0, -25.0, 1.0), Vec3::new(45.0, 25.0, 12.0));
    let lane = |x0: f64, y0: f64, y1: f64| {
        Aabb::new(Vec3::new(x0, y0, 0.0), Vec3::new(x0 + 3.0, y1, 12.0))
    };
    let j = rng.uniform(-1.5, 1.5);
    vec![
        LaneScenario {
            name: "no-lanes",
            lanes: Vec::new(),
            start,
            goal,
            bounds,
        },
        LaneScenario {
            name: "single-crossing-lane",
            lanes: vec![lane(18.0 + j, -15.0, 15.0)],
            start,
            goal,
            bounds,
        },
        LaneScenario {
            name: "staggered-double-lane",
            lanes: vec![lane(12.0 + j, -25.0, 8.0), lane(26.0 + j, -8.0, 25.0)],
            start,
            goal,
            bounds,
        },
        LaneScenario {
            name: "goal-pocket-lane",
            lanes: vec![lane(33.0 + j, -10.0, 10.0)],
            start,
            goal,
            bounds,
        },
    ]
}

/// One named adversarial fault-window shape: a `(period, len)` duty
/// cycle over the decision index (see `roborun-faults`'
/// `FaultWindows`). Plain integers so this crate stays free of a
/// `roborun-faults` dependency — consumers wrap them into their own
/// window type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowScenario {
    /// Short scenario label, included in assertion messages.
    pub name: &'static str,
    /// Window period in decisions.
    pub period: u64,
    /// Active decisions per period.
    pub len: u64,
}

/// The adversarial fault-window family for the fault-plan determinism
/// suites: duty-cycle shapes that periodic random sampling is unlikely
/// to hit but that stress the window arithmetic's edges.
///
/// Scenarios:
///
/// * **single-pulse** — one active decision in a long period: phase
///   placement alone decides where the fault lands.
/// * **always-on** — `len == period`: every decision is active no matter
///   the phase.
/// * **unit-period** — `period == 1`: the degenerate always-on spelling.
/// * **near-full** — `len == period - 1`: exactly one healthy decision
///   per period.
/// * **half-duty** — the bread-and-butter 50 % shape.
/// * **sparse-long** — a short pulse in a period longer than most
///   missions: plans must stay healthy when the window never opens.
/// * plus three seed-drawn random shapes with `1 <= len <= period`.
pub fn adversarial_fault_windows(seed: u64) -> Vec<WindowScenario> {
    let mut rng = SplitMix64::new(seed ^ 0x7769_6e64_6f77); // "window"
    let mut out = vec![
        WindowScenario {
            name: "single-pulse",
            period: 97,
            len: 1,
        },
        WindowScenario {
            name: "always-on",
            period: 8,
            len: 8,
        },
        WindowScenario {
            name: "unit-period",
            period: 1,
            len: 1,
        },
        WindowScenario {
            name: "near-full",
            period: 9,
            len: 8,
        },
        WindowScenario {
            name: "half-duty",
            period: 12,
            len: 6,
        },
        WindowScenario {
            name: "sparse-long",
            period: 10_000,
            len: 3,
        },
    ];
    for name in ["random-a", "random-b", "random-c"] {
        let period = 2 + rng.next_u64() % 96;
        let len = 1 + rng.next_u64() % period;
        out.push(WindowScenario { name, period, len });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_family_is_complete_and_deterministic() {
        let a = adversarial_point_sets(3, 0.5);
        let b = adversarial_point_sets(3, 0.5);
        let names: Vec<_> = a.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "empty",
                "single-voxel",
                "dense-uniform",
                "clustered",
                "margin-boundary"
            ]
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.points, y.points, "{} not deterministic", x.name);
        }
        assert!(a[0].points.is_empty());
        assert!(a.iter().skip(1).all(|s| !s.points.is_empty()));
    }

    #[test]
    fn boundary_points_sit_on_voxel_faces() {
        let cell = 0.7;
        let sets = adversarial_point_sets(9, cell);
        let boundary = &sets.last().unwrap().points;
        assert!(boundary
            .iter()
            .any(|p| (p.x / cell).fract().abs() < 1e-12 && p.x != 0.0));
    }

    #[test]
    fn box_sets_mirror_point_scenarios() {
        let boxes = adversarial_box_sets(3, 0.5);
        assert_eq!(boxes.len(), 5);
        assert!(boxes[0].1.is_empty());
        assert!(!boxes[2].1.is_empty());
    }

    #[test]
    fn probes_include_exact_faces() {
        let probes = boundary_probes(1, 1.0);
        assert!(probes.contains(&Vec3::new(1.0, 0.0, 0.0)));
        assert!(probes.len() > 10);
    }

    #[test]
    fn lane_scenarios_are_complete_and_deterministic() {
        let a = predicted_lane_scenarios(9);
        let b = predicted_lane_scenarios(9);
        let names: Vec<_> = a.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "no-lanes",
                "single-crossing-lane",
                "staggered-double-lane",
                "goal-pocket-lane"
            ]
        );
        assert!(a[0].lanes.is_empty());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.lanes.len(), y.lanes.len());
            for (p, q) in x.lanes.iter().zip(&y.lanes) {
                assert_eq!(p, q, "{} not deterministic", x.name);
            }
            assert!(x.bounds.contains(x.start) && x.bounds.contains(x.goal));
            // Every lane sits strictly between start and goal.
            for lane in &x.lanes {
                assert!(
                    lane.min.x > x.start.x && lane.max.x < x.goal.x,
                    "{}",
                    x.name
                );
            }
        }
    }

    #[test]
    fn fault_windows_are_complete_valid_and_deterministic() {
        let a = adversarial_fault_windows(17);
        let names: Vec<_> = a.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "single-pulse",
                "always-on",
                "unit-period",
                "near-full",
                "half-duty",
                "sparse-long",
                "random-a",
                "random-b",
                "random-c"
            ]
        );
        for s in &a {
            assert!(s.period > 0, "{}: zero period", s.name);
            assert!(
                s.len >= 1 && s.len <= s.period,
                "{}: len {} outside 1..={}",
                s.name,
                s.len,
                s.period
            );
        }
        assert_eq!(a, adversarial_fault_windows(17));
        // A different seed moves the random shapes but keeps the fixed ones.
        let b = adversarial_fault_windows(18);
        assert_eq!(&a[..6], &b[..6]);
    }

    #[test]
    fn motion_scripts_are_complete_and_lattice_aligned() {
        let cell = 0.5;
        let scripts = adversarial_motion_scripts(3, cell);
        let names: Vec<_> = scripts.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            ["face-graze", "vacate-reenter", "corner-pivot", "cell-hop"]
        );
        for s in &scripts {
            assert!(s.waypoints.len() >= 2, "{} too short", s.name);
            assert!(s.speed > 0.0);
        }
        // The graze script's box face sits exactly on a lattice plane.
        let graze = &scripts[0];
        let top = graze.waypoints[0].y + graze.half_extents.y;
        assert!((top / cell).fract().abs() < 1e-12, "top face at {top}");
        // The vacate script returns exactly to its start.
        let vacate = &scripts[1];
        assert_eq!(vacate.waypoints.first(), vacate.waypoints.last());
        // Determinism.
        let again = adversarial_motion_scripts(3, cell);
        for (a, b) in scripts.iter().zip(&again) {
            assert_eq!(a.waypoints, b.waypoints, "{} not deterministic", a.name);
        }
    }
}
