//! Workspace-level integration tests: the full pipeline, both runtime
//! modes, on real generated environments.

use roborun::mission::breakdown::ZoneBreakdown;
use roborun::prelude::*;

fn short_env(seed: u64) -> Environment {
    let difficulty = DifficultyConfig {
        obstacle_density: 0.4,
        obstacle_spread: 40.0,
        goal_distance: 130.0,
    };
    EnvironmentGenerator::new(difficulty).generate(seed)
}

fn quick_config(mode: RuntimeMode) -> MissionConfig {
    MissionConfig {
        max_decisions: 1_200,
        max_mission_time: 2_500.0,
        ..MissionConfig::new(mode)
    }
}

#[test]
fn aware_and_oblivious_complete_the_same_mission() {
    let env = short_env(31);
    let aware = MissionRunner::new(quick_config(RuntimeMode::SpatialAware)).run(&env);
    let oblivious = MissionRunner::new(quick_config(RuntimeMode::SpatialOblivious)).run(&env);

    assert!(
        aware.metrics.reached_goal,
        "spatial-aware run failed to reach the goal"
    );
    assert!(
        oblivious.metrics.reached_goal,
        "baseline run failed to reach the goal"
    );
    assert!(!aware.metrics.collided);
    assert!(!oblivious.metrics.collided);
}

#[test]
fn roborun_beats_the_baseline_on_the_paper_metrics() {
    let env = short_env(32);
    let aware = MissionRunner::new(quick_config(RuntimeMode::SpatialAware)).run(&env);
    let oblivious = MissionRunner::new(quick_config(RuntimeMode::SpatialOblivious)).run(&env);

    let a = &aware.metrics;
    let o = &oblivious.metrics;
    assert!(a.reached_goal && o.reached_goal);
    // The four Fig. 7 directions.
    assert!(
        a.mean_velocity > o.mean_velocity,
        "velocity {} vs {}",
        a.mean_velocity,
        o.mean_velocity
    );
    assert!(
        a.mission_time < o.mission_time,
        "time {} vs {}",
        a.mission_time,
        o.mission_time
    );
    assert!(
        a.energy_kj < o.energy_kj,
        "energy {} vs {}",
        a.energy_kj,
        o.energy_kj
    );
    assert!(
        a.mean_cpu_utilization < o.mean_cpu_utilization,
        "cpu {} vs {}",
        a.mean_cpu_utilization,
        o.mean_cpu_utilization
    );
    // And the Section V-C median-latency reduction direction.
    assert!(a.median_latency < o.median_latency);
}

#[test]
fn governor_knobs_follow_zone_congestion_in_a_real_mission() {
    let env = short_env(33);
    let result = MissionRunner::new(quick_config(RuntimeMode::SpatialAware)).run(&env);
    assert!(result.metrics.reached_goal);
    let breakdown = ZoneBreakdown::from_telemetry(&result.telemetry);
    let a = breakdown.zone('A');
    let b = breakdown.zone('B');
    if let (Some(a), Some(b)) = (a, b) {
        // Zone B (open) should run coarser precision and higher velocity
        // than the congested start zone.
        assert!(
            b.mean_precision >= a.mean_precision,
            "zone B precision {} should be coarser than zone A {}",
            b.mean_precision,
            a.mean_precision
        );
        assert!(
            b.mean_velocity >= a.mean_velocity,
            "zone B velocity {} should exceed zone A {}",
            b.mean_velocity,
            a.mean_velocity
        );
    } else {
        panic!("mission did not traverse both zone A and zone B");
    }
}

#[test]
fn baseline_knobs_never_change_during_a_mission() {
    let env = short_env(34);
    let result = MissionRunner::new(quick_config(RuntimeMode::SpatialOblivious)).run(&env);
    let first = result.telemetry.records()[0].knobs;
    assert_eq!(first, KnobSettings::static_baseline());
    for record in result.telemetry.records() {
        assert_eq!(record.knobs, first, "baseline knobs changed mid-mission");
    }
}

#[test]
fn aware_knobs_do_change_during_a_mission() {
    let env = short_env(34);
    let result = MissionRunner::new(quick_config(RuntimeMode::SpatialAware)).run(&env);
    let precisions: std::collections::BTreeSet<u64> = result
        .telemetry
        .records()
        .iter()
        .map(|r| (r.knobs.point_cloud_precision * 1000.0) as u64)
        .collect();
    assert!(
        precisions.len() > 1,
        "the spatial-aware governor never changed the precision knob"
    );
}

#[test]
fn mission_results_are_reproducible() {
    let env = short_env(35);
    let runner = MissionRunner::new(quick_config(RuntimeMode::SpatialAware));
    let a = runner.run(&env);
    let b = runner.run(&env);
    assert_eq!(a.metrics.decisions, b.metrics.decisions);
    assert!((a.metrics.mission_time - b.metrics.mission_time).abs() < 1e-9);
    assert!((a.metrics.energy_kj - b.metrics.energy_kj).abs() < 1e-9);
    assert_eq!(a.flown_path.len(), b.flown_path.len());
}

#[test]
fn quick_sweep_reproduces_fig7_directions() {
    let mut config = SweepConfig::quick(77);
    config.difficulties.truncate(2);
    let results = run_sweep(&config);
    let improvements = results.improvements();
    assert!(improvements.velocity_gain > 1.0);
    assert!(improvements.mission_time_gain > 1.0);
    assert!(improvements.energy_gain > 1.0);
    assert!(improvements.cpu_reduction > 0.0);
    assert!(results.aware_aggregate().success_rate() >= 0.5);
}
