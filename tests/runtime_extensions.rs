//! Cross-crate integration tests for the runtime extensions: the
//! middleware node-graph pipeline, the cognitive co-task model, per-knob
//! ablation, fault injection and the safety audit — all driven through the
//! `roborun` facade the way a downstream user would.

use roborun::cognitive::intervals_from_telemetry;
use roborun::prelude::*;

fn short_env(seed: u64) -> Environment {
    EnvironmentGenerator::new(DifficultyConfig {
        obstacle_density: 0.35,
        obstacle_spread: 40.0,
        goal_distance: 120.0,
    })
    .generate(seed)
}

fn quick_mission(mode: RuntimeMode) -> MissionConfig {
    MissionConfig {
        max_decisions: 900,
        max_mission_time: 2_500.0,
        ..MissionConfig::new(mode)
    }
}

#[test]
fn node_graph_and_direct_runner_agree_on_the_headline_ordering() {
    let env = short_env(21);

    let direct_aware = MissionRunner::new(quick_mission(RuntimeMode::SpatialAware)).run(&env);
    let mut node_cfg = NodePipelineConfig::new(RuntimeMode::SpatialAware);
    node_cfg.mission = quick_mission(RuntimeMode::SpatialAware);
    let node_aware = NodePipeline::new(node_cfg).run(&env);

    assert!(direct_aware.metrics.reached_goal);
    assert!(node_aware.mission.metrics.reached_goal);

    // Same models, same environment: the two execution paths land in the
    // same ballpark, and the node graph actually carried the traffic.
    let ratio = node_aware.mission.metrics.mission_time / direct_aware.metrics.mission_time;
    assert!((0.4..2.5).contains(&ratio), "mission-time ratio {ratio}");
    assert!(node_aware.graph.total_messages() > 0);
    assert!(node_aware.graph.topic("/sensors/points").is_some());
}

#[test]
fn freed_cpu_translates_into_cognitive_throughput() {
    let env = short_env(21);

    let aware_cfg = quick_mission(RuntimeMode::SpatialAware);
    let oblivious_cfg = MissionConfig {
        max_decisions: 1_800,
        max_mission_time: 3_500.0,
        ..MissionConfig::new(RuntimeMode::SpatialOblivious)
    };
    let min_epoch = aware_cfg.min_epoch;
    let aware = MissionRunner::new(aware_cfg).run(&env);
    let oblivious = MissionRunner::new(oblivious_cfg).run(&env);
    assert!(aware.metrics.reached_goal && oblivious.metrics.reached_goal);

    let scheduler =
        HeadroomScheduler::new(SchedulerConfig::default(), CognitiveTask::standard_mix());
    let aware_report = scheduler.run(&intervals_from_telemetry(&aware.telemetry, min_epoch));
    let oblivious_report =
        scheduler.run(&intervals_from_telemetry(&oblivious.telemetry, min_epoch));

    // RoboRun leaves more CPU per decision, so the co-task mix attains at
    // least as much of its desired rate as under the static baseline.
    assert!(
        aware_report.mean_attainment() >= oblivious_report.mean_attainment() - 1e-9,
        "aware attainment {} vs oblivious {}",
        aware_report.mean_attainment(),
        oblivious_report.mean_attainment()
    );
    let comparison =
        CoTaskComparison::between("aware", &aware_report, "oblivious", &oblivious_report);
    assert!(comparison.attainment_ratio >= 1.0 - 1e-9);
}

#[test]
fn ablation_fault_injection_and_safety_audit_compose() {
    let env = short_env(9);

    // Full RoboRun, but with the volume knobs frozen and mild sensor flakiness.
    let config = MissionConfig {
        ablation: KnobAblation::volume_frozen(),
        faults: FaultConfig::flaky_sensors(0.05, 0.2),
        max_decisions: 1_200,
        max_mission_time: 3_000.0,
        ..MissionConfig::new(RuntimeMode::SpatialAware)
    };
    let result = MissionRunner::new(config).run(&env);
    assert!(
        result.metrics.reached_goal,
        "mission failed: {:?}",
        result.metrics
    );

    // Frozen volume knobs show up in the telemetry; precision still adapts.
    let static_knobs = KnobSettings::static_baseline();
    let mut precision_values = std::collections::BTreeSet::new();
    for r in result.telemetry.records() {
        assert_eq!(r.knobs.octomap_volume, static_knobs.octomap_volume);
        assert_eq!(r.knobs.planner_volume, static_knobs.planner_volume);
        precision_values.insert((r.knobs.point_cloud_precision * 100.0) as i64);
    }
    assert!(
        precision_values.len() > 1,
        "precision never adapted: {precision_values:?}"
    );

    // The safety audit runs on the same telemetry.
    let safety = SafetyReport::from_telemetry(&result.telemetry);
    assert_eq!(safety.decisions, result.metrics.decisions);
    assert!(safety.velocity_violation_rate() < 0.15);
}

#[test]
fn middleware_is_usable_standalone_through_the_facade() {
    // The middleware substrate is a normal library: build a tiny telemetry
    // fan-out graph by hand and check the bookkeeping.
    let bus = MessageBus::default();
    let drone = Node::new(&bus, "drone").unwrap();
    let logger = Node::new(&bus, "logger").unwrap();
    let dashboard = Node::new(&bus, "dashboard").unwrap();

    let battery = drone.publisher::<f64>("/telemetry/battery").unwrap();
    let log_sub = logger
        .subscribe::<f64>("/telemetry/battery", QosProfile::reliable(64))
        .unwrap();
    let dash_sub = dashboard
        .subscribe::<f64>("/telemetry/battery", QosProfile::sensor_data())
        .unwrap();

    let mut executor = Executor::new(&bus);
    let mut level = 100.0f64;
    executor.add_timer("battery_tick", 0.5, move |_| {
        level -= 0.1;
        let _ = battery.publish(level);
    });
    executor.spin_until(10.0, 0.25);

    assert_eq!(log_sub.drain().len(), 20); // timer fires at t = 0.5, 1.0, …, 10.0
    assert!(dash_sub.latest().is_some());
    let graph = GraphInfo::snapshot(&bus);
    assert_eq!(graph.nodes.len(), 3);
    assert_eq!(
        graph
            .topic("/telemetry/battery")
            .unwrap()
            .stats
            .messages_published,
        20
    );
}
