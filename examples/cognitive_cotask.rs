//! What the freed-up CPU buys: run the same mission under the
//! spatial-aware and spatial-oblivious designs, then replay each mission's
//! CPU profile through the cognitive co-task scheduler (semantic labeling,
//! gesture detection, object tracking) and compare the cognitive
//! throughput each design sustains *while navigating*.
//!
//! ```bash
//! cargo run --release --example cognitive_cotask
//! ```

use roborun::cognitive::intervals_from_telemetry;
use roborun::prelude::*;

fn main() {
    let env = Scenario::SearchAndRescue.short_environment(7);

    let mut reports = Vec::new();
    for (label, mode, cap) in [
        ("spatial-aware (RoboRun)", RuntimeMode::SpatialAware, 900),
        (
            "spatial-oblivious (baseline)",
            RuntimeMode::SpatialOblivious,
            1_800,
        ),
    ] {
        let config = MissionConfig {
            max_decisions: cap,
            ..MissionConfig::new(mode)
        };
        let result = MissionRunner::new(config.clone()).run(&env);

        // Replay the navigation CPU profile through the co-task scheduler.
        let intervals = intervals_from_telemetry(&result.telemetry, config.min_epoch);
        let scheduler =
            HeadroomScheduler::new(SchedulerConfig::default(), CognitiveTask::standard_mix());
        let report = scheduler.run(&intervals);

        println!("## {label}");
        println!(
            "mission: {:.0} s, mean velocity {:.2} m/s, nav CPU {:.0}%",
            result.metrics.mission_time,
            result.metrics.mean_velocity,
            result.metrics.mean_cpu_utilization * 100.0
        );
        println!("{}", report.to_table());
        reports.push((label, report));
    }

    let comparison =
        CoTaskComparison::between(reports[0].0, &reports[0].1, reports[1].0, &reports[1].1);
    println!(
        "cognitive attainment ratio (aware / oblivious): {:.2}x",
        comparison.attainment_ratio
    );
    println!(
        "cognitive frames-per-second ratio (aware / oblivious): {:.2}x",
        comparison.throughput_ratio
    );
}
