//! Run the mission pipeline as a ROS-like node graph and inspect the graph
//! and per-topic traffic the way `rqt_graph` / `ros2 topic info` would show
//! them.
//!
//! ```bash
//! cargo run --release --example node_graph_pipeline
//! ```

use roborun::prelude::*;

fn main() {
    // 1. A short package-delivery environment.
    let env = Scenario::PackageDelivery.short_environment(42);

    // 2. Run the same mission through the middleware node graph instead of
    //    the direct in-process runner: every stage is a node, every
    //    stage-to-stage hand-off a typed message, and the communication
    //    slice of each decision's latency is measured from the bytes that
    //    actually crossed the bus.
    let mut config = NodePipelineConfig::new(RuntimeMode::SpatialAware);
    config.mission.max_decisions = 800;
    let result = NodePipeline::new(config).run(&env);

    let m = &result.mission.metrics;
    println!("reached goal:    {}", m.reached_goal);
    println!("mission time:    {:.1} s", m.mission_time);
    println!("mean velocity:   {:.2} m/s", m.mean_velocity);
    println!("decisions:       {}", m.decisions);

    // 3. Communication cost actually measured on the bus.
    let comm_mean: f64 =
        result.comm_per_decision.iter().sum::<f64>() / result.comm_per_decision.len().max(1) as f64;
    println!("mean comm per decision: {:.1} ms", comm_mean * 1e3);

    // 4. The node graph, as a traffic table and as Graphviz DOT.
    println!(
        "\n# node graph: {} nodes, {} topics",
        result.graph.nodes.len(),
        result.graph.topics.len()
    );
    println!("{}", result.graph.to_table());
    println!(
        "# graphviz (paste into `dot -Tpng`):\n{}",
        result.graph.to_dot()
    );
}
