//! Package delivery: warehouse → open sky → warehouse, comparing the
//! spatial-aware runtime against the static baseline on the same
//! environment (the paper's *high precision mission* motivation).
//!
//! ```bash
//! cargo run --release --example package_delivery
//! ```

use roborun::mission::breakdown::ZoneBreakdown;
use roborun::prelude::*;

fn main() {
    let env = Scenario::PackageDelivery.short_environment(7);
    println!(
        "package delivery: {:.0} m, {} obstacles (dense warehouse clusters at both ends)\n",
        env.mission_length(),
        env.obstacles().len()
    );

    let mut rows = Vec::new();
    for mode in [RuntimeMode::SpatialOblivious, RuntimeMode::SpatialAware] {
        let config = MissionConfig {
            max_decisions: 2_000,
            ..MissionConfig::new(mode)
        };
        let result = MissionRunner::new(config).run(&env);
        let m = result.metrics;
        println!(
            "{:<38} time {:>7.1} s | velocity {:>5.2} m/s | energy {:>7.1} kJ | CPU {:>4.0}% | reached: {}",
            format!("{mode}"),
            m.mission_time,
            m.mean_velocity,
            m.energy_kj,
            m.mean_cpu_utilization * 100.0,
            m.reached_goal
        );

        // Zone analysis: the aware design should spend its precision in the
        // congested zones (A/C) and sprint through the open middle (B).
        let zones = ZoneBreakdown::from_telemetry(&result.telemetry);
        for z in &zones.zones {
            println!(
                "    zone {}: {:>4} decisions | mean precision {:>4.1} m | mean velocity {:>4.2} m/s | mean latency {:>5.2} s",
                z.zone, z.decisions, z.mean_precision, z.mean_velocity, z.mean_latency
            );
        }
        rows.push((mode, m));
    }

    if let [(_, baseline), (_, roborun)] = rows.as_slice() {
        println!(
            "\nimprovement: {:.1}x mission time, {:.1}x velocity, {:.1}x energy",
            baseline.mission_time / roborun.mission_time.max(1e-9),
            roborun.mean_velocity / baseline.mean_velocity.max(1e-9),
            baseline.energy_kj / roborun.energy_kj.max(1e-9),
        );
    }
}
