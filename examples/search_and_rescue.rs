//! Search and rescue: a long, mostly open mission where sustaining a high
//! velocity matters (the paper's *high velocity mission* motivation), with
//! a look at how the deadline (time budget) adapts to visibility.
//!
//! ```bash
//! cargo run --release --example search_and_rescue
//! ```

use roborun::prelude::*;

fn main() {
    let env = Scenario::SearchAndRescue.short_environment(3);
    println!(
        "search and rescue: {:.0} m, {} obstacles (sparse, widely spread debris)\n",
        env.mission_length(),
        env.obstacles().len()
    );

    // The time-budgeting law on its own: Eq. 1 for a few visibilities, the
    // mechanism behind Fig. 2b.
    let budgeter = TimeBudgeter::default();
    println!("decision deadline (s) from Eq. 1:");
    println!("  velocity ↓ / visibility →   5 m    10 m    20 m    40 m");
    for v in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let row: Vec<String> = [5.0, 10.0, 20.0, 40.0]
            .iter()
            .map(|&d| format!("{:6.2}", budgeter.local_budget(v, d)))
            .collect();
        println!("  {:>4.1} m/s                 {}", v, row.join("  "));
    }
    println!();

    for mode in [RuntimeMode::SpatialOblivious, RuntimeMode::SpatialAware] {
        let config = MissionConfig {
            max_decisions: 2_500,
            ..MissionConfig::new(mode)
        };
        let result = MissionRunner::new(config).run(&env);
        let m = result.metrics;
        // Average deadline the runtime actually operated with.
        let mean_deadline: f64 = result
            .telemetry
            .records()
            .iter()
            .map(|r| r.deadline)
            .sum::<f64>()
            / result.telemetry.len().max(1) as f64;
        println!(
            "{:<38} time {:>7.1} s | velocity {:>5.2} m/s | mean deadline {:>5.2} s | deadline hit rate {:>5.1}% | reached: {}",
            format!("{mode}"),
            m.mission_time,
            m.mean_velocity,
            mean_deadline,
            result.telemetry.deadline_hit_rate() * 100.0,
            m.reached_goal
        );
    }

    println!(
        "\nThe static design must assume worst-case visibility at design time, so its deadline \
         (and therefore its velocity) never improves even over open terrain; the spatial-aware \
         runtime extends its deadline whenever the profiled visibility allows it."
    );
}
