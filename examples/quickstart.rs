//! Quickstart: run one short mission under the RoboRun governor and print
//! the mission-level metrics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use roborun::prelude::*;

fn main() {
    // 1. Generate a mission environment. `Scenario` bundles the paper's
    //    difficulty knobs; the short variant keeps this example fast.
    let env = Scenario::PackageDelivery.short_environment(42);
    println!(
        "environment: {} obstacles, {:.0} m mission, difficulty [{}]",
        env.obstacles().len(),
        env.mission_length(),
        env.difficulty()
    );

    // 2. Configure and run the mission with the spatial-aware runtime.
    let config = MissionConfig {
        max_decisions: 800,
        ..MissionConfig::new(RuntimeMode::SpatialAware)
    };
    let result = MissionRunner::new(config).run(&env);

    // 3. Inspect what happened.
    let m = &result.metrics;
    println!("reached goal:      {}", m.reached_goal);
    println!("mission time:      {:.1} s", m.mission_time);
    println!("mean velocity:     {:.2} m/s", m.mean_velocity);
    println!("flight energy:     {:.1} kJ", m.energy_kj);
    println!("CPU utilization:   {:.0}%", m.mean_cpu_utilization * 100.0);
    println!("decisions taken:   {}", m.decisions);
    println!("median latency:    {:.2} s", m.median_latency);

    // 4. The governor's view of a single decision, for flavour: ask it what
    //    it would do in open sky vs a tight aisle.
    let governor = Governor::new(GovernorConfig::default());
    let open = governor.decide(&SpatialProfile::open_space(2.0, 40.0));
    let tight = governor.decide(&SpatialProfile::congested(0.6, 0.8, 2.0));
    println!("\ngovernor policy in open sky:    {}", open.knobs);
    println!("governor policy in a tight aisle: {}", tight.knobs);
}
