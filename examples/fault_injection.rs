//! Robustness under degraded sensing: the same mission flown with healthy
//! sensors, in fog, and with flaky cameras, audited by the safety monitor.
//!
//! ```bash
//! cargo run --release --example fault_injection
//! ```

use roborun::prelude::*;

fn main() {
    let env = Scenario::PackageDelivery.short_environment(21);

    for (label, faults) in [
        ("healthy sensing", FaultConfig::healthy()),
        ("fog (8 m visibility)", FaultConfig::fog(8.0)),
        (
            "flaky cameras (10% sweeps, 30% points lost)",
            FaultConfig::flaky_sensors(0.1, 0.3),
        ),
    ] {
        let config = MissionConfig {
            faults,
            max_decisions: 1_500,
            max_mission_time: 3_000.0,
            ..MissionConfig::new(RuntimeMode::SpatialAware)
        };
        let result = MissionRunner::new(config).run(&env);
        let safety = SafetyReport::from_telemetry(&result.telemetry);

        println!("## {label}");
        println!(
            "reached goal: {}   collided: {}   mission time: {:.0} s   mean velocity: {:.2} m/s",
            result.metrics.reached_goal,
            result.metrics.collided,
            result.metrics.mission_time,
            result.metrics.mean_velocity
        );
        println!("safety: {}\n", safety.summary());
    }

    println!(
        "RoboRun degrades gracefully: fog shortens the profiled visibility, the deadline\n\
         equation shortens the budget, and the governor trades velocity for safety instead\n\
         of colliding."
    );
}
