//! The representative-mission deep dive of the paper's Section V-C
//! (Figures 9, 10 and 11): run one mid-difficulty mission with both designs
//! and print the per-zone behaviour, the precision-over-time series and the
//! latency breakdown.
//!
//! ```bash
//! cargo run --release --example representative_mission
//! ```

use roborun::env::CongestionMap;
use roborun::mission::breakdown::ZoneBreakdown;
use roborun::mission::report;
use roborun::prelude::*;

fn main() {
    // The paper uses the mid-range difficulty for this analysis; a shorter
    // goal distance keeps the example quick while preserving the A/B/C
    // structure.
    let difficulty = DifficultyConfig {
        goal_distance: 240.0,
        ..DifficultyConfig::mid()
    };
    let env = EnvironmentGenerator::new(difficulty).generate(23);

    // Fig. 9: the congestion heat map of the environment (down-sampled).
    let congestion = CongestionMap::build(&env, 30.0);
    println!(
        "=== congestion map (Fig. 9 analogue, peak {:.2}) ===",
        congestion.peak()
    );
    for row in congestion.to_rows() {
        let line: String = row
            .iter()
            .map(|&v| {
                if v > 0.2 {
                    '#'
                } else if v > 0.05 {
                    '+'
                } else if v > 0.0 {
                    '.'
                } else {
                    ' '
                }
            })
            .collect();
        println!("  |{line}|");
    }
    println!();

    for mode in [RuntimeMode::SpatialOblivious, RuntimeMode::SpatialAware] {
        let config = MissionConfig {
            max_decisions: 2_500,
            ..MissionConfig::new(mode)
        };
        let result = MissionRunner::new(config).run(&env);
        let m = result.metrics;
        println!("=== {mode} ===");
        println!(
            "mission time {:.1} s | velocity {:.2} m/s | energy {:.1} kJ | median latency {:.2} s | reached: {}",
            m.mission_time, m.mean_velocity, m.energy_kj, m.median_latency, m.reached_goal
        );

        // Fig. 10/11: zone behaviour and the latency breakdown shares.
        let breakdown = ZoneBreakdown::from_telemetry(&result.telemetry);
        for z in &breakdown.zones {
            println!(
                "  zone {} | {:>4} decisions | precision {:>4.1} m | velocity {:>4.2} m/s | latency {:>5.2} s (spread {:>5.2} s)",
                z.zone, z.decisions, z.mean_precision, z.mean_velocity, z.mean_latency, z.latency_spread
            );
        }
        print!("  latency shares:");
        for (stage, share) in &breakdown.stage_shares {
            if *share > 0.005 {
                print!(" {stage} {:.0}%", share * 100.0);
            }
        }
        println!("\n");

        // A compact precision-over-time series (Fig. 10c): sample every
        // tenth decision.
        let series = report::telemetry_csv(&result.telemetry);
        let lines: Vec<&str> = series.lines().collect();
        println!(
            "  time series sample (time, latency, deadline, precision, velocity, visibility):"
        );
        for line in lines.iter().skip(1).step_by((lines.len() / 8).max(1)) {
            println!("    {line}");
        }
        println!();
    }
}
