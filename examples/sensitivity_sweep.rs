//! A scaled-down version of the paper's 27-environment evaluation
//! (Figures 7 and 8): run both designs across environments of varying
//! difficulty and print the aggregate metrics and sensitivity tables.
//!
//! The full-scale sweep (1.2 km missions, 27 environments) is reproduced by
//! the experiments harness (`cargo run --release -p roborun-bench --bin
//! experiments -- fig7 fig8`); this example uses shorter missions so it
//! finishes in well under a minute.
//!
//! ```bash
//! cargo run --release --example sensitivity_sweep
//! ```

use roborun::mission::report;
use roborun::prelude::*;

fn main() {
    let mut config = SweepConfig::quick(19);
    // Cover three densities at two spreads (6 environments).
    config.difficulties = vec![
        DifficultyConfig {
            obstacle_density: 0.3,
            obstacle_spread: 40.0,
            goal_distance: 150.0,
        },
        DifficultyConfig {
            obstacle_density: 0.45,
            obstacle_spread: 40.0,
            goal_distance: 150.0,
        },
        DifficultyConfig {
            obstacle_density: 0.6,
            obstacle_spread: 40.0,
            goal_distance: 150.0,
        },
        DifficultyConfig {
            obstacle_density: 0.3,
            obstacle_spread: 80.0,
            goal_distance: 150.0,
        },
        DifficultyConfig {
            obstacle_density: 0.45,
            obstacle_spread: 80.0,
            goal_distance: 150.0,
        },
        DifficultyConfig {
            obstacle_density: 0.6,
            obstacle_spread: 80.0,
            goal_distance: 150.0,
        },
    ];
    println!(
        "running {} environments x 2 designs (short 150 m missions)...\n",
        config.difficulties.len()
    );
    let results = run_sweep(&config);

    println!("=== mission-level metrics (Fig. 7 analogue) ===");
    println!("{}", report::fig7_table(&results));

    println!("=== sensitivity to obstacle density (Fig. 8b analogue) ===");
    println!(
        "{}",
        report::fig8_table(
            "obstacle density",
            &results.sensitivity(|d| d.obstacle_density)
        )
    );

    println!("=== sensitivity to obstacle spread (Fig. 8c analogue) ===");
    println!(
        "{}",
        report::fig8_table(
            "obstacle spread (m)",
            &results.sensitivity(|d| d.obstacle_spread)
        )
    );

    let (aware_ratio, oblivious_ratio) = results.sensitivity_ratio(|d| d.obstacle_density);
    println!(
        "flight-time increase from lowest to highest density: RoboRun {aware_ratio:.2}x, baseline {oblivious_ratio:.2}x"
    );
    println!(
        "(RoboRun is expected to be the more sensitive of the two — it exploits easy environments, \
         so hard ones cost it relatively more, matching the paper's 1.5X vs 1.1X observation)"
    );
}
