//! Moving-obstacle missions: the dynamic-world workload.
//!
//! Runs each dynamic scenario family (crossing corridor, patrolled
//! warehouse, congested intersection) under both runtime designs and
//! prints what temporal heterogeneity does to each: the spatial-aware
//! runtime slows near closing obstacles, discards trajectories that
//! cross predicted occupancy and keeps flying; the spatial-oblivious
//! baseline, whose velocity was fixed at design time, cannot react to
//! an obstacle that moves — and pays for it.
//!
//! ```text
//! cargo run --release --example dynamic_obstacles
//! ```

use roborun::prelude::*;

fn main() {
    let seed = 41;
    println!("dynamic scenario families (seed {seed}), both designs\n");
    for scenario in DynamicScenario::ALL {
        let (env, world) = scenario.world(seed);
        println!(
            "=== {} — {} static obstacles, {} actors (max speed {:.1} m/s)",
            scenario.name(),
            env.field().len(),
            world.actors().len(),
            world.max_actor_speed(),
        );
        for mode in [RuntimeMode::SpatialAware, RuntimeMode::SpatialOblivious] {
            let mut cfg = MissionConfig::new(mode);
            cfg.max_decisions = if mode.is_aware() { 600 } else { 1_500 };
            cfg.max_mission_time = if mode.is_aware() { 1_500.0 } else { 3_000.0 };
            cfg.voxel_decay = Some(2); // vacated cells must free up
            cfg.seed = seed;
            let result = MissionRunner::new(cfg).run_dynamic(&env, &world);
            let m = &result.metrics;
            println!(
                "  {:17} goal={:5} collided={:5}  t={:7.1} s  v={:4.2} m/s  \
                 dynamic replans={:3}  predicted invalidations={}",
                format!("{mode:?}:"),
                m.reached_goal,
                m.collided,
                m.mission_time,
                m.mean_velocity,
                m.dynamic_replans,
                m.predicted_invalidations,
            );
        }
        println!();
    }
    println!(
        "The oblivious design cannot absorb a closing obstacle — its velocity\n\
         was chosen at design time — so moving worlds turn its slowness into\n\
         collisions. Runtime adaptation converts temporal heterogeneity into\n\
         safety, extending the paper's thesis to the time axis."
    );
}
