//! Test-runner support types: configuration, case errors and the
//! deterministic RNG behind every generated value.

/// Configuration for a `proptest!` block (subset of the real crate's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be re-drawn.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "case rejected"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Deterministic RNG (SplitMix64) used for all value generation.
///
/// Each test seeds its stream from its fully qualified name, so failures
/// reproduce exactly on re-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from a test's fully qualified name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// An RNG with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
