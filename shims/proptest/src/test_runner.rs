//! Test-runner support types: configuration, case errors and the
//! deterministic RNG behind every generated value.

/// Configuration for a `proptest!` block (subset of the real crate's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be re-drawn.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "case rejected"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Relative path of the regression file inside a crate (mirrors real
/// proptest's `proptest-regressions/` convention; one shared file because
/// the shim keys entries by fully qualified test name).
const REGRESSION_FILE: &str = "proptest-regressions/shim-cases.txt";

/// Loads the persisted failing-case RNG states for `test_name` from
/// `<manifest_dir>/proptest-regressions/shim-cases.txt`.
///
/// Mirrors real proptest's regression persistence: every line is
/// `cc <test_name> <rng_state_hex>`, committed to version control, and the
/// `proptest!` macro replays each state before drawing fresh cases — so a
/// counterexample found once (locally or in CI) is re-checked forever.
/// Unknown or malformed lines are ignored, matching the real crate's
/// tolerance for hand-edited files.
pub fn load_regressions(manifest_dir: &str, test_name: &str) -> Vec<u64> {
    let path = std::path::Path::new(manifest_dir).join(REGRESSION_FILE);
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    contents
        .lines()
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            (parts.next() == Some("cc") && parts.next() == Some(test_name))
                .then(|| parts.next().and_then(|s| u64::from_str_radix(s, 16).ok()))
                .flatten()
        })
        .collect()
}

/// Appends one failing-case RNG state for `test_name` to the crate's
/// regression file (creating `proptest-regressions/` if needed), unless an
/// identical entry is already present. Failures to write are swallowed —
/// persistence must never mask the assertion failure being reported.
pub fn persist_regression(manifest_dir: &str, test_name: &str, state: u64) {
    let dir = std::path::Path::new(manifest_dir).join("proptest-regressions");
    let path = dir.join("shim-cases.txt");
    let entry = format!("cc {test_name} {state:016x}");
    if let Ok(existing) = std::fs::read_to_string(&path) {
        if existing.lines().any(|line| line.trim() == entry) {
            return;
        }
    }
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| {
            use std::io::Write;
            writeln!(f, "{entry}")
        });
}

/// Deterministic RNG (SplitMix64) used for all value generation.
///
/// Each test seeds its stream from its fully qualified name, so failures
/// reproduce exactly on re-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from a test's fully qualified name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// An RNG with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The current internal state. Captured before each test case so a
    /// failing case can be persisted and replayed from exactly this point
    /// in the stream (see [`load_regressions`] / [`persist_regression`]).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regressions_persist_load_and_dedupe() {
        let dir = std::env::temp_dir().join(format!(
            "proptest-shim-test-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let dir_str = dir.to_str().unwrap();
        assert!(load_regressions(dir_str, "a::b").is_empty());
        persist_regression(dir_str, "a::b", 0xdead_beef);
        persist_regression(dir_str, "a::b", 0xdead_beef); // duplicate: dropped
        persist_regression(dir_str, "a::c", 7);
        assert_eq!(load_regressions(dir_str, "a::b"), vec![0xdead_beef]);
        assert_eq!(load_regressions(dir_str, "a::c"), vec![7]);
        assert!(load_regressions(dir_str, "a::d").is_empty());
        let file = std::fs::read_to_string(dir.join(REGRESSION_FILE)).unwrap();
        assert_eq!(file.lines().count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rng_state_resumes_stream() {
        let mut a = TestRng::for_test("some::test");
        let _ = a.next_u64();
        let state = a.state();
        let mut b = TestRng::with_seed(state);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
