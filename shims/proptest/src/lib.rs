//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * range, tuple, `Vec`, [`strategy::Just`] and [`arbitrary::any`]
//!   strategies,
//! * [`collection::vec`],
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Semantics differ from real proptest in two deliberate ways: values are
//! drawn uniformly (no edge biasing) and failing cases are not shrunk.
//! Every test's random stream is seeded from its module path and name, so
//! runs are fully deterministic and failures reproduce exactly.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of real proptest's `prelude::prop` re-export
/// (`prop::collection::vec(..)` etc.).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Defines property tests over generated inputs.
///
/// Supports the subset of the real macro's grammar used in this workspace:
/// an optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                let __manifest_dir = env!("CARGO_MANIFEST_DIR");
                // Replay persisted counterexamples first: once a failing
                // case is found (locally or in CI), its RNG state is
                // committed under proptest-regressions/ and re-checked on
                // every run until the end of time.
                for __state in $crate::test_runner::load_regressions(__manifest_dir, __test_name) {
                    let mut __rng = $crate::test_runner::TestRng::with_seed(__state);
                    $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)*
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body;
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) = __outcome {
                        panic!(
                            "proptest: persisted regression {:016x} still fails: {}",
                            __state, msg
                        );
                    }
                }
                let mut __rng = $crate::test_runner::TestRng::for_test(__test_name);
                let __max_attempts = __config.cases.saturating_mul(20).max(1000);
                let mut __case = 0u32;
                let mut __attempts = 0u32;
                while __case < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __max_attempts,
                        "proptest: too many rejected cases ({} rejections for {} cases)",
                        __attempts - __case,
                        __config.cases,
                    );
                    let __state = __rng.state();
                    $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)*
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body;
                            ::core::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => {
                            __case += 1;
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            $crate::test_runner::persist_regression(
                                __manifest_dir,
                                __test_name,
                                __state,
                            );
                            panic!(
                                "proptest case #{} failed (state {:016x} persisted to proptest-regressions/): {}",
                                __case, __state, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current test case with a message when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case when the two values are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs,
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Fails the current test case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
        );
    }};
}

/// Rejects the current case (it is re-drawn and does not count) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond);
    };
}
