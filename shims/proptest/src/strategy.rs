//! The [`Strategy`] trait and the built-in strategies (ranges, tuples,
//! `Vec`, [`Just`]) plus the `prop_map` / `prop_flat_map` combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Generates random values of an associated type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply draws a value from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, builds a new strategy from it with `f`, and draws
    /// from that strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Rejects generated values for which `f` returns false (the case is
    /// re-drawn a bounded number of times).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.source.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        );
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(
                        self.start < self.end,
                        "empty integer range strategy {}..{}", self.start, self.end,
                    );
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let offset = (u128::from(rng.next_u64()) % width) as i128;
                    (self.start as i128 + offset) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty integer range strategy {start}..={end}");
                    let width = (end as i128 - start as i128) as u128 + 1;
                    let offset = (u128::from(rng.next_u64()) % width) as i128;
                    (start as i128 + offset) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(
                        self.start < self.end,
                        "empty float range strategy {}..{}", self.start, self.end,
                    );
                    let unit = rng.unit() as $ty;
                    let value = self.start + unit * (self.end - self.start);
                    // Guard against landing on the excluded upper bound
                    // through rounding.
                    if value >= self.end { self.start } else { value }
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty float range strategy {start}..={end}");
                    let unit = rng.unit() as $ty;
                    start + unit * (end - start)
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}
