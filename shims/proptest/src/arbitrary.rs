//! `any::<T>()` support for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy generating arbitrary values of `A`; see [`any`].
#[derive(Debug, Clone)]
pub struct Any<A>(PhantomData<A>);

/// A strategy for any value of type `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: uniform in a generous symmetric interval.
        (rng.unit() - 0.5) * 2.0e6
    }
}
