//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s of values from an element strategy; see
/// [`fn@vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let width = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(width) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
