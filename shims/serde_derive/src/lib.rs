//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! decoration (no code actually serialises anything and no bounds require
//! the traits), and the build environment has no crates.io access, so the
//! derives expand to nothing. The `serde` shim crate provides blanket
//! implementations of the marker traits, so any future `T: Serialize`
//! bound is satisfied without per-type impls.
//!
//! Both derives register the `serde` helper attribute, so field- and
//! container-level `#[serde(...)]` annotations (`skip`, `default`, …)
//! compile today and take effect the day the real crates are swapped back
//! in.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
