//! Offline stand-in for `serde`.
//!
//! The workspace uses `serde` purely as derive decoration — nothing is
//! serialised at runtime and no API requires the traits as bounds — and the
//! build environment cannot reach crates.io. This shim keeps every
//! `use serde::{Deserialize, Serialize}` and `#[derive(Serialize,
//! Deserialize)]` compiling: the traits are empty markers with blanket
//! implementations and the derives expand to nothing.
//!
//! To switch back to the real `serde`, change the `serde` entry in the
//! workspace `[workspace.dependencies]` table.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
