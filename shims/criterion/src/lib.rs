//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!`) on a
//! simple wall-clock harness: each benchmark is warmed up, then timed over
//! an adaptively chosen iteration count, and the mean time per iteration is
//! printed as `name/param: time: [..] ns/iter`.
//!
//! There is no statistical analysis, plotting or comparison against saved
//! baselines — the printed per-iteration time is the whole output. The
//! `CRITERION_TARGET_MS` environment variable (default 40) controls how
//! long each measurement runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let target = measurement_target();
        // Warm-up call; also seeds the iteration-count estimate.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));

        let iters = (target.as_secs_f64() / first.as_secs_f64()).clamp(1.0, 5.0e7) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.nanos_per_iter = Some(total.as_secs_f64() * 1.0e9 / iters as f64);
    }

    /// Mean nanoseconds per iteration of the last [`Bencher::iter`] call.
    pub fn nanos_per_iter(&self) -> Option<f64> {
        self.nanos_per_iter
    }
}

fn measurement_target() -> Duration {
    let ms = std::env::var("CRITERION_TARGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(40);
    Duration::from_millis(ms.max(1))
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.nanos_per_iter {
        Some(ns) => println!("{label:<60} time: [{ns:>12.1} ns/iter]"),
        None => println!("{label:<60} (no measurement: Bencher::iter was not called)"),
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes measurements by wall
    /// clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into().id), &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.into().id), &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
