//! RoboRun — a reproduction of *"RoboRun: A Robot Runtime to Exploit
//! Spatial Heterogeneity"* (DAC 2021) as a pure-Rust workspace.
//!
//! This facade crate re-exports every sub-crate of the workspace so
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`geom`] | `roborun-geom` | vectors, AABBs, rays, grids, voxel lattice, statistics |
//! | [`mod@env`] | `roborun-env` | procedural mission environments, zones, visibility, gaps |
//! | [`sim`] | `roborun-sim` | drone kinematics, sensors, energy/CPU/latency models |
//! | [`perception`] | `roborun-perception` | point clouds, occupancy map, export operators |
//! | [`planning`] | `roborun-planning` | RRT*, collision checking, path smoothing |
//! | [`control`] | `roborun-control` | PID, trajectory following |
//! | [`middleware`] | `roborun-middleware` | ROS-like pub/sub bus, nodes, QoS, executor, bags |
//! | [`dynamics`] | `roborun-dynamics` | moving-obstacle actors, dynamic worlds, predicted occupancy |
//! | [`core`] | `roborun-core` | **the RoboRun runtime**: profilers, governor, solver, safety |
//! | [`cognitive`] | `roborun-cognitive` | cognitive co-task model over the freed CPU headroom |
//! | [`mission`] | `roborun-mission` | closed-loop mission runner, node-graph pipeline, sweeps |
//! | [`trace`] | `roborun-trace` | zero-cost structured tracing, Perfetto export, span summaries |
//!
//! # Quickstart
//!
//! ```
//! use roborun::prelude::*;
//!
//! // A short package-delivery style environment.
//! let env = Scenario::PackageDelivery.short_environment(42);
//!
//! // Run it once under the RoboRun governor.
//! let config = MissionConfig {
//!     max_decisions: 400,
//!     ..MissionConfig::new(RuntimeMode::SpatialAware)
//! };
//! let result = MissionRunner::new(config).run(&env);
//! assert!(result.metrics.decisions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use roborun_cognitive as cognitive;
pub use roborun_control as control;
pub use roborun_core as core;
pub use roborun_dynamics as dynamics;
pub use roborun_env as env;
pub use roborun_geom as geom;
pub use roborun_middleware as middleware;
pub use roborun_mission as mission;
pub use roborun_perception as perception;
pub use roborun_planning as planning;
pub use roborun_sim as sim;
pub use roborun_trace as trace;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use roborun_cognitive::{
        CoTaskComparison, CoTaskReport, CognitiveTask, CpuInterval, HeadroomScheduler,
        SchedulerConfig,
    };
    pub use roborun_core::{
        Governor, GovernorConfig, KnobAblation, KnobRanges, KnobSettings, Policy, Profilers,
        RuntimeMode, SafetyReport, SpatialProfile, TimeBudgeter,
    };
    pub use roborun_dynamics::{Actor, DynamicWorld, MotionModel};
    pub use roborun_env::{DifficultyConfig, Environment, EnvironmentGenerator, Zone};
    pub use roborun_geom::{Aabb, Vec3};
    pub use roborun_middleware::{
        CommLatencyModel, Executor, GraphInfo, MessageBus, Node, QosProfile,
    };
    pub use roborun_mission::sweep::{run_dynamic_sweep, run_sweep};
    pub use roborun_mission::{
        AggregateMetrics, DynamicScenario, DynamicSweepConfig, MissionConfig, MissionMetrics,
        MissionResult, MissionRunner, NodePipeline, NodePipelineConfig, NodePipelineResult,
        Scenario, SweepConfig, SweepResults,
    };
    pub use roborun_sim::{
        ComputeLatencyModel, DroneConfig, EnergyModel, FaultConfig, StoppingModel,
    };
}
